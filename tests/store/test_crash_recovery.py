"""Crash-recovery matrix: seeded kills at every phase of the WAL path.

The contract under test: after a kill at any point — before, during, or
after an fsync barrier, including mid-compaction — reopening the backend
recovers exactly a committed prefix of the pre-crash history (never a
state outside the append history, never a torn record applied), recovery
truncates the torn tail, and replay is idempotent.
"""

from __future__ import annotations

import pytest

from repro.netsim.faults import (
    CRASH_AFTER_FSYNC,
    CRASH_BEFORE_FSYNC,
    CRASH_PHASES,
    CRASH_TORN_FSYNC,
    StorageFaultPlan,
)
from repro.net.codec import WireCodec
from repro.security.certificates import FileCertificate
from repro.store import (
    SNAPSHOT_FILE,
    SimulatedCrash,
    Vfs,
    WAL_FILE,
    WalBackend,
    recover_state,
)


def make_certificate(fid, size=256):
    return FileCertificate(
        file_id=fid,
        content_hash=b"\x00" * 32,
        size=size,
        k=3,
        salt=fid * 7 + 1,
        creation_date=1,
        owner_public=b"owner-pub",
        signature=b"sig",
    )


def open_backend(tmp_path, **kwargs):
    kwargs.setdefault("node_id", 0xA)
    return WalBackend(tmp_path, **kwargs)


def fill(backend, n=6, start=0):
    for i in range(start, start + n):
        backend.note_store(make_certificate(i), diverted=(i % 2 == 1))
    backend.note_drop(start)
    backend.note_pointer(make_certificate(start + 100), 0xBEEF, True)
    backend.note_primary_flag(start + 100, False)


class TestCleanRestart:
    def test_reopen_recovers_identical_state(self, tmp_path):
        b = open_backend(tmp_path)
        fill(b)
        digest = b.state.state_digest(b.codec)
        seq = b.state.seq
        b.close()

        b2 = open_backend(tmp_path)
        assert b2.state.state_digest(b2.codec) == digest
        assert b2.state.seq == seq
        assert b2.recovery.truncated_bytes == 0
        assert not b2.recovery.violations

    def test_empty_directory_recovers_empty(self, tmp_path):
        b = open_backend(tmp_path)
        assert b.state.seq == 0
        assert not b.state.replicas and not b.state.pointers


class TestKillPhaseMatrix:
    """Kill between operations in each phase; check the recovered prefix."""

    @pytest.mark.parametrize("phase", CRASH_PHASES)
    def test_recovered_state_is_a_committed_prefix(self, tmp_path, phase):
        plan = StorageFaultPlan(seed=99)
        b = open_backend(
            tmp_path, fault_plan=plan, sync_every=4, track_digests=True
        )
        fill(b, n=9)
        history = dict(b.digest_history)
        synced = b.synced_seq
        last = b.state.seq
        b.crash(phase)

        b2 = open_backend(tmp_path, fault_plan=plan)
        recovered = b2.state.state_digest(b2.codec)
        # The oracle: recovery lands somewhere in [synced_seq, last] of
        # the append history.  fsync is a lower bound, not an equality —
        # a torn flush can land complete records beyond the last barrier.
        window = {history[s] for s in range(synced, last + 1) if s in history}
        assert recovered in window
        assert b2.state.seq >= synced or not b2.state.replicas
        if phase == CRASH_AFTER_FSYNC:
            assert recovered == history[last]
        if phase == CRASH_BEFORE_FSYNC:
            assert recovered == history[synced]

    @pytest.mark.parametrize("phase", CRASH_PHASES)
    def test_double_replay_is_idempotent(self, tmp_path, phase):
        plan = StorageFaultPlan(seed=5)
        b = open_backend(tmp_path, fault_plan=plan, sync_every=3)
        fill(b, n=7)
        b.crash(phase)

        codec = WireCodec()
        s1, info1 = recover_state(Vfs(), tmp_path, codec, truncate=False)
        s2, info2 = recover_state(Vfs(), tmp_path, codec, truncate=False)
        assert s1.state_digest(codec) == s2.state_digest(codec)
        assert s1.seq == s2.seq
        assert info1.records_replayed == info2.records_replayed

    def test_torn_tail_is_truncated_on_recovery(self, tmp_path):
        plan = StorageFaultPlan(seed=12345)
        b = open_backend(tmp_path, fault_plan=plan, sync_every=100)
        fill(b, n=8)
        assert b._wal.pending > 0
        b.crash(CRASH_TORN_FSYNC)

        wal = tmp_path / WAL_FILE
        torn_size = wal.stat().st_size
        b2 = open_backend(tmp_path, fault_plan=plan)
        clean_size = wal.stat().st_size
        assert b2.recovery.truncated_bytes == torn_size - clean_size
        # A third recovery sees an already-clean log.
        b2.close()
        b3 = open_backend(tmp_path, fault_plan=plan)
        assert b3.recovery.truncated_bytes == 0


class TestExactBarrierKills:
    """CrashPoint-driven kills inside a single operation's I/O."""

    def test_kill_at_append_barrier_loses_only_that_record(self, tmp_path):
        plan = StorageFaultPlan(seed=3)
        b = open_backend(tmp_path, fault_plan=plan, track_digests=True)
        fill(b, n=4)
        committed = b.committed_digest
        plan.schedule_crash_point(b.node_id, b.vfs.barriers, CRASH_BEFORE_FSYNC)
        with pytest.raises(SimulatedCrash):
            b.note_drop(2)  # sync_every=1: the append fsyncs -> kill fires

        b2 = open_backend(tmp_path, fault_plan=plan)
        assert b2.state.state_digest(b2.codec) == committed
        assert 2 in b2.state.replicas  # the drop never became durable

    def test_kill_after_append_barrier_keeps_the_record(self, tmp_path):
        plan = StorageFaultPlan(seed=3)
        b = open_backend(tmp_path, fault_plan=plan)
        fill(b, n=4)
        plan.schedule_crash_point(b.node_id, b.vfs.barriers, CRASH_AFTER_FSYNC)
        with pytest.raises(SimulatedCrash):
            b.note_drop(2)

        b2 = open_backend(tmp_path, fault_plan=plan)
        assert 2 not in b2.state.replicas  # the barrier completed first

    def test_crash_point_fires_exactly_once(self, tmp_path):
        plan = StorageFaultPlan(seed=3)
        b = open_backend(tmp_path, fault_plan=plan)
        point = plan.schedule_crash_point(b.node_id, b.vfs.barriers)
        with pytest.raises(SimulatedCrash):
            b.note_store(make_certificate(1), False)
        assert point.fired
        assert plan.stats.crashes_injected == 1
        # Recovery and subsequent appends run on the same plan unharmed.
        b2 = open_backend(tmp_path, fault_plan=plan)
        b2.note_store(make_certificate(1), False)
        assert plan.stats.crashes_injected == 1


class TestMidCompactionKills:
    def loaded_backend(self, tmp_path, plan):
        b = open_backend(tmp_path, fault_plan=plan, track_digests=True)
        fill(b, n=6)
        return b

    def test_kill_before_snapshot_rename_keeps_old_wal(self, tmp_path):
        plan = StorageFaultPlan(seed=8)
        b = self.loaded_backend(tmp_path, plan)
        digest = b.state.state_digest(b.codec)
        # compact(): flush barrier, tmp-file barrier, then the rename
        # barrier — kill there, before the rename happens.
        plan.schedule_crash_point(b.node_id, b.vfs.barriers + 2, CRASH_BEFORE_FSYNC)
        with pytest.raises(SimulatedCrash):
            b.compact()
        assert not (tmp_path / SNAPSHOT_FILE).exists()

        b2 = open_backend(tmp_path, fault_plan=plan)
        assert b2.state.state_digest(b2.codec) == digest
        assert b2.recovery.snapshot_seq == 0  # recovered from the WAL alone

    def test_kill_after_snapshot_rename_skips_stale_wal_tail(self, tmp_path):
        plan = StorageFaultPlan(seed=8)
        b = self.loaded_backend(tmp_path, plan)
        digest = b.state.state_digest(b.codec)
        seq = b.state.seq
        plan.schedule_crash_point(b.node_id, b.vfs.barriers + 2, CRASH_AFTER_FSYNC)
        with pytest.raises(SimulatedCrash):
            b.compact()
        # Snapshot published, WAL not yet truncated: the stale tail must
        # be skipped by seq, not re-applied.
        assert (tmp_path / SNAPSHOT_FILE).exists()
        assert (tmp_path / WAL_FILE).stat().st_size > 0

        b2 = open_backend(tmp_path, fault_plan=plan)
        assert b2.state.state_digest(b2.codec) == digest
        assert b2.recovery.snapshot_seq == seq
        assert b2.recovery.records_replayed == 0
        assert b2.recovery.records_skipped > 0

    def test_periodic_compaction_preserves_state(self, tmp_path):
        b = open_backend(tmp_path, snapshot_every=5)
        fill(b, n=12)
        digest = b.state.state_digest(b.codec)
        b.close()
        b2 = open_backend(tmp_path)
        assert b2.state.state_digest(b2.codec) == digest
        assert b2.recovery.snapshot_seq > 0


class TestDiskModes:
    def test_readonly_disk_refuses_the_barrier(self, tmp_path):
        plan = StorageFaultPlan(seed=1)
        b = open_backend(tmp_path, fault_plan=plan)
        b.note_store(make_certificate(1), False)
        plan.set_disk_mode(b.node_id, "readonly")
        with pytest.raises(OSError):
            b.note_store(make_certificate(2), False)
        assert plan.stats.writes_refused >= 1

    def test_snapshot_corruption_falls_back_to_wal(self, tmp_path):
        b = open_backend(tmp_path, snapshot_every=4)
        fill(b, n=10)
        digest = b.state.state_digest(b.codec)
        b.close()
        snap = tmp_path / SNAPSHOT_FILE
        blob = bytearray(snap.read_bytes())
        blob[-1] ^= 0xFF
        snap.write_bytes(bytes(blob))
        # The log was truncated at the last compaction, so a corrupt
        # snapshot only recovers the records since then — recovery
        # reports the corruption loudly rather than inventing state.
        b2 = open_backend(tmp_path)
        assert b2.recovery.snapshot_corrupt
        assert b2.recovery.violations
        assert b2.state.state_digest(b2.codec) != digest


class TestWipe:
    def test_wipe_destroys_journal_and_state(self, tmp_path):
        b = open_backend(tmp_path)
        fill(b)
        b.note_wipe()
        assert not b.state.replicas and not b.state.pointers
        b.close()
        b2 = open_backend(tmp_path)
        assert not b2.state.replicas and not b2.state.pointers
        assert b2.state.seq == 0
