"""On-disk WAL format: golden bytes, frame scan, snapshot roundtrip.

The record format is a compatibility surface — a WAL written by one
build must replay on the next — so the exact bytes of one record of
each op are pinned here.  If any of these assertions moves, the change
broke every existing log on disk; bump a format version instead.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.net.codec import WireCodec
from repro.security.certificates import FileCertificate
from repro.store import (
    SNAPSHOT_FILE,
    StoreState,
    Vfs,
    frame_record,
    load_snapshot,
    scan_frames,
    write_snapshot,
)

HEADER = struct.Struct(">II")


@pytest.fixture(scope="module")
def codec():
    return WireCodec()


def make_certificate(fid=0x1234, size=4096):
    return FileCertificate(
        file_id=fid,
        content_hash=b"\x00" * 32,
        size=size,
        k=3,
        salt=77,
        creation_date=12,
        owner_public=b"owner-pub",
        signature=b"sig",
    )


class TestGoldenRecordBytes:
    """One pinned record per op — the on-disk compatibility contract."""

    def test_drop_record(self, codec):
        frame = frame_record(codec.encode([7, "drop", 0x1234]))
        assert frame.hex() == (
            "0000001b7e1518c06c00000003690000000107730000000464726f7069000000021234"
        )

    def test_primary_flag_record(self, codec):
        frame = frame_record(codec.encode([3, "primary-flag", 0x1234, False]))
        assert frame.hex() == (
            "000000243412a6436c00000004690000000103730000000c"
            "7072696d6172792d666c61676900000002123446"
        )

    def test_wipe_record(self, codec):
        frame = frame_record(codec.encode([4, "wipe"]))
        assert frame.hex() == "0000001417c983556c00000002690000000104730000000477697065"

    def test_drop_pointer_record(self, codec):
        frame = frame_record(codec.encode([5, "drop-pointer", 0x1234]))
        assert frame.hex() == (
            "000000232ce069196c00000003690000000105730000000c"
            "64726f702d706f696e74657269000000021234"
        )

    def test_store_record_digest(self, codec):
        # Certificate-bearing records are longer; pin length + sha256.
        import hashlib

        frame = frame_record(codec.encode([1, "store", make_certificate(), False]))
        assert len(frame) == 126
        assert hashlib.sha256(frame).hexdigest() == (
            "0555ce65a6d9959e0f8599419b879c9329a215a1f2449d83c02cd8868372c338"
        )

    def test_pointer_record_digest(self, codec):
        import hashlib

        frame = frame_record(
            codec.encode([2, "pointer", make_certificate(), 0xBEEF, True])
        )
        assert len(frame) == 136
        assert hashlib.sha256(frame).hexdigest() == (
            "c2315327705b4e79a9df936e12ea41004836fafe83086506d379e819d4fd9b4b"
        )

    def test_header_layout(self, codec):
        payload = codec.encode([9, "drop", 1])
        frame = frame_record(payload)
        length, crc = HEADER.unpack_from(frame, 0)
        assert length == len(payload)
        assert crc == zlib.crc32(payload) & 0xFFFFFFFF
        assert frame[HEADER.size:] == payload


class TestScanFrames:
    def frames_of(self, codec, *records):
        return b"".join(frame_record(codec.encode(list(r))) for r in records)

    def test_clean_log(self, codec):
        blob = self.frames_of(codec, [1, "drop", 10], [2, "drop", 11])
        frames, clean = scan_frames(blob)
        assert clean == len(blob)
        assert [codec.decode(p)[0] for _off, p in frames] == [1, 2]
        # Offsets name the start of each frame.
        assert frames[0][0] == 0
        assert frames[1][0] == len(frame_record(codec.encode([1, "drop", 10])))

    def test_torn_header_truncates(self, codec):
        good = self.frames_of(codec, [1, "drop", 10])
        blob = good + b"\x00\x00\x07"  # 3 bytes of a next header
        frames, clean = scan_frames(blob)
        assert clean == len(good)
        assert len(frames) == 1

    def test_torn_payload_truncates(self, codec):
        good = self.frames_of(codec, [1, "drop", 10])
        second = frame_record(codec.encode([2, "drop", 11]))
        blob = good + second[: len(second) - 4]
        frames, clean = scan_frames(blob)
        assert clean == len(good)
        assert len(frames) == 1

    def test_corrupt_record_truncates(self, codec):
        good = self.frames_of(codec, [1, "drop", 10])
        second = bytearray(frame_record(codec.encode([2, "drop", 11])))
        second[-1] ^= 0xFF  # payload byte flip -> crc mismatch
        frames, clean = scan_frames(bytes(good + second))
        assert clean == len(good)
        assert len(frames) == 1

    def test_corruption_hides_later_records(self, codec):
        first = frame_record(codec.encode([1, "drop", 10]))
        second = bytearray(frame_record(codec.encode([2, "drop", 11])))
        second[HEADER.size] ^= 0x01
        third = frame_record(codec.encode([3, "drop", 12]))
        frames, clean = scan_frames(bytes(first) + bytes(second) + third)
        # Everything after the first bad record is untrusted, even if it
        # would checksum on its own.
        assert clean == len(first)
        assert len(frames) == 1

    def test_empty_log(self):
        frames, clean = scan_frames(b"")
        assert frames == [] and clean == 0


class TestSnapshotRoundtrip:
    def test_roundtrip(self, tmp_path, codec):
        state = StoreState()
        state.apply([1, "store", make_certificate(1), False])
        state.apply([2, "store", make_certificate(2, size=64), True])
        state.apply([3, "pointer", make_certificate(3), 0xAB, False])
        vfs = Vfs()
        write_snapshot(vfs, tmp_path, state, codec)
        loaded = load_snapshot(vfs, tmp_path / SNAPSHOT_FILE, codec)
        assert loaded is not None
        assert loaded.seq == 3
        assert loaded.state_digest(codec) == state.state_digest(codec)
        assert loaded.replicas[2][1] is True  # diverted flag survives
        assert loaded.pointers[3][1] == 0xAB

    def test_corrupt_snapshot_returns_none(self, tmp_path, codec):
        state = StoreState()
        state.apply([1, "store", make_certificate(1), False])
        vfs = Vfs()
        path = write_snapshot(vfs, tmp_path, state, codec)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert load_snapshot(vfs, path, codec) is None

    def test_truncated_snapshot_returns_none(self, tmp_path, codec):
        state = StoreState()
        state.apply([1, "store", make_certificate(1), False])
        vfs = Vfs()
        path = write_snapshot(vfs, tmp_path, state, codec)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert load_snapshot(vfs, path, codec) is None

    def test_trailing_garbage_returns_none(self, tmp_path, codec):
        # A snapshot must be exactly one frame; anything else is corrupt.
        state = StoreState()
        vfs = Vfs()
        path = write_snapshot(vfs, tmp_path, state, codec)
        path.write_bytes(path.read_bytes() + b"junk")
        assert load_snapshot(vfs, path, codec) is None
