"""Tests for smartcards: issuance, certification and storage quotas."""

import pytest

from repro.security import SmartcardIssuer
from repro.security.smartcard import QuotaExceededError


@pytest.fixture
def issuer():
    return SmartcardIssuer("test-issuer")


class TestIssuance:
    def test_card_certified_by_issuer(self, issuer):
        card = issuer.issue_card("alice")
        card.verify_issuer()

    def test_cards_have_distinct_keys(self, issuer):
        a = issuer.issue_card("alice")
        b = issuer.issue_card("bob")
        assert a.public_key != b.public_key

    def test_foreign_issuer_rejected(self, issuer):
        other = SmartcardIssuer("rogue", seed=b"rogue")
        card = issuer.issue_card("alice")
        card.issuer_public = other.keypair.public
        with pytest.raises(Exception):
            card.verify_issuer()


class TestQuota:
    def test_unmetered_by_default(self, issuer):
        card = issuer.issue_card("alice")
        assert card.quota_remaining() is None
        card.debit(10**12, 5)  # no limit, no exception

    def test_debit_charges_size_times_k(self, issuer):
        card = issuer.issue_card("alice", quota=1000)
        card.debit(100, 3)
        assert card.quota_used == 300
        assert card.quota_remaining() == 700

    def test_debit_over_quota_raises(self, issuer):
        card = issuer.issue_card("alice", quota=1000)
        with pytest.raises(QuotaExceededError):
            card.debit(400, 3)
        assert card.quota_used == 0  # failed debit must not charge

    def test_credit_refunds(self, issuer):
        card = issuer.issue_card("alice", quota=1000)
        card.debit(100, 3)
        card.credit(100, 3)
        assert card.quota_used == 0

    def test_credit_never_goes_negative(self, issuer):
        card = issuer.issue_card("alice", quota=1000)
        card.credit(500, 2)
        assert card.quota_used == 0

    def test_redeem_reclaim_receipts_credits(self, issuer):
        card = issuer.issue_card("alice", quota=10_000)
        card.debit(100, 3)
        node = issuer.issue_card("node-1")
        receipts = [
            node.issue_reclaim_receipt(7, i, 100) for i in range(3)
        ]
        card.redeem_reclaim_receipts(receipts, k=3)
        assert card.quota_used == 0

    def test_redeem_verifies_signatures(self, issuer):
        import dataclasses

        card = issuer.issue_card("alice", quota=10_000)
        node = issuer.issue_card("node-1")
        receipt = node.issue_reclaim_receipt(7, 1, 100)
        forged = dataclasses.replace(receipt, freed_bytes=10**9)
        with pytest.raises(Exception):
            card.redeem_reclaim_receipts([forged], k=1)


class TestCertificateHelpers:
    def test_issue_file_certificate(self, issuer):
        card = issuer.issue_card("alice")
        cert = card.issue_file_certificate(9, 500, 3, 1, 0)
        cert.verify()
        assert cert.owner_public == card.public_key

    def test_issue_store_receipt(self, issuer):
        card = issuer.issue_card("node")
        receipt = card.issue_store_receipt(9, 77, diverted=False)
        receipt.verify()

    def test_issue_reclaim_certificate(self, issuer):
        card = issuer.issue_card("alice")
        rc = card.issue_reclaim_certificate(9)
        rc.verify(card.public_key)
