"""Tests for signed node identities (§2.3: unforgeable routing entries)."""

import dataclasses

import pytest

from repro.security import NodeIdentity, SmartcardIssuer
from repro.security.certificates import CertificateError
from tests.conftest import build_past


@pytest.fixture
def issuer():
    return SmartcardIssuer("id-test")


class TestIdentityRecord:
    def test_issue_verify_roundtrip(self, issuer):
        card = issuer.issue_card("node-a")
        identity = NodeIdentity.issue(card, 12345, "a.past.example:4160")
        identity.verify()

    def test_forged_signature_rejected(self, issuer):
        card = issuer.issue_card("node-a")
        identity = NodeIdentity.issue(card, 12345, "a.past.example:4160")
        forged = dataclasses.replace(identity, signature=b"\x00" * 32)
        with pytest.raises(CertificateError):
            forged.verify()

    def test_rebinding_address_rejected(self, issuer):
        """An attacker cannot move a victim's nodeId to its own address."""
        card = issuer.issue_card("node-a")
        identity = NodeIdentity.issue(card, 12345, "a.past.example:4160")
        forged = dataclasses.replace(identity, address="evil.example:4160")
        with pytest.raises(CertificateError):
            forged.verify()

    def test_rebinding_nodeid_rejected(self, issuer):
        card = issuer.issue_card("node-a")
        identity = NodeIdentity.issue(card, 12345, "a.past.example:4160")
        forged = dataclasses.replace(identity, node_id=99999)
        with pytest.raises(CertificateError):
            forged.verify()

    def test_uncertified_key_rejected(self, issuer):
        """A key not certified by the issuer cannot mint identities."""
        card = issuer.issue_card("node-a")
        identity = NodeIdentity.issue(card, 12345, "a.past.example:4160")
        rogue = SmartcardIssuer("rogue", seed=b"rogue").issue_card("node-a")
        forged = dataclasses.replace(
            identity, issuer_signature=rogue.issuer_signature
        )
        with pytest.raises(CertificateError):
            forged.verify()


class TestPastIntegration:
    def test_every_admitted_node_has_verified_identity(self):
        net = build_past(n=20, capacity=1_000_000, k=3, seed=190)
        assert set(net.identities) == set(net.pastry.node_ids)
        for identity in net.identities.values():
            identity.verify()
            assert net._identity_verifies(identity.node_id)

    def test_nodes_refuse_unverifiable_ids(self):
        """learn() rejects ids with no (or invalid) registered identity."""
        net = build_past(n=20, capacity=1_000_000, k=3, seed=191)
        victim = net.nodes()[0].pastry
        phantom = 0xDEADBEEF << 96
        victim.learn(phantom)
        assert phantom not in victim.leafset
        assert phantom not in set(victim.routing_table.entries())

    def test_forged_registration_rejected(self):
        import dataclasses as dc

        net = build_past(n=20, capacity=1_000_000, k=3, seed=192)
        real = next(iter(net.identities.values()))
        phantom_id = 0xABCDEF << 100
        net.identities[phantom_id] = dc.replace(real, node_id=phantom_id)
        assert not net._identity_verifies(phantom_id)
        victim = net.nodes()[0].pastry
        victim.learn(phantom_id)
        assert phantom_id not in victim.leafset

    def test_plain_pastry_network_unaffected(self):
        """Without a verifier configured, learn() behaves as before."""
        from tests.conftest import build_pastry

        net = build_pastry(15, l=8, seed=193)
        assert net.identity_verifier is None
        node = net.nodes()[0]
        other = net.nodes()[-1].node_id
        node.learn(other)  # no exception, state updated
        assert other in node.leafset or True
