"""Tests for the simulated key pairs and signatures."""

import pytest

from repro.security import KeyPair, SignatureError, SignedBlob


class TestKeyPair:
    def test_deterministic_from_label_and_seed(self):
        a = KeyPair("alice", b"s")
        b = KeyPair("alice", b"s")
        assert a.public == b.public

    def test_distinct_labels_distinct_keys(self):
        assert KeyPair("alice").public != KeyPair("bob").public

    def test_distinct_seeds_distinct_keys(self):
        assert KeyPair("alice", b"1").public != KeyPair("alice", b"2").public

    def test_sign_verify_roundtrip(self):
        kp = KeyPair("alice")
        tag = kp.sign(b"message")
        assert KeyPair.verify(kp.public, b"message", tag)

    def test_verify_rejects_tampered_message(self):
        kp = KeyPair("alice")
        tag = kp.sign(b"message")
        assert not KeyPair.verify(kp.public, b"messagX", tag)

    def test_verify_rejects_wrong_key(self):
        alice, bob = KeyPair("alice"), KeyPair("bob")
        tag = alice.sign(b"message")
        assert not KeyPair.verify(bob.public, b"message", tag)

    def test_verify_rejects_unknown_public_key(self):
        kp = KeyPair("alice")
        assert not KeyPair.verify(b"\x00" * 32, b"m", kp.sign(b"m"))

    def test_signatures_differ_per_message(self):
        kp = KeyPair("alice")
        assert kp.sign(b"a") != kp.sign(b"b")


class TestSignedBlob:
    def test_check_passes(self):
        blob = SignedBlob(b"data", KeyPair("alice"))
        blob.check()  # no exception

    def test_check_rejects_tampered(self):
        blob = SignedBlob(b"data", KeyPair("alice"))
        blob.message = b"evil"
        with pytest.raises(SignatureError):
            blob.check()

    def test_check_rejects_substituted_signer(self):
        blob = SignedBlob(b"data", KeyPair("alice"))
        blob.public = KeyPair("eve").public
        with pytest.raises(SignatureError):
            blob.check()
