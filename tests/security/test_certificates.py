"""Tests for file certificates, store receipts and reclaim certificates."""

import dataclasses

import pytest

from repro.security import (
    CertificateError,
    FileCertificate,
    ReclaimCertificate,
    ReclaimReceipt,
    StoreReceipt,
)
from repro.security.keys import KeyPair


@pytest.fixture
def owner():
    return KeyPair("owner")


@pytest.fixture
def cert(owner):
    return FileCertificate.issue(
        file_id=123456, size=1000, k=3, salt=42, creation_date=7, owner_key=owner
    )


class TestFileCertificate:
    def test_verify_passes(self, cert):
        cert.verify()

    def test_contains_metadata(self, cert, owner):
        assert cert.file_id == 123456
        assert cert.size == 1000
        assert cert.k == 3
        assert cert.salt == 42
        assert cert.creation_date == 7
        assert cert.owner_public == owner.public

    def test_verify_rejects_tampered_size(self, cert):
        forged = dataclasses.replace(cert, size=5)
        with pytest.raises(CertificateError):
            forged.verify()

    def test_verify_rejects_tampered_k(self, cert):
        forged = dataclasses.replace(cert, k=99)
        with pytest.raises(CertificateError):
            forged.verify()

    def test_verify_rejects_reassigned_owner(self, cert):
        eve = KeyPair("eve")
        forged = dataclasses.replace(cert, owner_public=eve.public)
        with pytest.raises(CertificateError):
            forged.verify()

    def test_verify_content_passes_on_match(self, cert):
        cert.verify_content(1000)

    def test_verify_content_detects_corruption(self, cert):
        with pytest.raises(CertificateError):
            cert.verify_content(999)

    def test_rejects_nonpositive_k(self, owner):
        bad = FileCertificate.issue(1, 10, 1, 0, 0, owner)
        forged = dataclasses.replace(bad, k=0)
        with pytest.raises(CertificateError):
            forged.verify()


class TestStoreReceipt:
    def test_roundtrip(self):
        node = KeyPair("node")
        receipt = StoreReceipt.issue(99, 1234, diverted=True, node_key=node)
        receipt.verify()
        assert receipt.diverted is True

    def test_rejects_tampered_node(self):
        node = KeyPair("node")
        receipt = StoreReceipt.issue(99, 1234, False, node)
        forged = dataclasses.replace(receipt, node_id=5678)
        with pytest.raises(CertificateError):
            forged.verify()

    def test_rejects_flipped_diversion_flag(self):
        node = KeyPair("node")
        receipt = StoreReceipt.issue(99, 1234, False, node)
        forged = dataclasses.replace(receipt, diverted=True)
        with pytest.raises(CertificateError):
            forged.verify()


class TestReclaim:
    def test_reclaim_certificate_roundtrip(self, owner):
        rc = ReclaimCertificate.issue(55, owner)
        rc.verify(owner.public)

    def test_reclaim_by_non_owner_rejected(self, owner):
        eve = KeyPair("eve")
        rc = ReclaimCertificate.issue(55, eve)
        with pytest.raises(CertificateError):
            rc.verify(owner.public)

    def test_reclaim_receipt_roundtrip(self):
        node = KeyPair("node")
        receipt = ReclaimReceipt.issue(55, 1234, freed_bytes=800, node_key=node)
        receipt.verify()
        assert receipt.freed_bytes == 800

    def test_reclaim_receipt_rejects_tampered_bytes(self):
        node = KeyPair("node")
        receipt = ReclaimReceipt.issue(55, 1234, 800, node)
        forged = dataclasses.replace(receipt, freed_bytes=1)
        with pytest.raises(CertificateError):
            forged.verify()
