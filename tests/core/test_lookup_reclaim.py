"""Tests for Lookup and Reclaim."""

import pytest

from repro.pastry import idspace
from tests.conftest import build_past


@pytest.fixture
def net():
    return build_past(n=30, capacity=5_000_000, k=3, seed=60)


@pytest.fixture
def owner(net):
    return net.create_client("owner")


class TestLookup:
    def test_lookup_finds_inserted_file(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        res = net.lookup(ins.file_id, net.nodes()[-1].node_id)
        assert res.success
        assert res.source in ("primary", "diverted", "pointer", "cache")
        assert res.certificate.file_id == ins.file_id

    def test_lookup_unknown_file_fails(self, net):
        res = net.lookup(12345678901234567890, net.nodes()[0].node_id)
        assert not res.success
        assert res.source is None

    def test_lookup_from_replica_holder_is_zero_hops(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        key = idspace.routing_key(ins.file_id)
        holder = None
        for m in net.pastry.k_closest_live(key, 3):
            if net.past_node(m).store.holds_file(ins.file_id):
                holder = m
                break
        res = net.lookup(ins.file_id, holder)
        assert res.success and res.hops == 0

    def test_lookup_stops_at_first_copy(self, net, owner):
        """The request is not routed further once any node can serve it."""
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        res = net.lookup(ins.file_id, net.nodes()[-1].node_id)
        assert res.responder_id is not None
        # The responder really has the file (replica, cache or pointer).
        responder = net.past_node(res.responder_id)
        assert (
            responder.store.references_file(ins.file_id)
            or ins.file_id in responder.store.cache
        )

    def test_lookup_populates_caches_along_path(self, net, owner):
        ins = net.insert("tiny.txt", owner, 500, net.nodes()[0].node_id)
        origin = net.nodes()[-1].node_id
        net.lookup(ins.file_id, origin)
        # A repeat lookup from the same origin must be served closer.
        second = net.lookup(ins.file_id, origin)
        assert second.success
        assert second.hops == 0
        assert second.source == "cache"

    def test_lookup_stats_recorded(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        net.lookup(ins.file_id, net.nodes()[-1].node_id)
        assert len(net.stats.lookups) == 1
        event = net.stats.lookups[0]
        assert event.success and event.hops >= 0

    def test_lookup_survives_partial_replica_failure(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        key = idspace.routing_key(ins.file_id)
        kset = net.pastry.k_closest_live(key, 3)
        net.fail_node(kset[0])
        res = net.lookup(ins.file_id, net.nodes()[5].node_id)
        assert res.success


class TestReclaim:
    def test_reclaim_frees_storage(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        before = net.bytes_stored
        res = net.reclaim(ins.file_id, owner, net.nodes()[0].node_id)
        assert res.success
        assert net.bytes_stored == before - 3 * 10_000

    def test_reclaim_returns_receipts(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        res = net.reclaim(ins.file_id, owner, net.nodes()[0].node_id)
        assert len(res.receipts) >= 3
        for receipt in res.receipts:
            receipt.verify()

    def test_reclaim_credits_quota(self, net):
        limited = net.create_client("limited", quota=100_000)
        ins = net.insert("a.txt", limited, 10_000, net.nodes()[0].node_id)
        net.reclaim(ins.file_id, limited, net.nodes()[0].node_id)
        assert limited.quota_used == 0

    def test_reclaim_by_non_owner_rejected(self, net, owner):
        eve = net.create_client("eve")
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        res = net.reclaim(ins.file_id, eve, net.nodes()[0].node_id)
        assert not res.success
        # File still fully present.
        assert net.lookup(ins.file_id, net.nodes()[3].node_id).success

    def test_reclaim_unknown_file_fails(self, net, owner):
        res = net.reclaim(999, owner, net.nodes()[0].node_id)
        assert not res.success

    def test_lookup_after_reclaim_misses_replicas(self, net, owner):
        """With caching off, a reclaimed file becomes unavailable."""
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        net.reclaim(ins.file_id, owner, net.nodes()[0].node_id)
        res = net.lookup(ins.file_id, net.nodes()[7].node_id)
        assert not res.success

    def test_reclaim_weaker_than_delete_with_caching(self):
        """Cached copies may outlive reclaim (§2.2's weaker semantics)."""
        net = build_past(n=30, capacity=5_000_000, k=3, seed=61, cache_policy="gds")
        owner = net.create_client("owner")
        ins = net.insert("tiny", owner, 400, net.nodes()[0].node_id)
        origin = net.nodes()[-1].node_id
        net.lookup(ins.file_id, origin)  # seeds caches along the path
        net.reclaim(ins.file_id, owner, net.nodes()[0].node_id)
        res = net.lookup(ins.file_id, origin)
        # Either outcome is legal, but if it succeeds it must be a cache hit.
        if res.success:
            assert res.source == "cache"

    def test_reinsert_after_reclaim(self, net, owner):
        ins = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        net.reclaim(ins.file_id, owner, net.nodes()[0].node_id)
        again = net.insert("a.txt", owner, 10_000, net.nodes()[0].node_id)
        assert again.success
        assert again.file_id != ins.file_id  # fresh salt, fresh fileId
