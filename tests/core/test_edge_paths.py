"""Tests for subtle paths: dead pointer targets mid-lookup, node state
formatting, and other branches not covered by the main suites."""

import pytest

from repro.pastry import idspace
from tests.conftest import build_past


class TestLookupViaPointerEdgeCases:
    def test_lookup_skips_pointer_with_dead_target(self):
        """A primary pointer whose target silently died must not satisfy
        the lookup; routing continues to a live replica."""
        net = build_past(n=30, capacity=3_000_000, k=3, seed=180)
        owner = net.create_client("o")
        res = net.insert("f", owner, 10_000, net.nodes()[0].node_id)
        fid = res.file_id
        key = idspace.routing_key(fid)
        kset = net.pastry.k_closest_live(key, 3)
        # Fabricate the situation: replace one member's replica with a
        # pointer to a node that does not hold the file.
        member = net.past_node(kset[0])
        cert = member.store.certificate_for(fid)
        if member.store.holds_file(fid):
            member.store.drop_replica(fid)
            member.store.add_pointer(cert, target_id=123456789, primary=True)
            net.note_degraded_file(fid)  # silence the auditor; this is staged
        result = net.lookup(fid, member.node_id)
        # The lookup may succeed from a cached/other replica or fail (the
        # staged pointer dangles and maintenance was silenced), but it must
        # never be "served" through the dead pointer.
        if result.success:
            assert not (
                result.responder_id == member.node_id and result.source == "pointer"
            )

    def test_backup_pointer_never_serves_lookups(self):
        net = build_past(n=30, capacity=3_000_000, k=3, seed=181)
        owner = net.create_client("o")
        res = net.insert("f", owner, 10_000, net.nodes()[0].node_id)
        fid = res.file_id
        cert = net.certificate_of(fid)
        key = idspace.routing_key(fid)
        holder = next(
            m for m in net.pastry.k_closest_live(key, 3)
            if net.past_node(m).store.holds_file(fid)
        )
        outsider = next(
            n for n in net.nodes()
            if not n.store.references_file(fid) and n.node_id != holder
        )
        outsider.store.add_pointer(cert, holder, primary=False)
        result = net.lookup(fid, outsider.node_id)
        assert result.success
        # Served by routing onward, not by the backup pointer.
        assert result.source != "pointer" or result.responder_id != outsider.node_id


class TestStateFormatting:
    def test_format_state_contains_sections(self):
        net = build_past(n=20, capacity=1_000_000, k=3, seed=182)
        text = net.nodes()[0].pastry.format_state(max_rows=4)
        assert "NodeId" in text
        assert "Leaf set" in text
        assert "Routing table" in text
        assert "Neighborhood set" in text

    def test_format_id_base256_uses_dashes(self):
        out = idspace.format_id(idspace.ID_SPACE - 1, 8)
        assert "-" in out
        assert out.split("-")[0] == "255"


class TestRecencyWorkload:
    def test_recency_bias_raises_short_term_repeats(self):
        from repro.workloads import WebProxyWorkload

        def repeat_rate(bias):
            wl = WebProxyWorkload(
                n_files=2_000, zipf_alpha=0.6, recency_bias=bias,
                recency_window=64, seed=9,
            )
            trace = wl.request_trace(n_requests=6_000)
            window, hits = [], 0
            for e in trace:
                if e.file_index in window[-64:]:
                    hits += 1
                window.append(e.file_index)
            return hits / len(trace)

        assert repeat_rate(0.8) > repeat_rate(0.0) + 0.2

    def test_zero_recency_matches_plain_zipf(self):
        from repro.workloads import WebProxyWorkload

        wl = WebProxyWorkload(n_files=500, recency_bias=0.0, seed=10)
        trace = wl.request_trace(n_requests=2_000)
        assert trace.unique_files() > 0


class TestRouteResult:
    def test_hops_property(self):
        from repro.pastry.network import RouteResult

        assert RouteResult(path=[1]).hops == 0
        assert RouteResult(path=[1, 2, 3]).hops == 2
        assert RouteResult().hops == 0


class TestNodeSnapshot:
    def test_store_snapshot_keys(self):
        net = build_past(n=15, capacity=1_000_000, k=3, seed=183)
        owner = net.create_client("o")
        net.insert("f", owner, 5_000, net.nodes()[0].node_id)
        snap = net.nodes()[0].store.snapshot()
        assert set(snap) == {
            "capacity", "used", "free", "primaries", "diverted_in",
            "pointers", "cached", "cache_bytes",
        }
