"""Stateful property test for the full PAST stack.

Hypothesis drives random sequences of insert / lookup / reclaim / fail /
recover / join operations against a live deployment.  After every step:
every successfully inserted, unreclaimed file must be retrievable (barring
total replica loss), and at the end the invariant audit must pass.
"""

import random

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import PastConfig, PastNetwork, audit


class PastMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.net = PastNetwork(PastConfig(l=8, k=3, seed=77, cache_policy="gds"))
        self.net.build([2_000_000] * 16)
        self.owner = self.net.create_client("stateful")
        self.rng = random.Random(77)
        self.live = {}  # fid -> size
        self.failed_nodes = []
        self.counter = 0

    def _origin(self):
        ids = self.net.pastry.node_ids
        return ids[self.rng.randrange(len(ids))]

    @rule(size=st.integers(min_value=0, max_value=150_000))
    def insert(self, size):
        self.counter += 1
        result = self.net.insert(
            f"sf{self.counter}", self.owner, size, self._origin()
        )
        if result.success:
            self.live[result.file_id] = size

    @precondition(lambda self: bool(self.live))
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def lookup(self, pick):
        fids = sorted(self.live)
        fid = fids[pick % len(fids)]
        result = self.net.lookup(fid, self._origin())
        assert result.success
        assert result.certificate.size == self.live[fid]

    @precondition(lambda self: bool(self.live))
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def reclaim(self, pick):
        fids = sorted(self.live)
        fid = fids[pick % len(fids)]
        result = self.net.reclaim(fid, self.owner, self._origin())
        assert result.success
        del self.live[fid]

    @precondition(lambda self: len(self.net) > 10)
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def fail_node(self, pick):
        ids = self.net.pastry.node_ids
        victim = ids[pick % len(ids)]
        self.net.fail_node(victim)
        self.failed_nodes.append(victim)

    @precondition(lambda self: bool(self.failed_nodes))
    @rule()
    def recover_node(self):
        self.net.recover_node(self.failed_nodes.pop())

    @rule()
    def join_node(self):
        if len(self.net) < 30:
            self.net.add_node(2_000_000)

    @invariant()
    def audit_clean(self):
        report = audit(self.net)
        assert report.ok, report.violations[:3]


TestPastStateful = PastMachine.TestCase
TestPastStateful.settings = settings(
    max_examples=6, stateful_step_count=12, deadline=None
)
