"""Behavior regression tests for the shipped concurrency-safety fixes.

Each test interposes on the Transport seam to make an RPC *actually
interleave* with a state change — the situation the simulator's
run-to-completion semantics never produces but a real network does —
and asserts the repaired handler re-checks its world instead of acting
on the stale pre-RPC view.  The static side of the same contract (the
analyzer finding these paths clean) is pinned in
``tests/devtools/test_conc.py``.
"""

from __future__ import annotations

import random

from repro.core import AntiEntropyScrubber
from repro.netsim.eventsim import EventSimulator
from repro.pastry import idspace
from repro.pastry.keepalive import KeepAliveMonitor
from tests.conftest import build_past, build_pastry


class InterposedTransport:
    """Wrap a Transport, running a hook before selected calls.

    This is what a concurrent execution plane does for free: between the
    moment a handler issues an RPC and the moment the reply arrives,
    arbitrary other handlers run.  The hook plays those other handlers.
    """

    def __init__(self, inner, on_send=None, on_probe=None):
        self._inner = inner
        self._on_send = on_send
        self._on_probe = on_probe

    def send(self, origin_id, target_id, call, *args, **kwargs):
        if self._on_send is not None:
            self._on_send(origin_id, target_id, call)
        return self._inner.send(origin_id, target_id, call, *args, **kwargs)

    def probe(self, origin_id, peer_id):
        if self._on_probe is not None:
            self._on_probe(origin_id, peer_id)
        return self._inner.probe(origin_id, peer_id)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def build_loaded(n=16, n_files=4, seed=70, k=3):
    net = build_past(n, k=k, l=8, seed=seed, cache_policy="none")
    owner = net.create_client("conc-owner")
    rng = random.Random(seed)
    node_ids = [node.node_id for node in net.nodes()]
    fids = []
    for i in range(n_files):
        res = net.insert(f"conc{i}", owner, 20_000,
                         node_ids[rng.randrange(len(node_ids))])
        assert res.success
        fids.append(res.file_id)
    return net, fids


def holders_of(net, fid):
    cert = net.certificate_of(fid)
    kset = net.pastry.k_closest_live(idspace.routing_key(fid), cert.k)
    return [
        net.past_node_or_none(m) for m in kset
        if net.past_node_or_none(m) is not None
        and net.past_node_or_none(m).store.holds_file(fid)
    ]


class TestReadRepairConfirmReread:
    def test_replica_reclaimed_during_donor_search_aborts_repair(self):
        """A reclaim that lands while the donor RPC is in flight must not
        be undone: repairing a replica we no longer hold would resurrect
        freed storage."""
        net, fids = build_loaded()
        fid = fids[0]
        victim = holders_of(net, fid)[0]
        victim.store.get_replica(fid).corrupted = True

        state = {"fired": False}

        def drop_mid_rpc(_origin, _target, _call):
            # First donor-probe RPC: an interleaved reclaim retires the
            # victim's own copy while the verdict is in flight.
            if not state["fired"]:
                state["fired"] = True
                victim.drop_pointer_and_deref(fid)
                victim.store.drop_replica(fid)

        net.transport = InterposedTransport(net.transport, on_send=drop_mid_rpc)
        assert victim.read_repair(fid) is False
        assert state["fired"], "donor search issued no RPC"
        # The stale pre-RPC replica handle was not written back.
        assert not victim.store.holds_file(fid)
        assert net.integrity.read_repairs == 0

    def test_repair_still_works_when_nothing_interleaves(self):
        net, fids = build_loaded()
        fid = fids[0]
        victim = holders_of(net, fid)[0]
        victim.store.get_replica(fid).corrupted = True
        net.transport = InterposedTransport(net.transport)
        assert victim.read_repair(fid) is True
        assert not victim.store.get_replica(fid).corrupted
        assert net.integrity.read_repairs == 1


class TestScrubberConfirmReread:
    def test_entry_retired_during_digest_exchange_skips_repair(self):
        """If the scrubbing node's own entry is retired while a member
        digest RPC is in flight, the repair duty belongs to the file's
        current replica set — not to this node's stale view."""
        net, fids = build_loaded()
        fid = fids[0]
        holders = holders_of(net, fid)
        node, peer = holders[0], holders[1]
        cert = node.store.certificate_for(fid)
        assert cert is not None
        # A live member with no entry at all: marks the file for repair.
        peer.drop_pointer_and_deref(fid)
        peer.store.drop_replica(fid)

        state = {"fired": False}

        def retire_mid_rpc(_origin, _target, _call):
            if not state["fired"]:
                state["fired"] = True
                node.drop_pointer_and_deref(fid)
                node.store.drop_replica(fid)

        net.transport = InterposedTransport(net.transport, on_send=retire_mid_rpc)
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber._exchange_digests(node, fid, cert)
        assert state["fired"], "digest exchange issued no RPC"
        assert net.integrity.scrub_missing_found == 0

    def test_repair_requested_when_entry_survives(self):
        net, fids = build_loaded()
        fid = fids[0]
        holders = holders_of(net, fid)
        node, peer = holders[0], holders[1]
        cert = node.store.certificate_for(fid)
        peer.drop_pointer_and_deref(fid)
        peer.store.drop_replica(fid)
        net.transport = InterposedTransport(net.transport)
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber._exchange_digests(node, fid, cert)
        assert net.integrity.scrub_missing_found == 1


class TestProbeRoundConfirmReread:
    def make(self, n=12, seed=81):
        net = build_pastry(n, l=8, seed=seed)
        sim = EventSimulator()
        detected = []
        monitor = KeepAliveMonitor(
            sim, net, on_detect=detected.append, interval=1.0, timeout=3.0
        )
        monitor.start()
        return net, sim, monitor, detected

    def test_unwatch_during_probe_is_not_resurrected(self):
        """An unwatch() interleaved mid-round must stay clean: a probe
        answer already in flight must not re-create observer-side
        ``last_heard`` state for a node that stopped observing."""
        net, sim, monitor, _detected = self.make()
        observer_id = net.node_ids[0]

        state = {"fired": False}

        def unwatch_mid_probe(origin_id, _peer):
            if not state["fired"] and origin_id == observer_id:
                state["fired"] = True
                monitor.unwatch(observer_id)

        monitor.transport = InterposedTransport(
            monitor.transport, on_probe=unwatch_mid_probe
        )
        monitor._probe_round(observer_id)
        assert state["fired"], "probe round issued no probe"
        assert observer_id not in monitor._timers
        stale = [key for key in monitor.last_heard if key[0] == observer_id]
        assert stale == [], (
            "probe answers in flight resurrected unwatched state"
        )
        assert observer_id not in monitor._peers_of

    def test_round_still_records_liveness_when_watched(self):
        net, sim, monitor, _detected = self.make()
        observer_id = net.node_ids[0]
        monitor.transport = InterposedTransport(monitor.transport)
        before = dict(monitor.last_heard)
        sim.run_until(1.5)  # one full probe round through the wrapper
        monitor._probe_round(observer_id)
        peers = [key for key in monitor.last_heard if key[0] == observer_id]
        assert peers, "watched observer recorded no liveness"
        assert monitor.last_heard != before or monitor.probes_sent > 0


class TestJoinConfirmReread:
    def test_contact_failed_mid_announce_is_skipped(self, monkeypatch):
        """A contact collected from the newcomer's tables can crash while
        an earlier announcement RPC is in flight; the announce loop must
        re-check liveness per contact instead of indexing the stale set."""
        from repro.pastry.node import PastryNode

        net = build_pastry(12, l=8, seed=41)
        victim_id = max(net.node_ids)
        learned = []
        state = {"fired": False}
        orig = PastryNode.learn

        # Instrument the announcement handler: the first announcement that
        # reaches any node plays a concurrent crash of the victim contact.
        def wrapped(self, new_id):
            learned.append(self.node_id)
            if not state["fired"] and victim_id in net._nodes:
                state["fired"] = True
                net.mark_failed(victim_id)
            return orig(self, new_id)

        monkeypatch.setattr(PastryNode, "learn", wrapped)
        node = net.join()
        assert state["fired"], "join announced to nobody"
        # The newcomer's tables still reference the victim (no keep-alive
        # expired), so the stale contact set definitely contained it...
        stale_contacts = set(node.leafset.members())
        stale_contacts.update(node.routing_table.entries())
        stale_contacts.update(node.neighborhood)
        assert victim_id in stale_contacts
        # ...yet the crashed contact was never announced to.
        assert victim_id not in learned
        assert node.node_id in net._nodes

    def test_join_announces_everyone_when_nothing_interleaves(self, monkeypatch):
        from repro.pastry.node import PastryNode

        net = build_pastry(12, l=8, seed=41)
        learned = []
        orig = PastryNode.learn

        def wrapped(self, new_id):
            learned.append(self.node_id)
            return orig(self, new_id)

        monkeypatch.setattr(PastryNode, "learn", wrapped)
        node = net.join()
        contacts = set(node.leafset.members())
        contacts.update(node.routing_table.entries())
        contacts.update(node.neighborhood)
        assert contacts <= set(learned)


class TestReconcileRecoveredConfirmReread:
    def find_double_holder(self, net, fids):
        for node in net.nodes():
            held = [f for f in fids if node.store.references_file(f)]
            if len(held) >= 2:
                return node, held
        raise AssertionError("no node references two files at this seed")

    def test_entry_retired_mid_repair_is_skipped(self):
        """request_repair() suspends once per replica-set member; a repair
        that lands in that window can retire a later entry of the recovery
        sweep, which must then be skipped rather than re-repaired."""
        net, fids = build_loaded(n=12, n_files=6, seed=73)
        node, held = self.find_double_holder(net, fids)
        net.crash_node(node.node_id)

        snapshot = node.store.file_ids()
        retired = snapshot[-1]
        repaired = []
        orig = node.request_repair

        def wrapped(fid):
            repaired.append(fid)
            if len(repaired) == 1 and retired in node.store.file_ids():
                # The interleaved repair: another member absorbs the
                # entry and retires this node's copy mid-sweep.
                node.store.drop_pointer(retired)
                node.store.drop_replica(retired)
            return orig(fid)

        node.request_repair = wrapped
        net.recover_node(node.node_id)
        assert repaired, "recovery sweep repaired nothing"
        assert retired != repaired[0], "interleave fired after its target"
        assert retired not in repaired, (
            "recovery sweep repaired an entry retired while in flight"
        )

    def test_recovery_sweep_covers_every_entry_when_nothing_interleaves(self):
        net, fids = build_loaded(n=12, n_files=6, seed=73)
        node, _held = self.find_double_holder(net, fids)
        net.crash_node(node.node_id)
        snapshot = node.store.file_ids()
        repaired = []
        orig = node.request_repair
        node.request_repair = lambda fid: (repaired.append(fid), orig(fid))[1]
        net.recover_node(node.node_id)
        assert set(snapshot) <= set(repaired)


class TestFailureDetectionReferrerConfirmReread:
    """process_failure_detection's referrer loop: the first referrer's
    failover suspends at its re-replication RPCs; a referrer that dropped
    its pointer in that window must not be delivered a failure it already
    handled."""

    def wire_two_referrers(self, seed=70):
        net, fids = build_loaded(seed=seed)
        fid = fids[0]
        target = holders_of(net, fid)[0]
        cert = net.certificate_of(fid)
        others = [
            n for n in net.nodes()
            if n is not target and not n.store.references_file(fid)
        ]
        a, b = others[0], others[1]
        a.store.add_pointer(cert, target.node_id, primary=True)
        b.store.add_pointer(cert, target.node_id, primary=False)
        replica = target.store.get_replica(fid)
        replica.referrers.add(a.node_id)
        replica.referrers.add(b.node_id)
        return net, fid, target, a, b

    def test_referrer_that_dropped_its_pointer_mid_failover_is_skipped(
        self, monkeypatch
    ):
        from repro.core.node import PastNode

        net, fid, target, a, b = self.wire_two_referrers()
        first, second = sorted([a, b], key=lambda n: n.node_id)
        delivered = []
        orig = PastNode.on_diverted_target_failed

        def wrapped(self, fid_):
            if fid_ == fid and self in (a, b):
                delivered.append(self.node_id)
                if self is first:
                    # Interleaved failover: the other referrer's own path
                    # retires its pointer while this RPC is in flight.
                    second.store.drop_pointer(fid)
            return orig(self, fid_)

        monkeypatch.setattr(PastNode, "on_diverted_target_failed", wrapped)
        net.crash_node(target.node_id)
        net.process_failure_detection(target.node_id)
        assert delivered == [first.node_id], (
            "a referrer without a pointer was delivered a stale failure"
        )

    def test_both_referrers_delivered_when_nothing_interleaves(
        self, monkeypatch
    ):
        from repro.core.node import PastNode

        net, fid, target, a, b = self.wire_two_referrers()
        delivered = []
        orig = PastNode.on_diverted_target_failed

        def wrapped(self, fid_):
            if fid_ == fid and self in (a, b):
                delivered.append(self.node_id)
            return orig(self, fid_)

        monkeypatch.setattr(PastNode, "on_diverted_target_failed", wrapped)
        net.crash_node(target.node_id)
        net.process_failure_detection(target.node_id)
        assert sorted(delivered) == sorted([a.node_id, b.node_id])


class TestFailureDetectionPointerConfirmReread:
    """process_failure_detection's pointer loop: earlier deliveries
    suspend at their pointer-rebind RPCs; a target that shed the replica
    in that window must not be told about the dead referrer."""

    def wire_two_pointers(self, seed=70):
        net, fids = build_loaded(n_files=6, seed=seed)
        f1, f2 = fids[0], fids[1]
        t1 = holders_of(net, f1)[0]
        t2 = next(h for h in holders_of(net, f2) if h is not t1)
        referrer = next(
            n for n in net.nodes()
            if n not in (t1, t2)
            and not n.store.references_file(f1)
            and not n.store.references_file(f2)
        )
        for fid, tgt in ((f1, t1), (f2, t2)):
            cert = net.certificate_of(fid)
            referrer.store.add_pointer(cert, tgt.node_id, primary=False)
            tgt.store.get_replica(fid).referrers.add(referrer.node_id)
        return net, referrer, (f1, t1), (f2, t2)

    def test_target_that_shed_replica_mid_rebind_is_skipped(self, monkeypatch):
        from repro.core.node import PastNode

        net, referrer, (f1, t1), (f2, t2) = self.wire_two_pointers()
        delivered = []
        orig = PastNode.on_referrer_failed

        def wrapped(self, fid, failed_id, failed_was_primary):
            if fid in (f1, f2) and failed_id == referrer.node_id:
                delivered.append((self.node_id, fid))
                if self is t1 and fid == f1:
                    # While t1's rebind is in flight, t2 sheds its copy
                    # (migration or a concurrent repair absorbed it).
                    t2.store.drop_replica(f2)
            return orig(self, fid, failed_id, failed_was_primary)

        monkeypatch.setattr(PastNode, "on_referrer_failed", wrapped)
        net.crash_node(referrer.node_id)
        net.process_failure_detection(referrer.node_id)
        assert (t1.node_id, f1) in delivered
        assert (t2.node_id, f2) not in delivered, (
            "a target without the replica was told about a dead referrer"
        )

    def test_both_targets_delivered_when_nothing_interleaves(self, monkeypatch):
        from repro.core.node import PastNode

        net, referrer, (f1, t1), (f2, t2) = self.wire_two_pointers()
        delivered = []
        orig = PastNode.on_referrer_failed

        def wrapped(self, fid, failed_id, failed_was_primary):
            if fid in (f1, f2) and failed_id == referrer.node_id:
                delivered.append((self.node_id, fid))
            return orig(self, fid, failed_id, failed_was_primary)

        monkeypatch.setattr(PastNode, "on_referrer_failed", wrapped)
        net.crash_node(referrer.node_id)
        net.process_failure_detection(referrer.node_id)
        assert (t1.node_id, f1) in delivered
        assert (t2.node_id, f2) in delivered


class TestMaintainAfterJoinConfirmReread:
    """_maintain_after_join: _restore_file_invariant suspends at its
    repair RPCs; a displaced holder whose primary was dropped in that
    window must not be prompted to discard."""

    def stage(self, seed=70):
        from repro.pastry import idspace as ids

        net, fids = build_loaded(seed=seed)
        for fid in fids:
            holder = holders_of(net, fid)[0]
            key = ids.routing_key(fid)
            cert = holder.store.certificate_for(fid)
            kset = holder.leafset.closest_nodes(key, cert.k)
            if holder.node_id not in kset:
                continue
            new_id = next((m for m in kset if m != holder.node_id), None)
            if new_id is None:
                continue
            displaced = holder._displaced_member(key, kset, new_id, cert.k)
            if displaced is None:
                continue
            displaced_node = net.past_node_or_none(displaced)
            if displaced_node is None or displaced_node.store.holds_file(fid):
                continue
            if not displaced_node.store.can_accept(
                cert.size, displaced_node.config.t_pri
            ):
                continue
            displaced_node.store.store_replica(cert, diverted=False)
            return net, fid, holder, new_id, displaced_node
        raise AssertionError("no displaceable holder at this seed")

    def test_displaced_primary_dropped_mid_restore_skips_discard(
        self, monkeypatch
    ):
        from repro.core.node import PastNode

        net, fid, holder, new_id, displaced_node = self.stage()
        orig_restore = PastNode._restore_file_invariant

        def restore_and_interleave(self, fid_, newcomer_id=None):
            result = orig_restore(self, fid_, newcomer_id=newcomer_id)
            if fid_ == fid and newcomer_id == new_id:
                # A concurrent repair retires the displaced holder's
                # copy while the restore RPCs are in flight.
                displaced_node.store.drop_replica(fid)
            return result

        discards = []
        orig_discard = PastNode.maybe_discard

        def counting_discard(self, fid_):
            if self is displaced_node and fid_ == fid:
                discards.append(fid_)
            return orig_discard(self, fid_)

        monkeypatch.setattr(
            PastNode, "_restore_file_invariant", restore_and_interleave
        )
        monkeypatch.setattr(PastNode, "maybe_discard", counting_discard)
        holder._maintain_after_join(new_id)
        assert discards == [], (
            "a holder without the primary was prompted to discard"
        )

    def test_displaced_holder_prompted_when_nothing_interleaves(
        self, monkeypatch
    ):
        from repro.core.node import PastNode

        net, fid, holder, new_id, displaced_node = self.stage()
        discards = []
        orig_discard = PastNode.maybe_discard

        def counting_discard(self, fid_):
            if self is displaced_node and fid_ == fid:
                discards.append(fid_)
            return orig_discard(self, fid_)

        monkeypatch.setattr(PastNode, "maybe_discard", counting_discard)
        holder._maintain_after_join(new_id)
        assert discards == [fid]
