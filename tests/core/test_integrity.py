"""Integrity plane: verified reads, read-repair, anti-entropy scrubbing."""

import random

import pytest

from repro.core import AntiEntropyScrubber, RetryPolicy, audit
from repro.netsim.eventsim import EventSimulator
from repro.netsim.faults import DISK_READONLY, READ_CORRUPT, StorageFaultPlan
from repro.pastry import idspace
from tests.conftest import build_past


def build_loaded(n=16, n_files=8, seed=70, k=3):
    net = build_past(n, k=k, l=8, seed=seed, cache_policy="none")
    owner = net.create_client("int-owner")
    net.int_owner = owner  # test-only handle for reclaim
    rng = random.Random(seed)
    node_ids = [node.node_id for node in net.nodes()]
    fids = []
    for i in range(n_files):
        res = net.insert(f"int{i}", owner, 20_000,
                         node_ids[rng.randrange(len(node_ids))])
        assert res.success
        fids.append(res.file_id)
    return net, fids, node_ids


def holders_of(net, fid):
    """The kset members that physically hold a copy, closest first."""
    cert = net.certificate_of(fid)
    kset = net.pastry.k_closest_live(idspace.routing_key(fid), cert.k)
    out = []
    for member_id in kset:
        member = net.past_node_or_none(member_id)
        if member is not None and member.store.holds_file(fid):
            out.append(member)
    return out


def flag_corrupt(node, fid):
    """Simulate a copy whose last verified read found corruption."""
    node.store.get_replica(fid).corrupted = True


class TestVerifiedLookups:
    def test_lookup_fails_over_past_corrupt_copy_and_repairs_it(self):
        net, fids, node_ids = build_loaded()
        fid = fids[0]
        victim = holders_of(net, fid)[0]
        flag_corrupt(victim, fid)
        result = net.lookup(fid, node_ids[0], policy=RetryPolicy(max_attempts=4))
        assert result.success
        assert result.integrity_failovers >= 1
        assert net.integrity.failed_reads >= 1
        # The serve failed over, but the corrupt copy was read-repaired.
        assert not victim.store.get_replica(fid).corrupted
        assert net.integrity.read_repairs == 1
        assert fid in net.integrity.healed_file_ids

    def test_clean_lookup_reports_no_failovers(self):
        net, fids, node_ids = build_loaded()
        result = net.lookup(fids[0], node_ids[0])
        assert result.success and result.integrity_failovers == 0
        assert net.integrity.failed_reads == 0


class TestReadRepair:
    def test_no_donor_means_no_repair(self):
        net, fids, _ = build_loaded()
        fid = fids[0]
        holders = holders_of(net, fid)
        for node in holders:
            flag_corrupt(node, fid)
        assert not holders[0].read_repair(fid)
        for node in holders:
            assert node.store.get_replica(fid).corrupted

    def test_audit_reports_unrecoverable_as_outcome_not_violation(self):
        net, fids, _ = build_loaded()
        fid = fids[0]
        for node in holders_of(net, fid):
            flag_corrupt(node, fid)
        report = audit(net)
        assert report.ok  # availability outcome, not a bookkeeping bug
        assert report.corrupt_files == 1
        assert report.unrecoverable_files == 1
        assert report.unrecoverable_file_ids == [fid]

    def test_audit_flags_unhealed_corruption_with_live_donor(self):
        net, fids, _ = build_loaded()
        fid = fids[0]
        flag_corrupt(holders_of(net, fid)[0], fid)
        report = audit(net)
        assert not report.ok
        assert any(v.kind == "integrity" for v in report.violations)
        assert report.corrupt_files == 1 and report.unrecoverable_files == 0


class TestScrubber:
    def test_validation(self):
        net, _, _ = build_loaded()
        sim = EventSimulator()
        with pytest.raises(ValueError):
            AntiEntropyScrubber(sim, net, interval=0.0)
        with pytest.raises(ValueError):
            AntiEntropyScrubber(sim, net, interval=1.0, jitter=1.0)

    def test_scrub_all_heals_local_corruption(self):
        net, fids, _ = build_loaded()
        fid = fids[0]
        flag_corrupt(holders_of(net, fid)[0], fid)
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber.scrub_all()
        assert net.integrity.scrub_corrupt_found >= 1
        assert net.integrity.read_repairs == 1
        assert audit(net).ok and audit(net).corrupt_files == 0

    def test_digest_exchange_heals_remote_member(self):
        """A clean member's scrub round repairs a *peer's* corrupt copy."""
        net, fids, _ = build_loaded()
        fid = fids[0]
        holders = holders_of(net, fid)
        assert len(holders) >= 2
        clean, corrupt = holders[0], holders[1]
        flag_corrupt(corrupt, fid)
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber.scrub_node(clean.node_id)
        assert not corrupt.store.get_replica(fid).corrupted
        assert net.integrity.scrub_corrupt_found == 1

    def test_digest_exchange_rereplicates_missing_entry(self):
        """A member with neither replica nor pointer triggers §3.5 repair."""
        net, fids, _ = build_loaded()
        fid = fids[0]
        holders = holders_of(net, fid)
        observer, loser = holders[0], holders[1]
        loser.store.drop_replica(fid)  # silent byte loss, no maintenance
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber.scrub_node(observer.node_id)
        assert net.integrity.scrub_missing_found == 1
        assert audit(net).ok

    def test_stale_entries_are_garbage_collected(self):
        net, fids, _ = build_loaded()
        fid = fids[0]
        node = holders_of(net, fid)[0]
        cert = net.certificate_of(fid)
        assert net.reclaim(fid, net.int_owner, node.node_id).success
        assert net.certificate_of(fid) is None
        # Resurrect a stale copy by hand, as if a reclaim RPC had died
        # in flight and left bytes behind on one disk.
        node.store.store_replica(cert, diverted=False)
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber.scrub_all()
        assert not node.store.holds_file(fid)
        assert net.integrity.scrub_stale_dropped == 1
        assert audit(net).ok

    def test_timers_fire_and_respect_stop(self):
        net, _, _ = build_loaded()
        sim = EventSimulator()
        scrubber = AntiEntropyScrubber(sim, net, interval=1.0, jitter=0.25,
                                       seed=5)
        scrubber.start()
        sim.run_until(3.0)
        fired = net.integrity.scrub_rounds
        assert fired > 0
        scrubber.stop()
        sim.run_until(6.0)
        assert net.integrity.scrub_rounds == fired

    def test_crashed_nodes_are_skipped(self):
        net, fids, _ = build_loaded()
        victim = holders_of(net, fids[0])[0]
        net.crash_node(victim.node_id)
        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        before = net.integrity.scrub_rounds
        scrubber.scrub_node(victim.node_id)
        assert net.integrity.scrub_rounds == before


class TestDegradedDisks:
    def test_readonly_disk_sheds_corrupt_replica_for_rereplication(self):
        net, fids, _ = build_loaded()
        fid = fids[0]
        splan = StorageFaultPlan(seed=1)
        net.install_storage_faults(splan, clock=lambda: 1.0)
        victim = holders_of(net, fid)[0]
        # Materialize rot on exactly one copy: a certain-rot hazard for
        # one verified read, then back to zero for everyone else.
        splan.bitrot_rate = 1e9
        assert victim.store.verify_replica(fid) == READ_CORRUPT
        splan.bitrot_rate = 0.0
        splan.set_disk_mode(victim.node_id, DISK_READONLY)

        assert not victim.read_repair(fid)  # rewrite refused -> shed
        assert not victim.store.holds_file(fid)
        assert net.integrity.re_replications == 1
        assert fid in net.integrity.healed_file_ids
        report = audit(net)
        assert report.ok and report.corrupt_files == 0

    def test_diverted_replica_shed_keeps_pointers_consistent(self):
        """Re-replicating a corrupt diverted copy must not strand pointers."""
        net = build_past(10, capacity=12_000, k=3, l=8, seed=7,
                         cache_policy="none", t_pri=0.5, t_div=0.25)
        owner = net.create_client("div-owner")
        rng = random.Random(7)
        node_ids = [node.node_id for node in net.nodes()]
        for i in range(12):
            net.insert(f"div{i}", owner, rng.randrange(1_500, 3_500),
                       node_ids[rng.randrange(len(node_ids))])
        targets = sorted(n.node_id for n in net.nodes() if n.store.diverted_in)
        assert targets, "deployment produced no diverted replicas"
        victim = net.past_node_or_none(targets[0])
        fid = sorted(victim.store.diverted_in)[0]

        splan = StorageFaultPlan(seed=1)
        net.install_storage_faults(splan, clock=lambda: 1.0)
        splan.bitrot_rate = 1e9
        assert victim.store.verify_replica(fid) == READ_CORRUPT
        splan.bitrot_rate = 0.0
        splan.set_disk_mode(victim.node_id, DISK_READONLY)

        scrubber = AntiEntropyScrubber(EventSimulator(), net, interval=1.0)
        scrubber.scrub_all()
        assert not victim.store.holds_file(fid)
        report = audit(net)
        assert report.ok, [str(v) for v in report.violations]
        assert report.corrupt_files == 0

    def test_readonly_disk_still_serves_verified_reads(self):
        net, fids, node_ids = build_loaded()
        fid = fids[0]
        splan = StorageFaultPlan(seed=1)
        net.install_storage_faults(splan, clock=lambda: 1.0)
        for node in holders_of(net, fid):
            splan.set_disk_mode(node.node_id, DISK_READONLY)
        result = net.lookup(fid, node_ids[0])
        assert result.success and result.integrity_failovers == 0
