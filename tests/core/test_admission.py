"""Tests for node admission control (§3.2)."""

import pytest

from repro.core import AdmissionError, PastConfig, PastNetwork
from tests.conftest import build_past


class TestAdmission:
    def test_first_node_unconditional(self):
        net = PastNetwork(PastConfig(seed=100))
        nodes = net.add_node(123)
        assert len(nodes) == 1

    def test_comparable_capacity_admitted(self):
        net = build_past(n=10, capacity=1_000_000, seed=101)
        nodes = net.add_node(2_000_000)
        assert len(nodes) == 1
        assert len(net) == 11

    def test_tiny_node_rejected(self):
        """A node far below the leaf-set average is rejected."""
        net = build_past(n=10, capacity=1_000_000, seed=102)
        with pytest.raises(AdmissionError):
            net.add_node(1_000)  # 1000x below average

    def test_oversized_node_splits(self):
        """A node far above the average joins under multiple nodeIds."""
        net = build_past(n=10, capacity=1_000_000, seed=103)
        nodes = net.add_node(500_000_000)
        assert len(nodes) > 1
        assert sum(n.store.capacity for n in nodes) == 500_000_000
        ids = {n.node_id for n in nodes}
        assert len(ids) == len(nodes)

    def test_oversized_without_split_rejected(self):
        net = build_past(n=10, capacity=1_000_000, seed=104)
        with pytest.raises(AdmissionError):
            net.add_node(500_000_000, allow_split=False)

    def test_split_parts_individually_admissible(self):
        net = build_past(n=10, capacity=1_000_000, seed=105)
        nodes = net.add_node(300_000_000)
        ratio = net.config.admission_ratio
        for node in nodes:
            assert node.store.capacity <= 1_000_000 * ratio * 1.5

    def test_negative_capacity_rejected(self):
        net = PastNetwork(PastConfig(seed=106))
        with pytest.raises(ValueError):
            net.add_node(-1)

    def test_admission_ratio_configurable(self):
        net = build_past(n=10, capacity=1_000_000, seed=107, admission_ratio=2.0)
        with pytest.raises(AdmissionError):
            net.add_node(400_000)  # below half the average

    def test_capacity_counter_tracks_adds(self):
        net = build_past(n=5, capacity=1_000_000, seed=108)
        before = net.total_capacity
        net.add_node(1_500_000)
        assert net.total_capacity == before + 1_500_000
