"""Tests for content-bearing inserts (real bytes + real SHA-1)."""

import os

import pytest

from repro.security import CertificateError
from repro.security.certificates import content_hash
from tests.conftest import build_past


@pytest.fixture
def net():
    return build_past(n=24, capacity=3_000_000, k=3, seed=150)


@pytest.fixture
def owner(net):
    return net.create_client("o")


class TestContentInsert:
    def test_roundtrip(self, net, owner):
        data = os.urandom(10_000)
        result = net.insert("blob", owner, client_id=net.nodes()[0].node_id, content=data)
        assert result.success
        fetched = net.lookup(result.file_id, net.nodes()[-1].node_id)
        assert fetched.content == data

    def test_size_defaults_to_len(self, net, owner):
        data = b"x" * 5_000
        result = net.insert("blob", owner, client_id=net.nodes()[0].node_id, content=data)
        assert result.size == 5_000
        assert net.certificate_of(result.file_id).size == 5_000

    def test_size_mismatch_rejected(self, net, owner):
        with pytest.raises(ValueError):
            net.insert("blob", owner, size=7, client_id=net.nodes()[0].node_id,
                       content=b"12345")

    def test_neither_size_nor_content_rejected(self, net, owner):
        with pytest.raises(ValueError):
            net.insert("blob", owner, client_id=net.nodes()[0].node_id)

    def test_certificate_carries_real_hash(self, net, owner):
        data = os.urandom(2_000)
        result = net.insert("blob", owner, client_id=net.nodes()[0].node_id, content=data)
        cert = net.certificate_of(result.file_id)
        assert cert.content_hash == content_hash(data)
        cert.verify_content(len(data), content=data)

    def test_corrupted_content_detected(self, net, owner):
        data = os.urandom(2_000)
        result = net.insert("blob", owner, client_id=net.nodes()[0].node_id, content=data)
        cert = net.certificate_of(result.file_id)
        with pytest.raises(CertificateError):
            cert.verify_content(len(data), content=b"evil" + data[4:])

    def test_content_free_lookup_has_no_bytes(self, net, owner):
        result = net.insert("sized", owner, size=5_000, client_id=net.nodes()[0].node_id)
        fetched = net.lookup(result.file_id, net.nodes()[-1].node_id)
        assert fetched.success
        assert fetched.content is None

    def test_reclaim_drops_content(self, net, owner):
        data = os.urandom(1_000)
        result = net.insert("blob", owner, client_id=net.nodes()[0].node_id, content=data)
        net.reclaim(result.file_id, owner, net.nodes()[0].node_id)
        assert net._contents.get(result.file_id) is None
