"""Tests for PastConfig validation."""

import pytest

from repro.core import NO_DIVERSION_CONFIG, PAPER_CONFIG, PastConfig


class TestDefaults:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.b == 4
        assert PAPER_CONFIG.l == 32
        assert PAPER_CONFIG.k == 5
        assert PAPER_CONFIG.t_pri == 0.1
        assert PAPER_CONFIG.t_div == 0.05
        assert PAPER_CONFIG.cache_policy == "gds"
        assert PAPER_CONFIG.max_insert_attempts == 4

    def test_no_diversion_config(self):
        assert NO_DIVERSION_CONFIG.t_pri == 1.0
        assert NO_DIVERSION_CONFIG.t_div == 0.0
        assert NO_DIVERSION_CONFIG.max_insert_attempts == 1


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            PastConfig(k=0)

    def test_k_bounded_by_leafset(self):
        """The paper: k can be no larger than l/2 + 1."""
        PastConfig(k=9, l=16)  # exactly l/2 + 1 is fine
        with pytest.raises(ValueError):
            PastConfig(k=10, l=16)

    def test_t_pri_at_least_t_div(self):
        with pytest.raises(ValueError):
            PastConfig(t_pri=0.01, t_div=0.05)

    def test_negative_t_div_rejected(self):
        with pytest.raises(ValueError):
            PastConfig(t_div=-0.1)

    def test_unknown_cache_policy_rejected(self):
        with pytest.raises(ValueError):
            PastConfig(cache_policy="fifo")

    def test_unknown_diversion_policy_rejected(self):
        with pytest.raises(ValueError):
            PastConfig(divert_target_policy="least_loaded")

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            PastConfig(max_insert_attempts=0)


class TestOverrides:
    def test_with_overrides_copies(self):
        cfg = PastConfig().with_overrides(k=3, l=16)
        assert cfg.k == 3 and cfg.l == 16
        assert PastConfig().k == 5  # original untouched

    def test_with_overrides_revalidates(self):
        with pytest.raises(ValueError):
            PastConfig().with_overrides(k=100)

    def test_frozen(self):
        with pytest.raises(Exception):
            PastConfig().k = 7
