"""Tests for the invariant auditor itself (it must catch what we break)."""

import pytest

from repro import audit
from repro.pastry import idspace
from tests.conftest import build_past


@pytest.fixture
def net():
    network = build_past(n=20, capacity=5_000_000, k=3, seed=110)
    owner = network.create_client("o")
    for i in range(10):
        network.insert(f"f{i}", owner, 10_000, network.nodes()[0].node_id)
    return network


def first_holder(net, fid):
    key = idspace.routing_key(fid)
    for m in net.pastry.k_closest_live(key, 3):
        if net.past_node(m).store.holds_file(fid):
            return net.past_node(m)
    raise AssertionError("no holder")


class TestAuditorDetections:
    def test_clean_network_passes(self, net):
        report = audit(net)
        assert report.ok
        assert report.files_checked == 10
        assert report.nodes_checked == 20

    def test_detects_missing_replica(self, net):
        fid = net.live_file_ids()[0]
        holder = first_holder(net, fid)
        holder.store.drop_replica(fid)
        report = audit(net)
        assert not report.ok
        assert any(v.kind == "replicas" for v in report.violations)

    def test_degraded_files_exempt(self, net):
        fid = net.live_file_ids()[0]
        first_holder(net, fid).store.drop_replica(fid)
        net.note_degraded_file(fid)
        report = audit(net)
        assert report.ok
        assert report.degraded_exempt == 1

    def test_detects_dangling_pointer(self, net):
        fid = net.live_file_ids()[0]
        holder = first_holder(net, fid)
        cert = holder.store.certificate_for(fid)
        stranger = net.nodes()[0]
        stranger.store.add_pointer(cert, target_id=123456789, primary=True)
        report = audit(net)
        assert any(v.kind == "pointer" for v in report.violations)

    def test_detects_pointer_to_nonholder(self, net):
        fid = net.live_file_ids()[0]
        holder = first_holder(net, fid)
        cert = holder.store.certificate_for(fid)
        a, b = net.nodes()[0], net.nodes()[1]
        if not b.store.holds_file(fid):
            a.store.add_pointer(cert, b.node_id, primary=True)
            report = audit(net)
            assert any(v.kind == "pointer" for v in report.violations)

    def test_detects_missing_referrer(self, net):
        fid = net.live_file_ids()[0]
        holder = first_holder(net, fid)
        replica = holder.store.get_replica(fid)
        replica.diverted = True  # pretend it is a diverted replica
        holder.store.diverted_in[fid] = holder.store.primaries.pop(fid)
        cert = holder.store.certificate_for(fid)
        stranger = net.nodes()[0]
        if stranger.node_id != holder.node_id:
            stranger.store.add_pointer(cert, holder.node_id, primary=False)
            report = audit(net)
            assert any("referrer" in v.detail for v in report.violations)

    def test_detects_accounting_drift(self, net):
        net.bytes_stored += 42
        report = audit(net)
        assert any(v.kind == "accounting" for v in report.violations)
        net.bytes_stored -= 42

    def test_detects_node_accounting_drift(self, net):
        node = net.nodes()[0]
        node.store.used += 7
        report = audit(net)
        assert any(v.kind == "accounting" for v in report.violations)
        node.store.used -= 7

    def test_skip_replica_check(self, net):
        fid = net.live_file_ids()[0]
        first_holder(net, fid).store.drop_replica(fid)
        report = audit(net, check_replicas=False)
        # The replica hole is invisible, but accounting still audited.
        assert all(v.kind != "replicas" for v in report.violations)


class TestOverlayAudit:
    def test_clean_network_passes_overlay_checks(self, net):
        report = audit(net, check_overlay=True)
        assert report.ok

    def test_detects_leafset_asymmetry(self, net):
        node = net.pastry.nodes()[0]
        member_id = sorted(node.leafset.members())[0]
        net.pastry.node(member_id).leafset.remove(node.node_id)
        report = audit(net, check_overlay=True)
        assert any(
            v.kind == "overlay" and "asymmetry" in v.detail
            for v in report.violations
        )

    def test_detects_dead_overlay_entries(self, net):
        # Phase-1 crash with no keep-alive expiry: every surviving
        # leaf-set and routing-table reference to the victim is stale.
        victim = net.pastry.nodes()[0].node_id
        net.crash_node(victim)
        report = audit(net, check_overlay=True)
        dead_leaf = [
            v for v in report.violations
            if v.kind == "overlay" and "leaf set lists dead" in v.detail
        ]
        dead_route = [
            v for v in report.violations
            if v.kind == "overlay" and "routing table entry" in v.detail
        ]
        assert dead_leaf and dead_route

    def test_fixpoint_after_detection_passes(self, net):
        victim = net.pastry.nodes()[0].node_id
        net.crash_node(victim)
        net.process_failure_detection(victim)
        net.recover_node(victim)
        report = audit(net, check_overlay=True)
        assert not [v for v in report.violations if v.kind == "overlay"]

    def test_overlay_checks_are_opt_in(self, net):
        node = net.pastry.nodes()[0]
        member_id = sorted(node.leafset.members())[0]
        net.pastry.node(member_id).leafset.remove(node.node_id)
        assert audit(net).ok
