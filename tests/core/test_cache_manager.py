"""Tests for the per-node cache manager (insertion policy + elasticity)."""

import pytest

from repro.core.cache import CacheManager, make_policy


def make(available=1000, fraction=1.0, policy="gds"):
    state = {"available": available}
    mgr = CacheManager(
        make_policy(policy), available_fn=lambda: state["available"], insert_fraction=fraction
    )
    return mgr, state


class TestInsertionPolicy:
    def test_caches_small_file(self):
        mgr, _ = make(available=1000)
        assert mgr.consider(1, 100)
        assert 1 in mgr
        assert mgr.bytes_used == 100

    def test_rejects_file_at_or_above_fraction(self):
        """The paper: cache iff size is less than fraction c of cache size."""
        mgr, _ = make(available=1000, fraction=0.5)
        assert not mgr.consider(1, 500)  # 500 is not < 0.5 * 1000
        assert mgr.consider(2, 499)

    def test_rejects_zero_size(self):
        mgr, _ = make()
        assert not mgr.consider(1, 0)

    def test_duplicate_not_reinserted(self):
        mgr, _ = make()
        mgr.consider(1, 100)
        assert not mgr.consider(1, 100)
        assert mgr.insertions == 1

    def test_disabled_policy_caches_nothing(self):
        mgr, _ = make(policy="none")
        assert not mgr.consider(1, 10)
        assert not mgr.enabled

    def test_eviction_makes_room(self):
        mgr, _ = make(available=1000)
        mgr.consider(1, 600)
        assert mgr.consider(2, 600)  # evicts 1
        assert 1 not in mgr and 2 in mgr
        assert mgr.evictions == 1


class TestLookup:
    def test_hit_and_miss_counters(self):
        mgr, _ = make()
        mgr.consider(1, 100)
        assert mgr.lookup(1)
        assert not mgr.lookup(2)
        assert mgr.hits == 1 and mgr.misses == 1

    def test_hit_protects_entry_under_gds(self):
        mgr, _ = make(available=1000)
        mgr.consider(1, 400)
        mgr.consider(2, 400)
        mgr.lookup(1)  # refresh 1
        mgr.consider(3, 400)  # must evict someone
        assert 1 in mgr

    def test_size_of(self):
        mgr, _ = make()
        mgr.consider(1, 123)
        assert mgr.size_of(1) == 123
        assert mgr.size_of(2) is None


class TestElasticity:
    def test_shrink_to_discards_entries(self):
        mgr, state = make(available=1000)
        mgr.consider(1, 400)
        mgr.consider(2, 400)
        state["available"] = 500  # a replica claimed the space
        mgr.shrink_to(500)
        assert mgr.bytes_used <= 500
        assert len(mgr) == 1

    def test_shrink_to_zero_clears(self):
        mgr, _ = make(available=1000)
        mgr.consider(1, 400)
        mgr.shrink_to(0)
        assert mgr.bytes_used == 0 and len(mgr) == 0

    def test_shrink_noop_when_fits(self):
        mgr, _ = make(available=1000)
        mgr.consider(1, 400)
        mgr.shrink_to(900)
        assert 1 in mgr

    def test_remove_explicit(self):
        mgr, _ = make()
        mgr.consider(1, 100)
        assert mgr.remove(1)
        assert not mgr.remove(1)
        assert mgr.bytes_used == 0

    def test_clear(self):
        mgr, _ = make()
        mgr.consider(1, 100)
        mgr.consider(2, 100)
        mgr.clear()
        assert len(mgr) == 0 and mgr.bytes_used == 0

    def test_files_iterates_entries(self):
        mgr, _ = make()
        mgr.consider(1, 100)
        mgr.consider(2, 100)
        assert set(mgr.files()) == {1, 2}
