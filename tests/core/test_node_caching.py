"""Tests for the per-node caching hooks of PAST (§4)."""

import pytest

from repro.pastry import idspace
from tests.conftest import build_past


@pytest.fixture
def net():
    return build_past(n=24, capacity=5_000_000, k=3, seed=120, cache_policy="gds")


@pytest.fixture
def owner(net):
    return net.create_client("o")


class TestRoutedCaching:
    def test_insert_populates_route_caches(self, net, owner):
        origin = net.nodes()[0].node_id
        res = net.insert("a", owner, 2_000, origin)
        key = idspace.routing_key(res.file_id)
        kset = set(net.pastry.k_closest_live(key, 3))
        cached_somewhere = any(
            res.file_id in n.store.cache for n in net.nodes() if n.node_id not in kset
        )
        origin_holds = net.past_node(origin).store.references_file(res.file_id)
        assert cached_somewhere or origin_holds

    def test_replica_holder_does_not_cache_own_file(self, net, owner):
        res = net.insert("a", owner, 2_000, net.nodes()[0].node_id)
        key = idspace.routing_key(res.file_id)
        for m in net.pastry.k_closest_live(key, 3):
            node = net.past_node(m)
            if node.store.holds_file(res.file_id):
                assert res.file_id not in node.store.cache

    def test_cache_hit_serves_lookup_locally(self, net, owner):
        res = net.insert("a", owner, 2_000, net.nodes()[0].node_id)
        origin = net.nodes()[-1].node_id
        first = net.lookup(res.file_id, origin)
        second = net.lookup(res.file_id, origin)
        assert second.hops <= first.hops
        if net.past_node(origin).store.cache.enabled:
            assert second.source == "cache" or second.hops == 0

    def test_cached_copy_discarded_for_replica(self, net, owner):
        """Cached copies yield to primary/diverted replicas at any time."""
        node = net.nodes()[0]
        node.store.cache.consider(999, node.store.cache_space() - 1_000)
        cert = owner.issue_file_certificate(1, node.store.free - 500, 1, 0, 0)
        node.store.store_replica(cert, diverted=False)
        assert node.store.used + node.store.cache.bytes_used <= node.store.capacity

    def test_cache_disabled_network(self):
        net = build_past(n=20, capacity=5_000_000, k=3, seed=121, cache_policy="none")
        owner = net.create_client("o")
        res = net.insert("a", owner, 2_000, net.nodes()[0].node_id)
        assert all(res.file_id not in n.store.cache for n in net.nodes())

    def test_cache_fraction_blocks_large_files(self):
        net = build_past(
            n=20, capacity=5_000_000, k=3, seed=122,
            cache_policy="gds", cache_fraction=0.001,
        )
        owner = net.create_client("o")
        res = net.insert("big-ish", owner, 100_000, net.nodes()[0].node_id)
        net.lookup(res.file_id, net.nodes()[-1].node_id)
        assert all(res.file_id not in n.store.cache for n in net.nodes())

    def test_cache_hit_ratio_reported(self, net, owner):
        res = net.insert("a", owner, 2_000, net.nodes()[0].node_id)
        origin = net.nodes()[-1].node_id
        net.lookup(res.file_id, origin)
        net.lookup(res.file_id, origin)
        assert 0.0 <= net.stats.global_cache_hit_ratio() <= 1.0
