"""Tests for LocalStore: the acceptance rule and replica bookkeeping."""

import pytest

from repro.core.errors import CapacityError
from repro.core.storage import LocalStore
from repro.security import FileCertificate
from repro.security.keys import KeyPair

OWNER = KeyPair("store-owner")


def cert(fid=1, size=100, k=3):
    return FileCertificate.issue(fid, size, k, 0, 0, OWNER)


def make(capacity=1000, **kw):
    return LocalStore(capacity, **kw)


class TestAcceptancePolicy:
    def test_accepts_small_file_when_empty(self):
        assert make(1000).can_accept(100, threshold=0.1)

    def test_rejects_when_over_threshold(self):
        """Reject iff size/free > t (the paper's SD/FN rule)."""
        store = make(1000)
        assert store.can_accept(100, 0.1)  # exactly t is allowed
        assert not store.can_accept(101, 0.1)

    def test_rejects_larger_than_free(self):
        assert not make(1000).can_accept(1001, 1.0)

    def test_threshold_applies_to_remaining_free_space(self):
        store = make(1000)
        store.store_replica(cert(1, 500), diverted=False)
        assert store.can_accept(50, 0.1)
        assert not store.can_accept(51, 0.1)

    def test_zero_size_always_accepted(self):
        store = make(10)
        store.store_replica(cert(1, 10), diverted=False)
        assert store.free == 0
        assert store.can_accept(0, 0.05)

    def test_full_node_rejects_everything_else(self):
        store = make(10)
        store.store_replica(cert(1, 10), diverted=False)
        assert not store.can_accept(1, 1.0)


class TestReplicaBookkeeping:
    def test_store_primary(self):
        store = make()
        replica = store.store_replica(cert(1, 100), diverted=False)
        assert not replica.diverted
        assert store.holds_file(1)
        assert store.used == 100 and store.free == 900

    def test_store_diverted(self):
        store = make()
        store.store_replica(cert(1, 100), diverted=True)
        assert 1 in store.diverted_in and 1 not in store.primaries

    def test_duplicate_replica_rejected(self):
        store = make()
        store.store_replica(cert(1, 100), diverted=False)
        with pytest.raises(CapacityError):
            store.store_replica(cert(1, 100), diverted=True)

    def test_oversize_replica_rejected(self):
        with pytest.raises(CapacityError):
            make(50).store_replica(cert(1, 100), diverted=False)

    def test_drop_replica_frees_space(self):
        store = make()
        store.store_replica(cert(1, 100), diverted=False)
        dropped = store.drop_replica(1)
        assert dropped.size == 100
        assert store.used == 0 and not store.holds_file(1)

    def test_drop_absent_returns_none(self):
        assert make().drop_replica(9) is None

    def test_accounting_hook_sees_deltas(self):
        deltas = []
        store = LocalStore(1000, accounting=deltas.append)
        store.store_replica(cert(1, 100), diverted=False)
        store.drop_replica(1)
        assert deltas == [100, -100]

    def test_replica_displaces_cached_copy(self):
        store = make()
        store.cache.consider(1, 100)
        store.store_replica(cert(1, 100), diverted=False)
        assert 1 not in store.cache
        assert store.holds_file(1)

    def test_new_replica_shrinks_cache(self):
        store = make(1000)
        store.cache.consider(50, 800)
        store.store_replica(cert(1, 600), diverted=False)
        assert store.used + store.cache.bytes_used <= store.capacity


class TestPointers:
    def test_add_and_query(self):
        store = make()
        store.add_pointer(cert(1, 100), target_id=42, primary=True)
        assert store.references_file(1)
        assert not store.holds_file(1)
        assert store.pointers[1].target_id == 42

    def test_pointer_consumes_no_space(self):
        store = make()
        store.add_pointer(cert(1, 100), 42, True)
        assert store.used == 0

    def test_drop_pointer(self):
        store = make()
        store.add_pointer(cert(1, 100), 42, True)
        assert store.drop_pointer(1) is not None
        assert store.drop_pointer(1) is None

    def test_certificate_for_prefers_replica(self):
        store = make()
        c = cert(1, 100)
        store.store_replica(c, diverted=False)
        assert store.certificate_for(1) is c

    def test_certificate_for_pointer(self):
        store = make()
        c = cert(1, 100)
        store.add_pointer(c, 42, True)
        assert store.certificate_for(1) is c

    def test_certificate_for_absent(self):
        assert make().certificate_for(5) is None

    def test_file_ids_unions_everything(self):
        store = make()
        store.store_replica(cert(1, 10), diverted=False)
        store.store_replica(cert(2, 10), diverted=True)
        store.add_pointer(cert(3, 10), 42, True)
        assert set(store.file_ids()) == {1, 2, 3}


class TestSnapshot:
    def test_snapshot_fields(self):
        store = make(500)
        store.store_replica(cert(1, 100), diverted=False)
        snap = store.snapshot()
        assert snap["capacity"] == 500
        assert snap["used"] == 100
        assert snap["primaries"] == 1

    def test_utilization(self):
        store = make(500)
        store.store_replica(cert(1, 100), diverted=False)
        assert store.utilization() == pytest.approx(0.2)

    def test_zero_capacity_utilization(self):
        assert LocalStore(0).utilization() == 1.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LocalStore(-1)


class TestDiskFaultAccounting:
    """Charge/refund symmetry and write refusal under a storage fault plan."""

    def make_faulty(self, node_id=5, **plan_kw):
        from repro.netsim.faults import StorageFaultPlan

        store = make(1000)
        store.node_id = node_id
        plan = StorageFaultPlan(seed=2, **plan_kw)
        store.fault_plan = plan
        store.now = lambda: 1.0
        return store, plan

    def test_charge_refund_symmetry_through_corruption_and_repair(self):
        from repro.core.storage import REPLICA_MISSING
        from repro.netsim.faults import READ_CORRUPT, READ_OK

        store, plan = self.make_faulty(partial_write=1.0)
        replica = store.store_replica(cert(1, 100), diverted=False)
        assert replica.corrupted and store.used == 100
        assert store.verify_replica(1) == READ_CORRUPT
        plan.partial_write = 0.0
        assert store.repair_replica(1)
        assert store.used == 100 and not replica.corrupted
        assert store.verify_replica(1) == READ_OK
        store.drop_replica(1)
        assert store.used == 0
        assert not plan.is_corrupt(5, 1)
        assert store.verify_replica(1) == REPLICA_MISSING
        assert not store.repair_replica(1)

    def test_repair_rewrite_can_tear_again(self):
        store, plan = self.make_faulty(partial_write=1.0)
        store.store_replica(cert(1, 100), diverted=False)
        assert not store.repair_replica(1)  # the rewrite itself tore
        plan.partial_write = 0.0
        assert store.repair_replica(1)

    def test_readonly_disk_raises_capacity_error(self):
        from repro.netsim.faults import DISK_READONLY

        store, plan = self.make_faulty()
        plan.set_disk_mode(5, DISK_READONLY)
        assert not store.can_accept(10, 1.0)
        with pytest.raises(CapacityError):
            store.store_replica(cert(2, 10), diverted=False)
        assert plan.stats.writes_refused == 1
        assert store.used == 0 and not store.holds_file(2)

    def test_readonly_disk_refuses_repair_rewrite(self):
        from repro.netsim.faults import DISK_READONLY

        store, plan = self.make_faulty(partial_write=1.0)
        store.store_replica(cert(1, 100), diverted=False)
        plan.partial_write = 0.0
        plan.set_disk_mode(5, DISK_READONLY)
        assert not store.repair_replica(1)
        assert store.get_replica(1).corrupted

    def test_corrupt_cache_copy_is_evicted_not_repaired(self):
        store, plan = self.make_faulty(bitrot_rate=1e9)
        now = {"t": 0.0}
        store.now = lambda: now["t"]
        assert store.cache.consider(9, 50)
        store.note_cached(9)
        now["t"] = 1.0
        assert not store.verified_cache_hit(9)
        assert not store.cache.lookup(9)
        # The corruption record leaves with the evicted copy: a future
        # replica of the same fid on this disk starts clean.
        assert not plan.is_corrupt(5, 9)

    def test_verified_cache_hit_clean_path(self):
        store, plan = self.make_faulty()
        state = plan.rng.getstate()
        assert store.cache.consider(9, 50)
        store.note_cached(9)
        assert store.verified_cache_hit(9)
        assert plan.rng.getstate() == state  # zero rates -> zero draws

    def test_no_plan_paths_are_noops(self):
        from repro.netsim.faults import READ_OK

        store = make(1000)
        store.store_replica(cert(1, 100), diverted=False)
        assert store.verify_replica(1) == READ_OK
        assert store.repair_replica(1)
        assert store.cache.consider(9, 50)
        store.note_cached(9)
        assert store.verified_cache_hit(9)
        assert store._cache_checked == {}
