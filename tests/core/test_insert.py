"""Tests for the Insert operation: placement, receipts, quotas, collisions."""

import random

import pytest

from repro.pastry import idspace
from tests.conftest import build_past


@pytest.fixture
def net():
    return build_past(n=30, capacity=5_000_000, k=3, seed=50)


@pytest.fixture
def owner(net):
    return net.create_client("owner")


def gateway(net, i=0):
    return net.nodes()[i].node_id


class TestPlacement:
    def test_insert_returns_fileid_and_receipts(self, net, owner):
        result = net.insert("a.txt", owner, 10_000, gateway(net))
        assert result.success
        assert result.file_id is not None
        assert len(result.receipts) == 3

    def test_receipts_from_distinct_nodes(self, net, owner):
        result = net.insert("a.txt", owner, 10_000, gateway(net))
        nodes = {r.node_id for r in result.receipts}
        assert len(nodes) == 3

    def test_replicas_on_k_numerically_closest(self, net, owner):
        result = net.insert("a.txt", owner, 10_000, gateway(net))
        key = idspace.routing_key(result.file_id)
        kset = net.pastry.k_closest_live(key, 3)
        for member in kset:
            assert net.past_node(member).store.references_file(result.file_id)

    def test_insert_from_every_origin_converges(self, net, owner):
        results = [
            net.insert(f"file-{i}", owner, 5_000, node.node_id)
            for i, node in enumerate(net.nodes())
        ]
        assert all(r.success for r in results)
        for r in results:
            key = idspace.routing_key(r.file_id)
            kset = net.pastry.k_closest_live(key, 3)
            holders = [
                m for m in kset if net.past_node(m).store.references_file(r.file_id)
            ]
            assert len(holders) == 3

    def test_utilization_accounts_k_copies(self, net, owner):
        before = net.bytes_stored
        net.insert("a.txt", owner, 10_000, gateway(net))
        assert net.bytes_stored == before + 3 * 10_000

    def test_zero_byte_file(self, net, owner):
        """The NLANR trace contains 0-byte files; they must insert fine."""
        result = net.insert("empty", owner, 0, gateway(net))
        assert result.success

    def test_replicas_hold_verified_certificates(self, net, owner):
        result = net.insert("a.txt", owner, 10_000, gateway(net))
        key = idspace.routing_key(result.file_id)
        for member in net.pastry.k_closest_live(key, 3):
            store = net.past_node(member).store
            replica = store.get_replica(result.file_id)
            if replica is not None:
                replica.certificate.verify()
                assert replica.certificate.size == 10_000


class TestFailureModes:
    def test_oversized_file_fails_with_reason(self, net, owner):
        result = net.insert("huge", owner, 50_000_000, gateway(net))
        assert not result.success
        assert result.failure_reason is not None
        assert result.attempts == net.config.max_insert_attempts

    def test_failed_insert_leaves_no_replicas(self, net, owner):
        before = net.bytes_stored
        net.insert("huge", owner, 50_000_000, gateway(net))
        assert net.bytes_stored == before

    def test_failed_insert_refunds_quota(self, net):
        limited = net.create_client("limited", quota=10**12)
        net.insert("huge", limited, 50_000_000, gateway(net))
        assert limited.quota_used == 0

    def test_quota_exhaustion_blocks_insert(self, net):
        limited = net.create_client("limited", quota=25_000)
        ok = net.insert("one", limited, 5_000, gateway(net))
        assert ok.success  # 15_000 of 25_000 used
        blocked = net.insert("two", limited, 5_000, gateway(net))
        assert not blocked.success
        assert "quota" in blocked.failure_reason

    def test_successful_insert_debits_quota(self, net):
        limited = net.create_client("limited", quota=100_000)
        net.insert("a", limited, 10_000, gateway(net))
        assert limited.quota_used == 30_000

    def test_insert_stats_recorded(self, net, owner):
        net.insert("a.txt", owner, 10_000, gateway(net))
        net.insert("huge", owner, 50_000_000, gateway(net))
        assert net.stats.insert_attempts == 2
        assert net.stats.insert_successes == 1
        assert net.stats.insert_failures == 1


class TestCollision:
    def test_duplicate_fileid_rejected_then_resalted(self, net, owner):
        """A fileId collision rejects the later insert; the client re-salts."""
        first = net.insert("a.txt", owner, 1_000, gateway(net))
        # Force the same salt sequence by replaying the RNG state.
        net.rng = random.Random(999)
        second = net.insert("b.txt", owner, 1_000, gateway(net))
        assert first.success and second.success
        assert first.file_id != second.file_id

    def test_registry_knows_inserted_files(self, net, owner):
        result = net.insert("a.txt", owner, 1_000, gateway(net))
        assert net.is_file_registered(result.file_id)
        assert net.certificate_of(result.file_id).size == 1_000
        assert net.owner_of(result.file_id) == owner.public_key


class TestReplicationFactor:
    def test_custom_k_within_bound(self):
        net = build_past(n=20, capacity=5_000_000, k=5, l=16, seed=51)
        owner = net.create_client("o")
        result = net.insert("a", owner, 1_000, net.nodes()[0].node_id)
        assert len(result.receipts) == 5

    def test_insufficient_nodes_for_k(self):
        net = build_past(n=2, capacity=5_000_000, k=3, seed=52)
        owner = net.create_client("o")
        result = net.insert("a", owner, 1_000, net.nodes()[0].node_id)
        assert not result.success
        assert "insufficient" in result.failure_reason


class TestQuotaScalesWithK:
    def test_quota_debit_uses_per_insert_k(self):
        """A k=1 insert (e.g. an erasure shard) debits size x 1, not x k."""
        net = build_past(n=20, capacity=5_000_000, k=3, seed=53)
        owner = net.create_client("k1", quota=100_000)
        result = net.insert("shard", owner, 10_000, net.nodes()[0].node_id, k=1)
        assert result.success
        assert owner.quota_used == 10_000
        assert len(result.receipts) == 1
