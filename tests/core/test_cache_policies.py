"""Tests for the GreedyDual-Size and LRU eviction policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.cache import GreedyDualSizePolicy, LRUPolicy, make_policy


class TestGreedyDualSize:
    def test_weight_is_inverse_size(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 10)
        p.on_insert(2, 100)
        assert p.weight(1) == pytest.approx(0.1)
        assert p.weight(2) == pytest.approx(0.01)

    def test_victim_is_min_weight(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 10)
        p.on_insert(2, 100)  # smaller H
        assert p.victim() == 2

    def test_eviction_inflates_offset(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 10)
        p.on_insert(2, 100)
        p.on_evict(p.victim())
        assert p.inflation == pytest.approx(0.01)
        # A new file now enters with H = L + 1/size.
        p.on_insert(3, 100)
        assert p.weight(3) == pytest.approx(0.02)

    def test_hit_refreshes_weight(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 100)
        p.on_insert(2, 100)
        p.on_evict(p.victim())  # L rises to 0.01
        p.on_hit(2) if p.victim() == 2 else None
        survivor = p.victim()
        p.on_hit(survivor)
        assert p.weight(survivor) == pytest.approx(p.inflation + 0.01)

    def test_recency_breaks_size_ties(self):
        """Equal-size files: after inflation, untouched files evict first."""
        p = GreedyDualSizePolicy()
        p.on_insert(1, 50)
        p.on_insert(2, 50)
        p.on_insert(3, 50)
        p.on_evict(p.victim())
        p.on_hit(2)  # 2's weight is now L + 1/50, above 3's
        assert p.victim() == 3

    def test_custom_cost_function(self):
        p = GreedyDualSizePolicy(cost_fn=lambda fid, size: 10.0 if fid == 1 else 1.0)
        p.on_insert(1, 100)
        p.on_insert(2, 100)
        assert p.victim() == 2  # 1 has 10x the cost, hence 10x the weight

    def test_remove_clears_entry(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 10)
        p.on_remove(1)
        assert p.victim() is None
        assert p.weight(1) is None

    def test_stale_heap_entries_skipped(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 10)
        p.on_hit(1)  # creates a stale heap entry
        p.on_insert(2, 1000)
        assert p.victim() == 2

    def test_zero_size_never_victim_first(self):
        p = GreedyDualSizePolicy()
        p.on_insert(1, 0)  # infinite weight
        p.on_insert(2, 10)
        assert p.victim() == 2

    @given(st.lists(st.tuples(st.integers(1, 20), st.integers(1, 10_000)),
                    min_size=1, max_size=50))
    def test_property_victim_always_minimal(self, inserts):
        p = GreedyDualSizePolicy()
        live = {}
        for fid, size in inserts:
            p.on_insert(fid, size)
            live[fid] = size
        victim = p.victim()
        assert victim in live
        # No live file may have a strictly smaller weight than the victim.
        vw = p.weight(victim)
        for fid in live:
            assert p.weight(fid) >= vw - 1e-12


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy()
        p.on_insert(1, 10)
        p.on_insert(2, 10)
        assert p.victim() == 1

    def test_hit_moves_to_back(self):
        p = LRUPolicy()
        p.on_insert(1, 10)
        p.on_insert(2, 10)
        p.on_hit(1)
        assert p.victim() == 2

    def test_hit_on_absent_is_noop(self):
        p = LRUPolicy()
        p.on_insert(1, 10)
        p.on_hit(99)
        assert p.victim() == 1

    def test_reinsert_refreshes(self):
        p = LRUPolicy()
        p.on_insert(1, 10)
        p.on_insert(2, 10)
        p.on_insert(1, 10)
        assert p.victim() == 2

    def test_remove(self):
        p = LRUPolicy()
        p.on_insert(1, 10)
        p.on_remove(1)
        assert p.victim() is None

    @given(st.lists(st.integers(1, 10), min_size=1, max_size=60))
    def test_property_victim_matches_reference_model(self, accesses):
        p = LRUPolicy()
        order = []
        for fid in accesses:
            if fid in order:
                order.remove(fid)
                p.on_hit(fid)
            else:
                p.on_insert(fid, 1)
            order.append(fid)
        assert p.victim() == order[0]


class TestFactory:
    def test_make_gds(self):
        assert isinstance(make_policy("gds"), GreedyDualSizePolicy)

    def test_make_lru(self):
        assert isinstance(make_policy("lru"), LRUPolicy)

    def test_make_none(self):
        assert make_policy("none") is None

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("arc")
