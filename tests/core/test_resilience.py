"""Client-side resilience: RetryPolicy, resilient lookups, hedging."""

import random

import pytest

from repro.core import NO_RETRY_POLICY, RetryPolicy
from repro.core.messages import LookupRequest
from repro.netsim.faults import FaultPlan
from repro.pastry import idspace
from tests.conftest import build_past


def build_loaded(n=20, n_files=15, seed=70, k=3):
    net = build_past(n, k=k, l=8, seed=seed, cache_policy="none")
    owner = net.create_client("res-owner")
    rng = random.Random(seed)
    node_ids = [node.node_id for node in net.nodes()]
    fids = []
    for i in range(n_files):
        res = net.insert(f"res{i}", owner, 20_000,
                         node_ids[rng.randrange(len(node_ids))])
        assert res.success
        fids.append(res.file_id)
    return net, fids, node_ids


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_is_exponential_and_jittered(self):
        policy = RetryPolicy(base_backoff=0.5, backoff_factor=2.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff(1, rng) == pytest.approx(0.5)
        assert policy.backoff(2, rng) == pytest.approx(1.0)
        assert policy.backoff(3, rng) == pytest.approx(2.0)
        jittered = RetryPolicy(base_backoff=0.5, backoff_factor=2.0, jitter=0.5)
        delays = [jittered.backoff(1, random.Random(s)) for s in range(5)]
        assert all(0.5 <= d <= 0.75 for d in delays)
        assert len(set(delays)) > 1

    def test_backoff_replays_with_seeded_rng(self):
        policy = RetryPolicy()
        a = [policy.backoff(i, random.Random(9)) for i in (1, 2, 3)]
        b = [policy.backoff(i, random.Random(9)) for i in (1, 2, 3)]
        assert a == b

    def test_no_retry_policy_is_single_shot(self):
        assert NO_RETRY_POLICY.max_attempts == 1
        assert not NO_RETRY_POLICY.hedge


class TestResilientLookup:
    def test_clean_network_single_attempt(self):
        net, fids, node_ids = build_loaded()
        result = net.lookup(fids[0], node_ids[0], policy=RetryPolicy())
        assert result.success and result.attempts == 1 and not result.hedged

    def test_total_loss_exhausts_attempts(self):
        net, fids, node_ids = build_loaded()
        net.pastry.fault_plan = FaultPlan(seed=1, loss=1.0)
        policy = RetryPolicy(max_attempts=4)
        # Origin must not itself hold the file, or no hop is needed.
        key = idspace.routing_key(fids[0])
        holders = set(net.pastry.k_closest_live(key, net.config.k))
        origin = next(n for n in node_ids if n not in holders)
        result = net.lookup(fids[0], origin, policy=policy)
        assert not result.success
        assert result.attempts == 4
        assert result.elapsed > 0.0  # backoffs + timeouts were charged

    def test_retry_beats_baseline_under_partial_loss(self):
        def run(policy):
            net, fids, node_ids = build_loaded(seed=71)
            net.pastry.fault_plan = FaultPlan(seed=5, loss=0.3)
            rng = random.Random(11)
            ok = 0
            for _ in range(40):
                fid = fids[rng.randrange(len(fids))]
                origin = node_ids[rng.randrange(len(node_ids))]
                if net.lookup(fid, origin, policy=policy).success:
                    ok += 1
            return ok

        baseline = run(None)
        resilient = run(RetryPolicy(max_attempts=6))
        assert baseline < 40  # the loss rate really bites
        assert resilient > baseline
        assert resilient >= 39

    def test_policy_none_is_byte_identical_to_legacy_path(self):
        a_net, fids, node_ids = build_loaded(seed=72)
        b_net, _, _ = build_loaded(seed=72)
        a = a_net.lookup(fids[3], node_ids[2])
        b = b_net.lookup(fids[3], node_ids[2], policy=None)
        assert (a.success, a.hops, a.source, a.responder_id) == (
            b.success, b.hops, b.source, b.responder_id
        )

    def test_hedged_fetch_asks_replica_holders_directly(self):
        net, fids, node_ids = build_loaded()
        fid = fids[0]
        key = idspace.routing_key(fid)
        # Any terminus works: its leaf set covers the replica set.
        terminus = net.past_node_or_none(net.pastry.k_closest_live(key, 1)[0])
        request = LookupRequest(fid, node_ids[0])
        assert net._hedged_fetch(request, terminus.node_id, key)
        assert request.source is not None
        assert request.extra_hops >= 1

    def test_hedged_fetch_fails_when_rpcs_all_lost(self):
        net, fids, node_ids = build_loaded()
        fid = fids[0]
        key = idspace.routing_key(fid)
        net.pastry.fault_plan = FaultPlan(seed=2, loss=1.0)
        terminus = net.past_node_or_none(net.pastry.k_closest_live(key, 1)[0])
        request = LookupRequest(fid, node_ids[0])
        assert not net._hedged_fetch(request, terminus.node_id, key)
        assert request.source is None


class TestResilientInsert:
    def test_insert_reroute_beats_baseline_under_loss(self):
        """A policy re-issues *lost* insert routes instead of burning a
        §3.4 salt attempt on them; replica-set RPC loss (which the
        coordinator does not retry) still caps the win."""
        def run(policy):
            net = build_past(16, k=3, l=8, seed=73, cache_policy="none")
            owner = net.create_client("ins-owner")
            node_ids = [node.node_id for node in net.nodes()]
            net.pastry.fault_plan = FaultPlan(seed=4, loss=0.2)
            return sum(
                net.insert(f"i{i}", owner, 10_000,
                           node_ids[i % len(node_ids)],
                           policy=policy).success
                for i in range(12)
            )

        baseline = run(None)
        resilient = run(RetryPolicy(max_attempts=8))
        assert baseline < 12
        assert resilient > baseline
        assert resilient >= 8

    def test_insert_total_loss_fails_cleanly(self):
        net = build_past(16, k=3, l=8, seed=74, cache_policy="none")
        owner = net.create_client("ins-owner")
        origin = sorted(net.pastry.node_ids)[0]
        net.pastry.fault_plan = FaultPlan(seed=4, loss=1.0)
        result = net.insert("doomed", owner, 10_000, origin,
                            policy=RetryPolicy(max_attempts=3))
        assert not result.success
        # The owner's quota was rolled back: a healed retry succeeds.
        net.pastry.fault_plan = None
        assert net.insert("doomed", owner, 10_000, origin,
                          policy=RetryPolicy(max_attempts=3)).success
