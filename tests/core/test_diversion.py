"""Tests for replica diversion (§3.3) and file diversion (§3.4).

These exercise the A/B/C pointer protocol directly: node A (a primary
store that cannot accommodate a replica) diverts to node B in its leaf
set and installs pointers on itself and on C, the k+1-th closest node.
"""

import pytest

from repro.pastry import idspace
from tests.conftest import build_past, fill_network


def diversion_scenario(seed=70, k=3):
    """A network where one insert is forced to divert.

    Returns (net, owner, result) with result.replica_diversions >= 1.
    All nodes are large except the ones nearest a chosen fileId, so the
    primary store must divert into the leaf set.
    """
    import random

    net = build_past(n=24, capacity=4_000_000, k=k, seed=seed, t_pri=0.1, t_div=0.05)
    owner = net.create_client("owner")
    rng = random.Random(seed)
    # Fill the k nodes closest to a probe key almost to the brim so the
    # next replica for that key cannot be accepted locally.
    result = None
    for attempt in range(200):
        probe = net.insert(f"probe-{attempt}", owner, 200_000, net.nodes()[0].node_id)
        assert probe.success
        if probe.replica_diversions:
            result = probe
            break
        key = idspace.routing_key(probe.file_id)
        for member in net.pastry.k_closest_live(key, k):
            store = net.past_node(member).store
            filler = store.free - 100_000  # next 200k file exceeds t_pri * free
            if filler > 0:
                cert = owner.issue_file_certificate(
                    rng.getrandbits(idspace.FILE_ID_BITS), filler, 1, 0, 0
                )
                store.store_replica(cert, diverted=False)
                net._registry[cert.file_id] = cert
    return net, owner, result


class TestReplicaDiversion:
    def test_diversion_happens_under_local_pressure(self):
        net, owner, result = diversion_scenario()
        assert result is not None, "no diversion was triggered"
        assert result.success
        assert result.replica_diversions >= 1

    def test_pointer_on_A_targets_replica_on_B(self):
        net, owner, result = diversion_scenario()
        fid = result.file_id
        key = idspace.routing_key(fid)
        kset = net.pastry.k_closest_live(key, 3)
        pointers = [
            (m, net.past_node(m).store.pointers[fid])
            for m in kset
            if fid in net.past_node(m).store.pointers
        ]
        assert pointers, "a diverting node A must hold a pointer"
        for a_id, pointer in pointers:
            assert pointer.primary
            b = net.past_node(pointer.target_id)
            replica = b.store.diverted_in[fid]
            assert replica.diverted
            assert a_id in replica.referrers

    def test_B_outside_replica_set(self):
        net, owner, result = diversion_scenario()
        fid = result.file_id
        key = idspace.routing_key(fid)
        kset = set(net.pastry.k_closest_live(key, 3))
        for m in kset:
            pointer = net.past_node(m).store.pointers.get(fid)
            if pointer is not None and pointer.primary:
                assert pointer.target_id not in kset

    def test_backup_pointer_on_C(self):
        net, owner, result = diversion_scenario()
        fid = result.file_id
        key = idspace.routing_key(fid)
        kset = set(net.pastry.k_closest_live(key, 3))
        backups = [
            n for n in net.nodes()
            if fid in n.store.pointers
            and not n.store.pointers[fid].primary
        ]
        for c in backups:
            assert c.node_id not in kset
        # Either a backup exists or B itself is the k+1-th closest node.
        if not backups:
            k_plus_1 = net.pastry.k_closest_live(key, 4)[-1]
            assert net.past_node(k_plus_1).store.holds_file(fid)

    def test_diverted_lookup_costs_one_extra_hop(self):
        net, owner, result = diversion_scenario()
        fid = result.file_id
        key = idspace.routing_key(fid)
        # Look up directly from the diverting node A: served via pointer.
        for m in net.pastry.k_closest_live(key, 3):
            pointer = net.past_node(m).store.pointers.get(fid)
            if pointer is not None and pointer.primary:
                res = net.lookup(fid, m)
                assert res.success
                assert res.source == "pointer"
                assert res.hops == 1  # 0 routing hops + 1 pointer chase
                return
        pytest.skip("no primary pointer found")

    def test_diversion_target_has_max_free_space(self):
        """§3.3.1: B is the eligible leaf-set node with maximal free space."""
        net = build_past(n=16, capacity=1_000_000, k=2, l=16, seed=71)
        owner = net.create_client("owner")
        probe = net.insert("probe", owner, 10_000, net.nodes()[0].node_id)
        key = idspace.routing_key(probe.file_id)
        kset = net.pastry.k_closest_live(key, 2)
        a = net.past_node(kset[0])
        # Fill A so the next replica must divert.
        filler = owner.issue_file_certificate(1, a.store.free - 1_000, 1, 0, 0)
        a.store.store_replica(filler, diverted=False)
        eligible = [
            net.past_node(m)
            for m in a.leafset.members()
            if m not in kset
        ]
        expected_b = max(eligible, key=lambda n: (n.store.free, -n.node_id))
        cert = owner.issue_file_certificate(2, 5_000, 2, 0, 0)
        b_id = a._divert_replica(cert, kset)
        assert b_id == expected_b.node_id

    def test_diverted_replica_uses_t_div_policy(self):
        """B applies the stricter t_div threshold."""
        net = build_past(n=10, capacity=1_000_000, k=2, seed=72, t_pri=0.5, t_div=0.01)
        owner = net.create_client("owner")
        node = net.nodes()[0]
        cert = owner.issue_file_certificate(1, 500_000, 2, 0, 0)
        # 500k/1M = 0.5 > t_div: B must reject it as a diverted replica.
        assert not node.accept_diverted_replica(cert, referrer_id=1)
        small = owner.issue_file_certificate(2, 5_000, 2, 0, 0)
        assert node.accept_diverted_replica(small, referrer_id=1)


class TestFileDiversion:
    def test_resalting_changes_fileid_namespace_region(self):
        """Failed inserts retry with a new salt up to 4 attempts (§3.4)."""
        net = build_past(n=12, capacity=100_000, k=3, seed=73)
        owner = net.create_client("owner")
        result = net.insert("big", owner, 90_000, net.nodes()[0].node_id)
        assert not result.success
        assert result.attempts == 4

    def test_file_diversion_rescues_local_hotspot(self):
        """When one neighborhood is full, re-salting finds space elsewhere."""
        import random

        net = build_past(n=40, capacity=2_000_000, k=3, l=8, seed=74)
        owner = net.create_client("owner")
        rng = random.Random(74)
        # Saturate one contiguous arc of the ring.
        ids = net.pastry.node_ids
        for node_id in ids[:12]:
            store = net.past_node(node_id).store
            filler = owner.issue_file_certificate(
                rng.getrandbits(idspace.FILE_ID_BITS), store.free, 1, 0, 0
            )
            store.store_replica(filler, diverted=False)
            net._registry[filler.file_id] = filler
        # Inserts keyed into the full arc must eventually succeed by
        # diverting the whole file to another part of the namespace.
        successes = sum(
            net.insert(f"f{i}", owner, 50_000, ids[20]).success for i in range(30)
        )
        assert successes >= 28

    def test_file_diversions_counted_in_stats(self):
        net, owner, _ = diversion_scenario()
        diverted_events = [e for e in net.stats.inserts if e.file_diversions > 0]
        # The scenario may or may not have re-salted, but counting must be
        # consistent: file_diversions < max attempts.
        for e in diverted_events:
            assert 1 <= e.file_diversions <= 3
