"""Tests for the experiment statistics collector."""

import pytest

from repro.core.stats import InsertEvent, LookupEvent, PastStats


def ins(size=100, success=True, util=0.5, fdiv=0, rdiv=0, stored=3):
    return InsertEvent(size, success, util, fdiv, rdiv, stored)


def look(fid=1, hops=2, success=True, source="primary", util=0.5):
    return LookupEvent(fid, hops, success, source, util)


class TestInsertAccounting:
    def test_counters(self):
        s = PastStats()
        s.record_insert(ins(success=True))
        s.record_insert(ins(success=False, stored=0))
        assert s.insert_attempts == 2
        assert s.insert_successes == 1
        assert s.insert_failures == 1
        assert s.success_ratio() == 0.5
        assert s.failure_ratio() == 0.5

    def test_empty_ratios(self):
        s = PastStats()
        assert s.success_ratio() == 0.0
        assert s.failure_ratio() == 0.0

    def test_file_diversion_ratio_over_successes(self):
        """Table 2's column: % of successful inserts that re-salted."""
        s = PastStats()
        s.record_insert(ins(success=True, fdiv=0))
        s.record_insert(ins(success=True, fdiv=2))
        s.record_insert(ins(success=False, stored=0))
        assert s.file_diversion_ratio() == 0.5

    def test_replica_diversion_ratio_over_stored(self):
        s = PastStats()
        s.record_insert(ins(success=True, rdiv=1, stored=3))
        s.record_insert(ins(success=True, rdiv=0, stored=3))
        assert s.replica_diversion_ratio() == pytest.approx(1 / 6)

    def test_cumulative_failure_curve_monotone_x(self):
        s = PastStats()
        for i in range(50):
            s.record_insert(ins(success=(i % 5 != 0), util=i / 50))
        curve = s.cumulative_failure_curve(bins=10)
        assert len(curve) <= 12
        utils = [u for u, _ in curve]
        assert utils == sorted(utils)
        # Final point reflects the overall failure ratio.
        assert curve[-1][1] == pytest.approx(10 / 50)

    def test_file_diversion_curves_shape(self):
        s = PastStats()
        s.record_insert(ins(success=True, fdiv=1, util=0.1))
        s.record_insert(ins(success=True, fdiv=2, util=0.2))
        s.record_insert(ins(success=True, fdiv=3, util=0.3))
        curves = s.file_diversion_curves()
        assert len(curves) == 3
        util, r1, r2, r3, fail = curves[-1]
        assert (r1, r2, r3) == (pytest.approx(1 / 3),) * 3
        assert fail == 0.0

    def test_replica_diversion_curve(self):
        s = PastStats()
        s.record_insert(ins(success=True, rdiv=3, stored=3, util=0.2))
        s.record_insert(ins(success=True, rdiv=0, stored=3, util=0.4))
        curve = s.replica_diversion_curve()
        assert curve[0][1] == pytest.approx(1.0)
        assert curve[-1][1] == pytest.approx(0.5)

    def test_failed_insert_sizes(self):
        s = PastStats()
        s.record_insert(ins(size=111, success=False, util=0.9, stored=0))
        s.record_insert(ins(size=5, success=True))
        assert s.failed_insert_sizes() == [(0.9, 111)]


class TestLookupAccounting:
    def test_hit_ratio_over_successes(self):
        s = PastStats()
        s.record_lookup(look(source="cache"))
        s.record_lookup(look(source="primary"))
        s.record_lookup(look(success=False, source=None))
        assert s.global_cache_hit_ratio() == 0.5
        assert s.lookup_success_ratio() == pytest.approx(2 / 3)

    def test_mean_hops_over_successes(self):
        s = PastStats()
        s.record_lookup(look(hops=1))
        s.record_lookup(look(hops=3))
        s.record_lookup(look(hops=99, success=False))
        assert s.mean_lookup_hops() == 2.0

    def test_empty_lookup_stats(self):
        s = PastStats()
        assert s.global_cache_hit_ratio() == 0.0
        assert s.mean_lookup_hops() == 0.0
        assert s.lookup_success_ratio() == 0.0

    def test_caching_curve_buckets(self):
        s = PastStats()
        s.record_lookup(look(source="cache", hops=0, util=0.12))
        s.record_lookup(look(source="primary", hops=2, util=0.13))
        s.record_lookup(look(source="cache", hops=1, util=0.47))
        curve = s.caching_curve(bucket_width=0.05)
        assert len(curve) == 2
        mid0, hit0, hops0, count0 = curve[0]
        assert count0 == 2
        assert hit0 == 0.5
        assert hops0 == 1.0
