"""Tests for replica maintenance under joins, failures and recovery (§3.5)."""

import random

import pytest

from repro import audit
from repro.pastry import idspace
from tests.conftest import build_past, fill_network


def insert_files(net, owner, count=40, size=20_000, seed=80):
    rng = random.Random(seed)
    node_ids = [n.node_id for n in net.nodes()]
    fids = []
    for i in range(count):
        res = net.insert(f"m{i}", owner, size, node_ids[rng.randrange(len(node_ids))])
        assert res.success
        fids.append(res.file_id)
    return fids


class TestFailureMaintenance:
    def test_replicas_recreated_after_failure(self):
        net = build_past(n=30, capacity=5_000_000, k=3, seed=81)
        owner = net.create_client("o")
        fids = insert_files(net, owner)
        victim = net.pastry.node_ids[7]
        net.fail_node(victim)
        report = audit(net)
        assert report.ok, report.violations[:3]
        for fid in fids:
            kset = net.pastry.k_closest_live(idspace.routing_key(fid), 3)
            assert all(net.past_node(m).store.references_file(fid) for m in kset)

    def test_sequential_failures_keep_invariant(self):
        net = build_past(n=40, capacity=5_000_000, k=3, seed=82)
        owner = net.create_client("o")
        insert_files(net, owner, count=60)
        rng = random.Random(83)
        ids = list(net.pastry.node_ids)
        rng.shuffle(ids)
        for victim in ids[:10]:
            net.fail_node(victim)
        assert audit(net).ok

    def test_files_survive_k_minus_1_failures(self):
        net = build_past(n=30, capacity=5_000_000, k=3, seed=84)
        owner = net.create_client("o")
        res = net.insert("precious", owner, 30_000, net.nodes()[0].node_id)
        for _ in range(2):  # fail k-1 = 2 of the current holders, one at a time
            kset = net.pastry.k_closest_live(idspace.routing_key(res.file_id), 3)
            holder = next(
                m for m in kset if net.past_node(m).store.holds_file(res.file_id)
            )
            net.fail_node(holder)
        lookup = net.lookup(res.file_id, net.nodes()[0].node_id)
        assert lookup.success

    def test_degraded_when_no_space_anywhere(self):
        """At saturation, re-replication may fail; the file is flagged."""
        net = build_past(n=14, capacity=500_000, k=3, l=8, seed=85, t_pri=1.0)
        owner = net.create_client("o")
        rng = random.Random(85)
        fill_network(net, rng, target_util=0.97, owner=owner, max_size=120_000)
        victims = list(net.pastry.node_ids)[:2]
        for v in victims:
            net.fail_node(v)
        # Either everything was re-replicated (k invariant holds) or the
        # shortfall is recorded in degraded_files; the audit accepts both.
        assert audit(net).ok


class TestJoinMaintenance:
    def test_newcomer_acquires_entries(self):
        net = build_past(n=25, capacity=5_000_000, k=3, seed=86)
        owner = net.create_client("o")
        fids = insert_files(net, owner, count=50)
        newcomers = [n.node_id for batch in range(6) for n in net.add_node(5_000_000)]
        assert audit(net).ok
        for fid in fids:
            kset = net.pastry.k_closest_live(idspace.routing_key(fid), 3)
            for m in kset:
                assert net.past_node(m).store.references_file(fid)

    def test_join_offer_installs_pointer_not_copy(self):
        """§3.5: a joining node may install a pointer to the displaced node
        instead of copying the file immediately."""
        net = build_past(n=25, capacity=5_000_000, k=3, seed=87)
        owner = net.create_client("o")
        insert_files(net, owner, count=50)
        before_bytes = net.bytes_stored
        new_nodes = net.add_node(5_000_000)
        # Pointer-based acquisition moves no bytes (or very few if the
        # displaced holder was unavailable).
        assert net.bytes_stored <= before_bytes + 60_000
        assert audit(net).ok

    def test_displaced_node_discards_when_safe(self):
        net = build_past(n=20, capacity=5_000_000, k=2, l=8, seed=88)
        owner = net.create_client("o")
        insert_files(net, owner, count=30, seed=88)
        total_entries_before = sum(
            len(n.store.primaries) + len(n.store.pointers) for n in net.nodes()
        )
        for _ in range(10):
            net.add_node(5_000_000)
        assert audit(net).ok
        # No uncontrolled growth of entries: each file needs ~k entries.
        total_entries_after = sum(
            len(n.store.primaries) + len(n.store.pointers) for n in net.nodes()
        )
        assert total_entries_after <= total_entries_before + 35


class TestRecovery:
    def test_recovered_node_rejoins_with_disk(self):
        net = build_past(n=30, capacity=5_000_000, k=3, seed=89)
        owner = net.create_client("o")
        fids = insert_files(net, owner)
        victim = net.pastry.node_ids[5]
        held = [
            fid for fid in fids
            if net.past_node(victim).store.holds_file(fid)
        ]
        net.fail_node(victim)
        net.recover_node(victim)
        assert audit(net).ok
        for fid in fids:
            assert net.lookup(fid, net.nodes()[0].node_id).success

    def test_recovery_drops_reclaimed_files(self):
        net = build_past(n=30, capacity=5_000_000, k=3, seed=90)
        owner = net.create_client("o")
        res = net.insert("doomed", owner, 10_000, net.nodes()[0].node_id)
        key = idspace.routing_key(res.file_id)
        holder = next(
            m for m in net.pastry.k_closest_live(key, 3)
            if net.past_node(m).store.holds_file(res.file_id)
        )
        net.fail_node(holder)
        net.reclaim(res.file_id, owner, net.nodes()[0].node_id)
        net.recover_node(holder)
        assert not net.past_node(holder).store.references_file(res.file_id)
        assert audit(net).ok

    def test_churn_storm_preserves_invariants(self):
        net = build_past(n=35, capacity=5_000_000, k=3, l=8, seed=91)
        owner = net.create_client("o")
        fids = insert_files(net, owner, count=60, seed=91)
        rng = random.Random(92)
        failed = []
        for _ in range(25):
            roll = rng.random()
            if roll < 0.4 and len(net) > 20:
                victim = rng.choice(net.pastry.node_ids)
                net.fail_node(victim)
                failed.append(victim)
            elif roll < 0.6 and failed:
                net.recover_node(failed.pop())
            else:
                net.add_node(5_000_000)
        assert audit(net).ok
        found = sum(
            net.lookup(fid, net.nodes()[0].node_id).success for fid in fids
        )
        assert found == len(fids)


class TestMigration:
    def test_migration_pulls_replicas_home(self):
        net = build_past(n=25, capacity=5_000_000, k=3, seed=93)
        owner = net.create_client("o")
        insert_files(net, owner, count=50, seed=93)
        for _ in range(6):
            net.add_node(5_000_000)
        pointers_before = sum(len(n.store.pointers) for n in net.nodes())
        migrated = net.run_migration(rounds=3)
        pointers_after = sum(len(n.store.pointers) for n in net.nodes())
        assert migrated >= 0
        assert pointers_after <= pointers_before
        assert audit(net).ok

    def test_migration_idempotent_when_stable(self):
        net = build_past(n=25, capacity=5_000_000, k=3, seed=94)
        owner = net.create_client("o")
        insert_files(net, owner, count=20, seed=94)
        net.run_migration(rounds=3)
        assert net.run_migration(rounds=1) == 0
