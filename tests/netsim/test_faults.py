"""Unit tests for the deterministic fault-injection plane."""

import pytest

from repro.netsim.faults import (
    NEVER,
    CrashEvent,
    FaultPlan,
    Partition,
    Transmission,
)


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        def drive(plan):
            out = []
            for i in range(200):
                out.append(plan.transmit(i % 7, (i + 1) % 7))
            return out

        a = drive(FaultPlan(seed=42, loss=0.3, delay_mean=0.5, duplicate=0.1))
        b = drive(FaultPlan(seed=42, loss=0.3, delay_mean=0.5, duplicate=0.1))
        assert a == b

    def test_different_seeds_diverge(self):
        a = FaultPlan(seed=1, loss=0.5)
        b = FaultPlan(seed=2, loss=0.5)
        verdicts_a = [a.transmit(0, 1).lost for _ in range(100)]
        verdicts_b = [b.transmit(0, 1).lost for _ in range(100)]
        assert verdicts_a != verdicts_b

    def test_injecting_nothing_draws_nothing(self):
        """A no-op plan must not consume RNG state (zero-cost property)."""
        plan = FaultPlan(seed=9)
        state = plan.rng.getstate()
        for i in range(50):
            tx = plan.transmit(i, i + 1)
            assert tx == Transmission()
            assert not plan.rpc_lost(i, i + 1)
            assert not plan.probe_lost(i, i + 1)
        assert plan.rng.getstate() == state


class TestLoss:
    def test_certain_loss(self):
        plan = FaultPlan(seed=0, loss=1.0)
        assert all(plan.transmit(0, 1).lost for _ in range(20))
        assert plan.stats.messages_lost == 20

    def test_link_override_beats_uniform_rate(self):
        plan = FaultPlan(seed=0, loss=0.0)
        plan.set_link_loss(3, 4, 1.0)
        assert plan.transmit(3, 4).lost
        assert not plan.transmit(4, 3).lost  # directed
        assert not plan.transmit(0, 1).lost

    def test_gray_node_poisons_both_directions(self):
        plan = FaultPlan(seed=0, loss=0.0)
        plan.mark_gray(7, gray_loss=1.0)
        assert plan.transmit(7, 1).lost
        assert plan.transmit(1, 7).lost
        assert not plan.transmit(1, 2).lost

    def test_rpc_faces_loss_both_ways(self):
        plan = FaultPlan(seed=0)
        plan.set_link_loss(1, 2, 1.0)  # request direction only
        assert plan.rpc_lost(1, 2)
        assert plan.stats.rpcs_lost == 1
        plan2 = FaultPlan(seed=0)
        plan2.set_link_loss(2, 1, 1.0)  # reply direction only
        assert plan2.rpc_lost(1, 2)

    def test_probe_loss_counted_separately(self):
        plan = FaultPlan(seed=0, loss=1.0)
        assert plan.probe_lost(1, 2)
        assert plan.stats.probes_lost == 1
        assert plan.stats.rpcs_lost == 0


class TestDelayAndDuplication:
    def test_delay_injected_and_counted(self):
        plan = FaultPlan(seed=5, delay_mean=0.5)
        tx = plan.transmit(0, 1)
        assert tx.delay > 0.0 and not tx.lost
        assert plan.stats.delays_injected == 1
        assert plan.stats.delay_total == pytest.approx(tx.delay)

    def test_certain_duplication(self):
        plan = FaultPlan(seed=5, duplicate=1.0)
        tx = plan.transmit(0, 1)
        assert tx.duplicate and not tx.lost
        assert plan.stats.duplicates == 1


class TestPartitions:
    def test_severs_only_across_cut_within_window(self):
        p = Partition(start=2.0, end=5.0, group=frozenset({1, 2}))
        assert p.severs(1, 3, 3.0) and p.severs(3, 1, 3.0)
        assert not p.severs(1, 2, 3.0)  # same side
        assert not p.severs(3, 4, 3.0)  # same (other) side
        assert not p.severs(1, 3, 1.9)  # before
        assert not p.severs(1, 3, 5.0)  # healed (end-exclusive)

    def test_plan_consults_bound_clock(self):
        clock = {"now": 0.0}
        plan = FaultPlan(seed=0).bind_clock(lambda: clock["now"])
        plan.add_partition(at=1.0, heal_at=4.0, group=[1])
        assert not plan.transmit(1, 2).lost
        clock["now"] = 2.0
        assert plan.transmit(1, 2).lost
        assert plan.rpc_lost(1, 2)
        assert plan.stats.partition_drops == 1
        clock["now"] = 4.0
        assert not plan.transmit(1, 2).lost

    def test_never_heals(self):
        clock = {"now": 0.0}
        plan = FaultPlan(seed=0).bind_clock(lambda: clock["now"])
        plan.add_partition(at=0.0, heal_at=NEVER, group=[1])
        clock["now"] = 1e9
        assert plan.transmit(1, 2).lost


class TestCrashSchedule:
    def test_single_crash_event(self):
        plan = FaultPlan(seed=0)
        ev = plan.schedule_crash(2.0, 9, restart_at=8.0, wipe_disk=True)
        assert ev == CrashEvent(2.0, 9, 8.0, True)
        assert plan.crashes == [ev]

    def test_storm_is_ordered_and_seeded(self):
        a = FaultPlan(seed=3)
        b = FaultPlan(seed=3)
        ids = [10, 20, 30, 40]
        storm_a = a.schedule_crash_storm(ids, start=1.0, interarrival=5.0,
                                         restart_after=2.0, wipe_disk=True)
        storm_b = b.schedule_crash_storm(ids, start=1.0, interarrival=5.0,
                                         restart_after=2.0, wipe_disk=True)
        assert storm_a == storm_b  # same seed, same schedule
        times = [e.time for e in storm_a]
        assert times == sorted(times) and times[0] > 1.0
        assert all(e.restart_at == pytest.approx(e.time + 2.0) for e in storm_a)
        assert [e.node_id for e in storm_a] == ids


class TestValidation:
    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay_mean=-1.0)
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.mark_gray(1, gray_loss=2.0)
        with pytest.raises(ValueError):
            plan.set_link_loss(1, 2, -0.5)

    def test_bad_schedules_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.add_partition(at=5.0, heal_at=2.0, group=[1])
        with pytest.raises(ValueError):
            plan.schedule_crash(5.0, 1, restart_at=2.0)
        with pytest.raises(ValueError):
            plan.schedule_crash_storm([1], start=0.0, interarrival=0.0)
