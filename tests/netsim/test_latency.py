"""Tests for the latency model."""

import pytest

from repro.netsim import LatencyModel, PAPER_PER_HOP_MS, percentiles


class TestLatencyModel:
    def test_paper_anchor(self):
        """One hop, negligible distance, 1 kB ~= the paper's 25 ms."""
        model = LatencyModel(ms_per_unit=0.0, bandwidth_bytes_per_ms=0.0)
        assert model.lookup_latency_ms(1, 0.0, 1024) == PAPER_PER_HOP_MS

    def test_zero_hop_local_hit(self):
        model = LatencyModel()
        assert model.lookup_latency_ms(0, 0.0, 0) == 0.0

    def test_components_additive(self):
        model = LatencyModel(per_hop_ms=10.0, ms_per_unit=100.0,
                             bandwidth_bytes_per_ms=1000.0)
        latency = model.lookup_latency_ms(2, 0.5, 3_000)
        assert latency == pytest.approx(20.0 + 50.0 + 3.0)

    def test_rejects_negative(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.lookup_latency_ms(-1, 0, 0)
        with pytest.raises(ValueError):
            model.lookup_latency_ms(0, -0.1, 0)

    def test_monotone_in_every_argument(self):
        model = LatencyModel()
        base = model.lookup_latency_ms(1, 0.2, 1000)
        assert model.lookup_latency_ms(2, 0.2, 1000) > base
        assert model.lookup_latency_ms(1, 0.4, 1000) > base
        assert model.lookup_latency_ms(1, 0.2, 5000) > base


class TestPercentiles:
    def test_empty(self):
        assert percentiles([]) == {50: 0.0, 90: 0.0, 99: 0.0}

    def test_single_sample(self):
        assert percentiles([7.0]) == {50: 7.0, 90: 7.0, 99: 7.0}

    def test_ordering(self):
        p = percentiles(list(range(101)))
        assert p[50] == 50
        assert p[90] == 90
        assert p[99] == 99

    def test_unsorted_input(self):
        p = percentiles([5, 1, 9, 3, 7])
        assert p[50] == 5


class TestLookupDistanceTracking:
    def test_lookup_reports_route_distance(self):
        from tests.conftest import build_past

        net = build_past(n=25, capacity=3_000_000, k=3, seed=170)
        owner = net.create_client("o")
        res = net.insert("f", owner, 5_000, net.nodes()[0].node_id)
        lookup = net.lookup(res.file_id, net.nodes()[-1].node_id)
        assert lookup.success
        assert lookup.distance >= 0.0
        if lookup.hops > 0:
            assert lookup.distance > 0.0
        event = net.stats.lookups[-1]
        assert event.distance == lookup.distance
