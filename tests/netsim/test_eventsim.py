"""Tests for the discrete-event simulator."""

import pytest

from repro.netsim.eventsim import EventSimulator, PeriodicTimer


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = EventSimulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self):
        sim = EventSimulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_cannot_schedule_past(self):
        sim = EventSimulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = EventSimulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0

    def test_cancel(self):
        sim = EventSimulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(handle)
        sim.run()
        assert ran == []

    def test_run_until_partial(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(5.0, lambda: order.append("b"))
        sim.run_until(3.0)
        assert order == ["a"]
        assert sim.now == 3.0
        assert sim.pending() == 1

    def test_runaway_guard(self):
        sim = EventSimulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.001, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestPeriodicTimer:
    def test_fires_at_period(self):
        sim = EventSimulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop(self):
        sim = EventSimulator()
        ticks = []
        timer = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_callback(self):
        sim = EventSimulator()
        calls = []
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.callback = lambda: (calls.append(sim.now), timer.stop())
        timer.start()
        sim.run_until(10.0)
        assert calls == [1.0]

    def test_jitter(self):
        sim = EventSimulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), jitter_fn=lambda: 0.5)
        sim.run_until(4.0)
        assert ticks == [1.5, 3.0]

    def test_rejects_nonpositive_period(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)


class TestRecoveryExperiment:
    def test_detection_delay_costs_availability(self):
        from repro.experiments.recovery import run_recovery_window

        results = run_recovery_window(
            n_nodes=40, n_files=150, k=3, crash_fraction=0.5,
            detection_delays=[0.0, 20.0], seed=5,
        )
        by_delay = {r.detection_delay: r for r in results}
        assert by_delay[0.0].availability >= by_delay[20.0].availability
        assert by_delay[0.0].availability == pytest.approx(1.0)
        assert by_delay[20.0].availability < 1.0

    def test_no_disk_loss_means_no_loss(self):
        from repro.experiments.recovery import run_recovery_window

        results = run_recovery_window(
            n_nodes=30, n_files=80, k=3, crash_fraction=0.5,
            detection_delays=[20.0], disk_loss=False, seed=6,
        )
        assert results[0].availability == pytest.approx(1.0)


class TestKeepAliveRecovery:
    def test_protocol_driven_recovery_restores_files(self):
        from repro.experiments.recovery import run_keepalive_recovery

        result = run_keepalive_recovery(
            n_nodes=35, n_files=100, crash_fraction=0.25, seed=4
        )
        # Fast detection (T ~= 4 x interarrival/2): everything survives.
        assert result.availability > 0.97
        assert result.crashes >= 1

    def test_slow_detection_risks_losses(self):
        from repro.experiments.recovery import run_keepalive_recovery

        result = run_keepalive_recovery(
            n_nodes=35, n_files=150, crash_fraction=0.6,
            keepalive_timeout=60.0, mean_interarrival=0.3, seed=4,
        )
        # With 60% of nodes silent before any keep-alive expires, some
        # files must lose all replicas.
        assert result.availability < 1.0
