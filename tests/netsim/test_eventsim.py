"""Tests for the discrete-event simulator."""

import pytest

from repro.netsim.eventsim import EventSimulator, PeriodicTimer, SchedulePolicy
from repro.netsim.trace import ScheduleTrace


class LastChoicePolicy(SchedulePolicy):
    """Maximally anti-FIFO: always run the latest frontier candidate."""

    def __init__(self, window: float = 0.0):
        self.window = window

    def choose(self, frontier) -> int:
        return len(frontier) - 1


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = EventSimulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self):
        sim = EventSimulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_cannot_schedule_past(self):
        sim = EventSimulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = EventSimulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0

    def test_cancel(self):
        sim = EventSimulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(handle)
        sim.run()
        assert ran == []

    def test_run_until_partial(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(5.0, lambda: order.append("b"))
        sim.run_until(3.0)
        assert order == ["a"]
        assert sim.now == 3.0
        assert sim.pending() == 1

    def test_runaway_guard(self):
        sim = EventSimulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.001, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestEdgeCases:
    def test_same_time_fifo_under_heap_churn(self):
        # Interleave out-of-order schedules and cancellations so the heap
        # reorders internally; same-time events must still run in the
        # order they were scheduled.
        sim = EventSimulator()
        order = []
        sim.schedule(5.0, lambda: order.append("t5-a"))
        doomed = sim.schedule(5.0, lambda: order.append("doomed"))
        sim.schedule(1.0, lambda: order.append("t1"))
        sim.schedule(5.0, lambda: order.append("t5-b"))
        sim.cancel(doomed)
        sim.schedule(3.0, lambda: order.append("t3"))
        sim.schedule(5.0, lambda: order.append("t5-c"))
        sim.run()
        assert order == ["t1", "t3", "t5-a", "t5-b", "t5-c"]

    def test_run_until_exactly_at_tie_boundary(self):
        # Every event at the deadline runs — including ties and an event
        # a same-time callback schedules *at* the deadline — while events
        # strictly after it stay queued.
        sim = EventSimulator()
        order = []

        def first():
            order.append("first")
            sim.schedule_at(2.0, lambda: order.append("nested-at-deadline"))

        sim.schedule_at(2.0, first)
        sim.schedule_at(2.0, lambda: order.append("tied"))
        sim.schedule_at(2.0000001, lambda: order.append("after"))
        sim.run_until(2.0)
        assert order == ["first", "tied", "nested-at-deadline"]
        assert sim.now == 2.0
        assert sim.pending() == 1

    def test_cancel_inside_callback(self):
        sim = EventSimulator()
        order = []
        handles = {}

        def first():
            order.append("first")
            sim.cancel(handles["b"])

        sim.schedule(1.0, first)
        handles["b"] = sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["first"]
        assert sim._cancelled == set()
        assert sim._pending == set()


class TestCancelBookkeeping:
    def test_cancelled_stays_bounded_under_cancel_heavy_workload(self):
        # Regression: cancel-after-run and double-cancel used to leave
        # seqs in _cancelled forever.
        sim = EventSimulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(200)]
        sim.run()
        for handle in handles:  # cancel-after-run: all no-ops
            sim.cancel(handle)
        assert len(sim._cancelled) == 0
        live = sim.schedule(1.0, lambda: None)
        for _ in range(50):  # double-cancel: one entry, not fifty
            sim.cancel(live)
        assert len(sim._cancelled) == 1
        sim.run()
        assert len(sim._cancelled) == 0
        assert len(sim._pending) == 0

    def test_cancelled_never_exceeds_pending(self):
        sim = EventSimulator()
        for round_ in range(20):
            handles = [sim.schedule(1.0, lambda: None) for _ in range(10)]
            for handle in handles[::2]:
                sim.cancel(handle)
            assert len(sim._cancelled) <= len(sim._pending)
            sim.run()
            assert sim._cancelled == set()
            assert sim._pending == set()


class TestSchedulePolicy:
    @staticmethod
    def _mixed_workload(sim):
        """Timers, ties, nested schedules and cancels — order-sensitive."""
        order = []
        timer = sim.every(1.0, lambda: order.append(("tick", sim.now)))
        doomed = []

        def spawn():
            order.append(("spawn", sim.now))
            doomed.append(sim.schedule(2.0, lambda: order.append(("doomed", sim.now))))
            sim.schedule(1.0, lambda: order.append(("child", sim.now)))

        sim.schedule(1.0, spawn)
        sim.schedule(1.0, lambda: order.append(("tied", sim.now)))
        sim.schedule(1.5, lambda: sim.cancel(doomed[0]))
        sim.run_until(4.0)
        timer.stop()
        return order

    def test_base_policy_matches_unpoliced_run_exactly(self):
        # The frontier code path with the FIFO base policy must be
        # byte-for-byte equivalent to the original heap-pop path: same
        # event order, same cumulative digest stream.
        def run(policy):
            trace = ScheduleTrace()
            sim = EventSimulator(trace=trace, policy=policy)
            order = self._mixed_workload(sim)
            return order, trace

        order_none, trace_none = run(None)
        order_fifo, trace_fifo = run(SchedulePolicy())
        assert order_fifo == order_none
        assert trace_fifo.digests == trace_none.digests
        # Only the policy-driven run records decision points.
        assert trace_none.decisions == []
        assert len(trace_fifo.decisions) > 0
        assert all(d.chosen == 0 for d in trace_fifo.decisions)

    def test_anti_fifo_policy_reverses_ties(self):
        sim = EventSimulator(policy=LastChoicePolicy())
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["c", "b", "a"]

    def test_decision_options_describe_the_frontier(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace, policy=LastChoicePolicy())

        def cb():
            pass

        sim.schedule(1.0, cb)
        sim.schedule(1.0, cb)
        sim.schedule(2.0, cb)  # alone at its time: no decision
        sim.run()
        assert len(trace.decisions) == 1
        decision = trace.decisions[0]
        assert decision.chosen == 1
        assert [opt[1] for opt in decision.options] == [0, 1]
        assert all("cb" in opt[2] for opt in decision.options)

    def test_cancel_bookkeeping_bounded_under_policy(self):
        sim = EventSimulator(policy=LastChoicePolicy())
        for _ in range(20):
            handles = [sim.schedule(1.0, lambda: None) for _ in range(10)]
            for handle in handles[::2]:
                sim.cancel(handle)
            sim.run()
            assert sim._cancelled == set()
            assert sim._pending == set()
        for handle in handles:  # cancel-after-run stays a no-op
            sim.cancel(handle)
        assert sim._cancelled == set()

    def test_callback_can_cancel_frontier_sibling(self):
        # The unchosen frontier events are pushed back before the chosen
        # callback runs, so cancelling a same-time sibling must stick.
        sim = EventSimulator(policy=LastChoicePolicy())
        order = []
        handles = {}

        def killer():
            order.append("killer")
            sim.cancel(handles["victim"])

        handles["victim"] = sim.schedule(1.0, lambda: order.append("victim"))
        sim.schedule(1.0, killer)
        sim.run()
        assert order == ["killer"]
        assert sim._cancelled == set() and sim._pending == set()

    def test_window_commutes_nearby_events_monotonically(self):
        sim = EventSimulator(policy=LastChoicePolicy(window=0.2))
        order = []
        sim.schedule_at(1.0, lambda: order.append(("early", sim.now)))
        sim.schedule_at(1.1, lambda: order.append(("late", sim.now)))
        sim.schedule_at(2.0, lambda: order.append(("far", sim.now)))
        sim.run()
        # The later-stamped event ran first; virtual time never rewound.
        assert [name for name, _ in order] == ["late", "early", "far"]
        assert [now for _, now in order] == [1.1, 1.1, 2.0]

    def test_run_until_clamps_window_at_deadline(self):
        # A commutation window must never pull an event from beyond the
        # run_until deadline into the frontier.
        sim = EventSimulator(policy=LastChoicePolicy(window=5.0))
        order = []
        sim.schedule_at(2.0, lambda: order.append("at-deadline"))
        sim.schedule_at(2.5, lambda: order.append("beyond"))
        sim.run_until(2.0)
        assert order == ["at-deadline"]
        assert sim.now == 2.0
        assert sim.pending() == 1
        sim.run()
        assert order == ["at-deadline", "beyond"]

    def test_out_of_range_choice_raises(self):
        class BadPolicy(SchedulePolicy):
            def choose(self, frontier):
                return len(frontier)

        sim = EventSimulator(policy=BadPolicy())
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        with pytest.raises(IndexError):
            sim.run()


class TestScheduleTrace:
    def test_trace_records_executed_events(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace)

        def tick():
            pass

        sim.schedule(1.0, tick)
        sim.schedule(2.0, tick)
        sim.run()
        assert [e.time for e in trace.events] == [1.0, 2.0]
        assert [e.seq for e in trace.events] == [0, 1]
        assert all("tick" in e.callback for e in trace.events)
        assert all(e.site.startswith("test_eventsim.py:") for e in trace.events)
        assert len(trace.digests) == 2
        assert trace.digest() == trace.digests[-1]

    def test_identical_schedules_produce_identical_digests(self):
        def run():
            trace = ScheduleTrace()
            sim = EventSimulator(trace=trace)
            sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None)
            sim.run()
            return trace.digest()

        assert run() == run()

    def test_different_order_produces_different_digest(self):
        def run(first_delay, second_delay):
            trace = ScheduleTrace()
            sim = EventSimulator(trace=trace)
            sim.schedule(first_delay, lambda: None)
            sim.schedule(second_delay, lambda: None)
            sim.run()
            return trace.digest()

        assert run(1.0, 2.0) != run(2.0, 1.0)

    def test_cancelled_events_leave_no_trace(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace)
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.run()
        assert len(trace.events) == 1

    def test_env_variable_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sim = EventSimulator()
        assert sim.trace is not None
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(sim.trace.events) == 1

    def test_unfixed_ties_require_distinct_sites(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace)
        # Same site in a loop: seq order fully determined by the loop.
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert trace.unfixed_ties() == []

        trace2 = ScheduleTrace()
        sim2 = EventSimulator(trace=trace2)
        sim2.schedule(1.0, lambda: None)  # site A
        sim2.schedule(1.0, lambda: None)  # site B
        sim2.run()
        ties = trace2.unfixed_ties()
        assert len(ties) == 1
        assert len(ties[0]) == 2


class TestPeriodicTimer:
    def test_fires_at_period(self):
        sim = EventSimulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop(self):
        sim = EventSimulator()
        ticks = []
        timer = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_callback(self):
        sim = EventSimulator()
        calls = []
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.callback = lambda: (calls.append(sim.now), timer.stop())
        timer.start()
        sim.run_until(10.0)
        assert calls == [1.0]

    def test_jitter(self):
        sim = EventSimulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), jitter_fn=lambda: 0.5)
        sim.run_until(4.0)
        assert ticks == [1.5, 3.0]

    def test_first_delay_phase_spreads_then_keeps_period(self):
        sim = EventSimulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now), first_delay=0.5)
        sim.run_until(7.0)
        assert ticks == [0.5, 2.5, 4.5, 6.5]

    def test_zero_first_delay_fires_immediately_once(self):
        sim = EventSimulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now), first_delay=0.0)
        sim.run_until(5.0)
        # The zero delay is clamped to an epsilon; the period then holds.
        assert ticks == pytest.approx([0.0, 2.0, 4.0])

    def test_rejects_negative_first_delay(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.every(1.0, lambda: None, first_delay=-0.1)

    def test_rejects_nonpositive_period(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_negative_jitter_is_clamped(self):
        # Jitter that would drive the delay to zero or negative is clamped
        # to a tiny positive delay: time still advances and no
        # cannot-schedule-into-the-past error is raised.
        sim = EventSimulator()
        timer = sim.every(1.0, lambda: None, jitter_fn=lambda: -5.0)
        for _ in range(10):
            assert sim.step()
        assert timer.fires == 10
        assert sim.now > 0.0
        timer.stop()

    def test_mild_negative_jitter_shortens_period(self):
        sim = EventSimulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), jitter_fn=lambda: -0.5)
        sim.run_until(2.0)
        assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0])


class TestRecoveryExperiment:
    def test_detection_delay_costs_availability(self):
        from repro.experiments.recovery import run_recovery_window

        results = run_recovery_window(
            n_nodes=40, n_files=150, k=3, crash_fraction=0.5,
            detection_delays=[0.0, 20.0], seed=5,
        )
        by_delay = {r.detection_delay: r for r in results}
        assert by_delay[0.0].availability >= by_delay[20.0].availability
        assert by_delay[0.0].availability == pytest.approx(1.0)
        assert by_delay[20.0].availability < 1.0

    def test_no_disk_loss_means_no_loss(self):
        from repro.experiments.recovery import run_recovery_window

        results = run_recovery_window(
            n_nodes=30, n_files=80, k=3, crash_fraction=0.5,
            detection_delays=[20.0], disk_loss=False, seed=6,
        )
        assert results[0].availability == pytest.approx(1.0)


class TestKeepAliveRecovery:
    def test_protocol_driven_recovery_restores_files(self):
        from repro.experiments.recovery import run_keepalive_recovery

        result = run_keepalive_recovery(
            n_nodes=35, n_files=100, crash_fraction=0.25, seed=4
        )
        # Fast detection (T ~= 4 x interarrival/2): everything survives.
        assert result.availability > 0.97
        assert result.crashes >= 1

    def test_slow_detection_risks_losses(self):
        from repro.experiments.recovery import run_keepalive_recovery

        result = run_keepalive_recovery(
            n_nodes=35, n_files=150, crash_fraction=0.6,
            keepalive_timeout=60.0, mean_interarrival=0.3, seed=4,
        )
        # With 60% of nodes silent before any keep-alive expires, some
        # files must lose all replicas.
        assert result.availability < 1.0
