"""Tests for the discrete-event simulator."""

import pytest

from repro.netsim.eventsim import EventSimulator, PeriodicTimer
from repro.netsim.trace import ScheduleTrace


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = EventSimulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute(self):
        sim = EventSimulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_cannot_schedule_past(self):
        sim = EventSimulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = EventSimulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0

    def test_cancel(self):
        sim = EventSimulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(handle)
        sim.run()
        assert ran == []

    def test_run_until_partial(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(5.0, lambda: order.append("b"))
        sim.run_until(3.0)
        assert order == ["a"]
        assert sim.now == 3.0
        assert sim.pending() == 1

    def test_runaway_guard(self):
        sim = EventSimulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.001, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)


class TestEdgeCases:
    def test_same_time_fifo_under_heap_churn(self):
        # Interleave out-of-order schedules and cancellations so the heap
        # reorders internally; same-time events must still run in the
        # order they were scheduled.
        sim = EventSimulator()
        order = []
        sim.schedule(5.0, lambda: order.append("t5-a"))
        doomed = sim.schedule(5.0, lambda: order.append("doomed"))
        sim.schedule(1.0, lambda: order.append("t1"))
        sim.schedule(5.0, lambda: order.append("t5-b"))
        sim.cancel(doomed)
        sim.schedule(3.0, lambda: order.append("t3"))
        sim.schedule(5.0, lambda: order.append("t5-c"))
        sim.run()
        assert order == ["t1", "t3", "t5-a", "t5-b", "t5-c"]

    def test_run_until_exactly_at_tie_boundary(self):
        # Every event at the deadline runs — including ties and an event
        # a same-time callback schedules *at* the deadline — while events
        # strictly after it stay queued.
        sim = EventSimulator()
        order = []

        def first():
            order.append("first")
            sim.schedule_at(2.0, lambda: order.append("nested-at-deadline"))

        sim.schedule_at(2.0, first)
        sim.schedule_at(2.0, lambda: order.append("tied"))
        sim.schedule_at(2.0000001, lambda: order.append("after"))
        sim.run_until(2.0)
        assert order == ["first", "tied", "nested-at-deadline"]
        assert sim.now == 2.0
        assert sim.pending() == 1

    def test_cancel_inside_callback(self):
        sim = EventSimulator()
        order = []
        handles = {}

        def first():
            order.append("first")
            sim.cancel(handles["b"])

        sim.schedule(1.0, first)
        handles["b"] = sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["first"]
        assert sim._cancelled == set()
        assert sim._pending == set()


class TestCancelBookkeeping:
    def test_cancelled_stays_bounded_under_cancel_heavy_workload(self):
        # Regression: cancel-after-run and double-cancel used to leave
        # seqs in _cancelled forever.
        sim = EventSimulator()
        handles = [sim.schedule(1.0, lambda: None) for _ in range(200)]
        sim.run()
        for handle in handles:  # cancel-after-run: all no-ops
            sim.cancel(handle)
        assert len(sim._cancelled) == 0
        live = sim.schedule(1.0, lambda: None)
        for _ in range(50):  # double-cancel: one entry, not fifty
            sim.cancel(live)
        assert len(sim._cancelled) == 1
        sim.run()
        assert len(sim._cancelled) == 0
        assert len(sim._pending) == 0

    def test_cancelled_never_exceeds_pending(self):
        sim = EventSimulator()
        for round_ in range(20):
            handles = [sim.schedule(1.0, lambda: None) for _ in range(10)]
            for handle in handles[::2]:
                sim.cancel(handle)
            assert len(sim._cancelled) <= len(sim._pending)
            sim.run()
            assert sim._cancelled == set()
            assert sim._pending == set()


class TestScheduleTrace:
    def test_trace_records_executed_events(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace)

        def tick():
            pass

        sim.schedule(1.0, tick)
        sim.schedule(2.0, tick)
        sim.run()
        assert [e.time for e in trace.events] == [1.0, 2.0]
        assert [e.seq for e in trace.events] == [0, 1]
        assert all("tick" in e.callback for e in trace.events)
        assert all(e.site.startswith("test_eventsim.py:") for e in trace.events)
        assert len(trace.digests) == 2
        assert trace.digest() == trace.digests[-1]

    def test_identical_schedules_produce_identical_digests(self):
        def run():
            trace = ScheduleTrace()
            sim = EventSimulator(trace=trace)
            sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None)
            sim.run()
            return trace.digest()

        assert run() == run()

    def test_different_order_produces_different_digest(self):
        def run(first_delay, second_delay):
            trace = ScheduleTrace()
            sim = EventSimulator(trace=trace)
            sim.schedule(first_delay, lambda: None)
            sim.schedule(second_delay, lambda: None)
            sim.run()
            return trace.digest()

        assert run(1.0, 2.0) != run(2.0, 1.0)

    def test_cancelled_events_leave_no_trace(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace)
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.run()
        assert len(trace.events) == 1

    def test_env_variable_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sim = EventSimulator()
        assert sim.trace is not None
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert len(sim.trace.events) == 1

    def test_unfixed_ties_require_distinct_sites(self):
        trace = ScheduleTrace()
        sim = EventSimulator(trace=trace)
        # Same site in a loop: seq order fully determined by the loop.
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert trace.unfixed_ties() == []

        trace2 = ScheduleTrace()
        sim2 = EventSimulator(trace=trace2)
        sim2.schedule(1.0, lambda: None)  # site A
        sim2.schedule(1.0, lambda: None)  # site B
        sim2.run()
        ties = trace2.unfixed_ties()
        assert len(ties) == 1
        assert len(ties[0]) == 2


class TestPeriodicTimer:
    def test_fires_at_period(self):
        sim = EventSimulator()
        ticks = []
        sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_stop(self):
        sim = EventSimulator()
        ticks = []
        timer = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        timer.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_stop_from_callback(self):
        sim = EventSimulator()
        calls = []
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.callback = lambda: (calls.append(sim.now), timer.stop())
        timer.start()
        sim.run_until(10.0)
        assert calls == [1.0]

    def test_jitter(self):
        sim = EventSimulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), jitter_fn=lambda: 0.5)
        sim.run_until(4.0)
        assert ticks == [1.5, 3.0]

    def test_rejects_nonpositive_period(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_negative_jitter_is_clamped(self):
        # Jitter that would drive the delay to zero or negative is clamped
        # to a tiny positive delay: time still advances and no
        # cannot-schedule-into-the-past error is raised.
        sim = EventSimulator()
        timer = sim.every(1.0, lambda: None, jitter_fn=lambda: -5.0)
        for _ in range(10):
            assert sim.step()
        assert timer.fires == 10
        assert sim.now > 0.0
        timer.stop()

    def test_mild_negative_jitter_shortens_period(self):
        sim = EventSimulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), jitter_fn=lambda: -0.5)
        sim.run_until(2.0)
        assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0])


class TestRecoveryExperiment:
    def test_detection_delay_costs_availability(self):
        from repro.experiments.recovery import run_recovery_window

        results = run_recovery_window(
            n_nodes=40, n_files=150, k=3, crash_fraction=0.5,
            detection_delays=[0.0, 20.0], seed=5,
        )
        by_delay = {r.detection_delay: r for r in results}
        assert by_delay[0.0].availability >= by_delay[20.0].availability
        assert by_delay[0.0].availability == pytest.approx(1.0)
        assert by_delay[20.0].availability < 1.0

    def test_no_disk_loss_means_no_loss(self):
        from repro.experiments.recovery import run_recovery_window

        results = run_recovery_window(
            n_nodes=30, n_files=80, k=3, crash_fraction=0.5,
            detection_delays=[20.0], disk_loss=False, seed=6,
        )
        assert results[0].availability == pytest.approx(1.0)


class TestKeepAliveRecovery:
    def test_protocol_driven_recovery_restores_files(self):
        from repro.experiments.recovery import run_keepalive_recovery

        result = run_keepalive_recovery(
            n_nodes=35, n_files=100, crash_fraction=0.25, seed=4
        )
        # Fast detection (T ~= 4 x interarrival/2): everything survives.
        assert result.availability > 0.97
        assert result.crashes >= 1

    def test_slow_detection_risks_losses(self):
        from repro.experiments.recovery import run_keepalive_recovery

        result = run_keepalive_recovery(
            n_nodes=35, n_files=150, crash_fraction=0.6,
            keepalive_timeout=60.0, mean_interarrival=0.3, seed=4,
        )
        # With 60% of nodes silent before any keep-alive expires, some
        # files must lose all replicas.
        assert result.availability < 1.0
