"""Tests for node placement models and the proximity metric."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.netsim import ClusteredTopology, Coordinate, SphereTopology, TorusTopology

seeds = st.integers(min_value=0, max_value=2**31)


class TestTorus:
    def test_points_in_unit_square(self):
        topo = TorusTopology()
        rng = random.Random(1)
        for _ in range(100):
            c = topo.place(rng)
            assert 0 <= c.x < 1 and 0 <= c.y < 1

    def test_distance_zero_to_self(self):
        topo = TorusTopology()
        c = Coordinate(0.3, 0.7)
        assert topo.distance(c, c) == 0.0

    def test_distance_wraps(self):
        topo = TorusTopology()
        a = Coordinate(0.05, 0.5)
        b = Coordinate(0.95, 0.5)
        assert topo.distance(a, b) == pytest.approx(0.1)

    def test_distance_symmetric(self):
        topo = TorusTopology()
        rng = random.Random(2)
        for _ in range(50):
            a, b = topo.place(rng), topo.place(rng)
            assert topo.distance(a, b) == pytest.approx(topo.distance(b, a))

    def test_max_distance_bounded(self):
        # On the unit torus no two points are farther than sqrt(2)/2.
        topo = TorusTopology()
        rng = random.Random(3)
        for _ in range(200):
            a, b = topo.place(rng), topo.place(rng)
            assert topo.distance(a, b) <= math.sqrt(2) / 2 + 1e-9

    @given(seeds)
    def test_triangle_inequality(self, seed):
        topo = TorusTopology()
        rng = random.Random(seed)
        a, b, c = topo.place(rng), topo.place(rng), topo.place(rng)
        assert topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c) + 1e-9


class TestSphere:
    def test_points_on_unit_sphere(self):
        topo = SphereTopology()
        rng = random.Random(4)
        for _ in range(100):
            c = topo.place(rng)
            assert c.x**2 + c.y**2 + c.z**2 == pytest.approx(1.0)

    def test_antipodal_distance_is_pi(self):
        topo = SphereTopology()
        a = Coordinate(0, 0, 1)
        b = Coordinate(0, 0, -1)
        assert topo.distance(a, b) == pytest.approx(math.pi)

    def test_distance_self_zero(self):
        topo = SphereTopology()
        c = Coordinate(1, 0, 0)
        assert topo.distance(c, c) == pytest.approx(0.0)


class TestClustered:
    def test_requires_cluster_count(self):
        with pytest.raises(ValueError):
            ClusteredTopology(0)

    def test_placement_records_cluster(self):
        topo = ClusteredTopology(4, seed=5)
        rng = random.Random(6)
        c = topo.place(rng, cluster=2)
        assert c.cluster == 2

    def test_random_cluster_when_unspecified(self):
        topo = ClusteredTopology(4, seed=5)
        rng = random.Random(7)
        clusters = {topo.place(rng).cluster for _ in range(100)}
        assert clusters <= set(range(4))
        assert len(clusters) > 1

    def test_same_cluster_is_closer_than_cross_cluster(self):
        topo = ClusteredTopology(8, spread=0.02, seed=8)
        rng = random.Random(9)
        same = [
            topo.distance(topo.place(rng, 0), topo.place(rng, 0)) for _ in range(50)
        ]
        cross = [
            topo.distance(topo.place(rng, 0), topo.place(rng, 4)) for _ in range(50)
        ]
        assert sum(same) / len(same) < sum(cross) / len(cross)

    def test_cluster_wraps_modulo(self):
        topo = ClusteredTopology(3, seed=10)
        assert topo.centre(5) == topo.centre(2)


class TestMessageStats:
    def test_accumulates(self):
        from repro.netsim import MessageStats

        stats = MessageStats()
        stats.record_route(3, 1.5)
        stats.record_route(1, 0.5)
        stats.record_rpc(0.2)
        assert stats.routes == 2
        assert stats.hops == 4
        assert stats.mean_hops == 2.0
        assert stats.distance == pytest.approx(2.2)
        assert stats.direct_rpcs == 1

    def test_histogram(self):
        from repro.netsim import MessageStats

        stats = MessageStats()
        for hops in (2, 2, 3):
            stats.record_route(hops, 0)
        assert stats.hop_histogram() == {2: 2, 3: 1}

    def test_reset(self):
        from repro.netsim import MessageStats

        stats = MessageStats()
        stats.record_route(2, 1.0)
        stats.reset()
        assert stats.routes == 0 and stats.hops == 0 and stats.mean_hops == 0.0
