"""Unit tests for the deterministic storage (disk) fault plane."""

import pytest

from repro.netsim.faults import (
    DISK_FAILING,
    DISK_OK,
    DISK_READONLY,
    READ_CORRUPT,
    READ_ERROR,
    READ_OK,
    StorageFaultPlan,
)


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        def drive(plan):
            out = []
            for i in range(200):
                out.append(plan.read(i % 5, i % 11, 4096, 1.0))
                out.append(plan.store_written(i % 5, i % 11 + 100, 4096))
            return out

        a = drive(StorageFaultPlan(seed=42, bitrot_rate=1e-4,
                                   partial_write=0.2, read_error=0.1))
        b = drive(StorageFaultPlan(seed=42, bitrot_rate=1e-4,
                                   partial_write=0.2, read_error=0.1))
        assert a == b

    def test_different_seeds_diverge(self):
        a = StorageFaultPlan(seed=1, bitrot_rate=1e-4)
        b = StorageFaultPlan(seed=2, bitrot_rate=1e-4)
        va = [a.read(0, i, 4096, 5.0) for i in range(100)]
        vb = [b.read(0, i, 4096, 5.0) for i in range(100)]
        assert va != vb

    def test_zero_rate_plan_draws_nothing(self):
        """All-zero rates must not consume RNG state (zero-cost bar)."""
        plan = StorageFaultPlan(seed=9)
        state = plan.rng.getstate()
        for i in range(50):
            assert plan.read(i, i + 1, 4096, 10.0) == READ_OK
            assert not plan.store_written(i, i + 1, 4096)
            assert plan.writable(i)
        assert plan.rng.getstate() == state

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            StorageFaultPlan(partial_write=1.5)
        with pytest.raises(ValueError):
            StorageFaultPlan(read_error=-0.1)
        with pytest.raises(ValueError):
            StorageFaultPlan(bitrot_rate=-1e-6)


class TestBitRot:
    def test_certain_rot_is_sticky_until_repaired(self):
        # Hazard so large the first exposed read must rot the copy.
        plan = StorageFaultPlan(seed=0, bitrot_rate=100.0)
        assert plan.read(1, 7, 4096, 1.0) == READ_CORRUPT
        assert plan.stats.bitrot_corruptions == 1
        # Sticky: further reads report corruption without new draws.
        state = plan.rng.getstate()
        assert plan.read(1, 7, 4096, 0.0) == READ_CORRUPT
        assert plan.rng.getstate() == state
        assert plan.stats.bitrot_corruptions == 1  # counted once
        plan.mark_repaired(1, 7)
        assert plan.read(1, 7, 4096, 0.0) == READ_OK

    def test_zero_elapsed_cannot_rot(self):
        plan = StorageFaultPlan(seed=0, bitrot_rate=100.0)
        state = plan.rng.getstate()
        assert plan.read(1, 7, 4096, 0.0) == READ_OK
        assert plan.rng.getstate() == state

    def test_forget_clears_corruption_record(self):
        plan = StorageFaultPlan(seed=0, bitrot_rate=100.0)
        assert plan.read(1, 7, 4096, 1.0) == READ_CORRUPT
        plan.forget(1, 7)
        assert not plan.is_corrupt(1, 7)

    def test_forget_node_wipes_all_its_records(self):
        plan = StorageFaultPlan(seed=0, bitrot_rate=100.0)
        plan.read(1, 7, 4096, 1.0)
        plan.read(1, 8, 4096, 1.0)
        plan.read(2, 7, 4096, 1.0)
        plan.forget_node(1)
        assert not plan.is_corrupt(1, 7) and not plan.is_corrupt(1, 8)
        assert plan.is_corrupt(2, 7)


class TestPartialWrites:
    def test_certain_torn_write(self):
        plan = StorageFaultPlan(seed=0, partial_write=1.0)
        assert plan.store_written(3, 9, 2048)
        assert plan.is_corrupt(3, 9)
        assert plan.stats.partial_writes == 1
        assert plan.read(3, 9, 2048, 0.0) == READ_CORRUPT


class TestDiskModes:
    def test_readonly_refuses_writes_but_reads_fine(self):
        plan = StorageFaultPlan(seed=0)
        plan.set_disk_mode(4, DISK_READONLY)
        assert not plan.writable(4)
        assert plan.writable(5)
        plan.refuse_write(4)
        assert plan.stats.writes_refused == 1
        assert plan.read(4, 1, 1024, 5.0) == READ_OK

    def test_failing_disk_errors_reads(self):
        plan = StorageFaultPlan(seed=0, failing_read_error=1.0)
        plan.set_disk_mode(4, DISK_FAILING)
        assert not plan.writable(4)
        assert plan.read(4, 1, 1024, 0.0) == READ_ERROR
        assert plan.stats.read_errors == 1

    def test_scheduled_mode_applies_lazily_by_clock(self):
        now = {"t": 0.0}
        plan = StorageFaultPlan(seed=0).bind_clock(lambda: now["t"])
        plan.schedule_disk_mode(3.0, 4, DISK_READONLY)
        plan.schedule_disk_mode(7.0, 4, DISK_OK)
        assert plan.disk_mode(4) == DISK_OK
        now["t"] = 3.0
        assert plan.disk_mode(4) == DISK_READONLY
        now["t"] = 7.5
        assert plan.disk_mode(4) == DISK_OK

    def test_unknown_mode_rejected(self):
        plan = StorageFaultPlan(seed=0)
        with pytest.raises(ValueError):
            plan.set_disk_mode(1, "melted")
        with pytest.raises(ValueError):
            plan.schedule_disk_mode(1.0, 1, "melted")


class TestTransientReadErrors:
    def test_certain_read_error_is_not_sticky(self):
        plan = StorageFaultPlan(seed=0, read_error=1.0)
        assert plan.read(1, 2, 512, 0.0) == READ_ERROR
        assert not plan.is_corrupt(1, 2)
        assert plan.stats.read_errors == 1
