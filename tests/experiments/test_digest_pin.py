"""Pinned schedule-trace digests: the integrity plane's zero-cost bar.

With no StorageFaultPlan installed, every integrity hook on the
store/read hot paths must cost at most an attribute check and zero RNG
draws, so the executed schedules of the pre-existing chaos and explorer
scenarios are **byte-identical** to what they were before the plane
existed.  These constants were recorded on the commit immediately
preceding the integrity plane; if one of these tests fails, a
supposedly-dormant hook perturbed a schedule (or consumed entropy) and
every historical trace digest in CI just silently changed meaning.

The pins are hashseed-independent by construction (CI runs the suite
under PYTHONHASHSEED=0 and 31337).
"""

from repro.core import RetryPolicy
from repro.devtools.explore.scenarios import SCENARIOS
from repro.experiments.chaos import ChaosConfig, run_chaos

CHAOS_LOSS_PIN = "3395691d3167eed2c5c6285feca18fcb5bd118a721105901cc6c563dbb6eafaf"
CHAOS_CRASH_PIN = "357ba7196680e0b3e2678bc96a33361057b42cd4fd136e76031e5ca168065465"
EXPLORE_CHURN_PIN = "caf43c7fdff90e526cf323389a298afe10109d8779a94b937291c67e283330c2"
EXPLORE_CHAOS_PIN = "fb377b6d48579b98d76d18c1c783976a2bdded11432dc49f2442883951e661d4"


class TestFaultFreeDigestsAreByteIdentical:
    def test_chaos_loss_scenario_pin(self):
        report = run_chaos(
            ChaosConfig(seed=3, n_nodes=14, n_files=10, k=3, duration=8.0,
                        lookups_per_tick=4, loss=0.2,
                        policy=RetryPolicy(max_attempts=4)),
            scenario="pin",
        )
        assert report.digest == CHAOS_LOSS_PIN

    def test_chaos_crash_scenario_pin(self):
        report = run_chaos(
            ChaosConfig(seed=3, n_nodes=14, n_files=10, k=3, duration=12.0,
                        lookups_per_tick=4, crash_count=2,
                        crash_interarrival=3.0),
            scenario="pin-crash",
        )
        assert report.digest == CHAOS_CRASH_PIN

    def test_explorer_churn_scenario_pin(self):
        assert SCENARIOS["churn"](7).trace.digest() == EXPLORE_CHURN_PIN

    def test_explorer_chaos_scenario_pin(self):
        assert SCENARIOS["chaos"](7).trace.digest() == EXPLORE_CHAOS_PIN


class TestBackendSeamIsPureRefactor:
    """Installing the default backend on every store must not move a
    single byte of any pinned schedule: the seam's hook sites are
    attribute checks only, and :class:`MemoryBackend` observes without
    acting.  If one of these fails while the bare-store pins above
    still pass, a ``note_*`` hook grew a side effect."""

    def _force_memory_backend(self, monkeypatch):
        from repro.core.network import PastNetwork
        from repro.store import MemoryBackend

        orig_init = PastNetwork.__init__

        def init_with_backend(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            self.store_backend_factory = lambda node_id, plan: MemoryBackend()

        monkeypatch.setattr(PastNetwork, "__init__", init_with_backend)

    def test_chaos_loss_pin_with_memory_backend(self, monkeypatch):
        self._force_memory_backend(monkeypatch)
        report = run_chaos(
            ChaosConfig(seed=3, n_nodes=14, n_files=10, k=3, duration=8.0,
                        lookups_per_tick=4, loss=0.2,
                        policy=RetryPolicy(max_attempts=4)),
            scenario="pin",
        )
        assert report.digest == CHAOS_LOSS_PIN

    def test_chaos_crash_pin_with_memory_backend(self, monkeypatch):
        self._force_memory_backend(monkeypatch)
        report = run_chaos(
            ChaosConfig(seed=3, n_nodes=14, n_files=10, k=3, duration=12.0,
                        lookups_per_tick=4, crash_count=2,
                        crash_interarrival=3.0),
            scenario="pin-crash",
        )
        assert report.digest == CHAOS_CRASH_PIN

    def test_explorer_pins_with_memory_backend(self, monkeypatch):
        self._force_memory_backend(monkeypatch)
        assert SCENARIOS["churn"](7).trace.digest() == EXPLORE_CHURN_PIN
        assert SCENARIOS["chaos"](7).trace.digest() == EXPLORE_CHAOS_PIN
