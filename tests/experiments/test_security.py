"""Tests for the malicious-routing security experiment."""

import pytest

from repro.experiments import security
from tests.conftest import build_past, build_pastry


class TestMaliciousRouting:
    def test_honest_network_unaffected(self):
        results = security.run_malicious_routing(
            malicious_fractions=[0.0], n_nodes=60, n_files=20, seed=1
        )
        for r in results:
            assert r.success_ratio == 1.0

    def test_sweep_structure(self):
        results = security.run_malicious_routing(
            malicious_fractions=[0.1], n_nodes=60, n_files=20, seed=2
        )
        assert {r.randomized for r in results} == {False, True}
        assert all(r.lookups > 0 for r in results)

    def test_attack_reduces_success(self):
        results = security.run_malicious_routing(
            malicious_fractions=[0.3], n_nodes=80, n_files=30,
            retries=0, seed=3,
        )
        assert any(r.success_ratio < 1.0 for r in results)


class TestDroppedRoutes:
    def test_malicious_node_drops_transiting_message(self):
        net = build_pastry(60, l=8, seed=90)
        import random

        rng = random.Random(90)
        # Find a route with an intermediate hop; corrupt that hop.
        for _ in range(200):
            key = rng.getrandbits(128)
            origin = net.random_node(rng).node_id
            result = net.route(origin, key)
            if result.hops >= 2:
                bad = result.path[1]
                net.malicious = {bad}
                retried = net.route(origin, key)
                assert retried.dropped
                assert retried.terminus is None
                net.malicious = set()
                return
        pytest.skip("no multi-hop route found at this scale")

    def test_origin_never_drops_its_own_request(self):
        net = build_pastry(30, l=8, seed=91)
        origin = net.nodes()[0]
        net.malicious = {origin.node_id}
        result = net.route(origin.node_id, 12345)
        assert not result.dropped

    def test_lookup_retries_against_malicious(self):
        net = build_past(n=50, capacity=3_000_000, k=3, seed=92,
                         randomize_routing=True)
        owner = net.create_client("o")
        res = net.insert("target", owner, 10_000, net.nodes()[0].node_id)
        # Corrupt a third of the network (not the origin).
        ids = net.pastry.node_ids
        origin = net.nodes()[-1].node_id
        net.pastry.malicious = {i for i in ids[: len(ids) // 3] if i != origin}
        successes = sum(
            net.lookup(res.file_id, origin, retries=8).success for _ in range(10)
        )
        assert successes >= 8  # retries route around the bad nodes
