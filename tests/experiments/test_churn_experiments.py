"""Tests for the availability/churn experiment drivers."""

import pytest

from repro.experiments import churn


class TestAvailabilitySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return churn.run_availability_sweep(
            k_values=[1, 3], fail_fractions=[0.1, 0.25],
            n_nodes=40, capacity_scale=0.25, n_files=200, seed=7,
        )

    def test_cells_present(self, sweep):
        cells = {(r.k, r.fail_fraction) for r in sweep}
        assert cells == {(1, 0.1), (1, 0.25), (3, 0.1), (3, 0.25)}

    def test_higher_k_more_available(self, sweep):
        by = {(r.k, r.fail_fraction): r for r in sweep}
        for f in (0.1, 0.25):
            assert by[(3, f)].availability >= by[(1, f)].availability

    def test_k1_loses_files_at_heavy_failures(self, sweep):
        by = {(r.k, r.fail_fraction): r for r in sweep}
        assert by[(1, 0.25)].availability < 1.0

    def test_repair_never_hurts(self, sweep):
        for r in sweep:
            assert r.availability_after_repair >= r.availability - 1e-9


class TestChurnExperiment:
    def test_invariants_hold_and_files_survive(self):
        result = churn.run_churn_experiment(
            n_nodes=40, capacity_scale=0.25, n_files=120, rounds=20, k=3, seed=8
        )
        assert result.audits_passed == result.audits_total
        assert result.lost_files <= 1
        assert result.timeline
        assert all(t["audit_ok"] for t in result.timeline)


class TestSimultaneousFailures:
    def test_maintenance_suspended_then_repaired(self):
        from repro import audit
        from tests.conftest import build_past, fill_network
        import random

        net = build_past(n=30, capacity=2_000_000, k=3, seed=9)
        rng = random.Random(9)
        fill_network(net, rng, target_util=0.4, max_size=100_000)
        victims = list(net.pastry.node_ids)[:3]
        net.fail_simultaneously(victims)
        assert net.maintenance_enabled  # restored afterwards
        net.repair_all()
        assert audit(net).ok

    def test_flag_restored_on_error(self):
        from tests.conftest import build_past

        net = build_past(n=10, capacity=1_000_000, k=2, seed=10)
        with pytest.raises(KeyError):
            net.fail_simultaneously([123456789])
        assert net.maintenance_enabled
