"""The chaos harness: reproducibility, availability and §3.5 durability."""

import json

from repro.core import RetryPolicy
from repro.experiments.chaos import ChaosConfig, run_chaos


def small(seed=3, **kw):
    defaults = dict(
        seed=seed, n_nodes=14, n_files=10, k=3, duration=8.0,
        lookups_per_tick=4,
    )
    defaults.update(kw)
    return ChaosConfig(**defaults)


class TestReproducibility:
    def test_same_config_same_report(self):
        cfg = small(loss=0.2, policy=RetryPolicy(max_attempts=4))
        a = run_chaos(cfg, scenario="repro")
        b = run_chaos(cfg, scenario="repro")
        assert a.digest == b.digest
        assert a.to_json() == b.to_json()

    def test_different_seeds_different_runs(self):
        # With no crash schedule the *event* timeline is seed-independent
        # (loss changes message fates, not what gets scheduled), so
        # include a storm: its seeded interarrivals reshape the schedule.
        a = run_chaos(small(seed=3, loss=0.2, crash_count=2,
                            crash_interarrival=3.0, duration=12.0),
                      scenario="s")
        b = run_chaos(small(seed=4, loss=0.2, crash_count=2,
                            crash_interarrival=3.0, duration=12.0),
                      scenario="s")
        assert a.digest != b.digest

    def test_loss_changes_outcomes_not_schedule(self):
        lossy = run_chaos(small(seed=3, loss=0.25), scenario="s")
        clean = run_chaos(small(seed=3, loss=0.0), scenario="s")
        assert lossy.digest == clean.digest  # same event timeline
        assert lossy.messages_lost > 0 and clean.messages_lost == 0
        assert lossy.to_json() != clean.to_json()

    def test_report_json_round_trips(self):
        report = run_chaos(small(loss=0.1), scenario="json")
        payload = json.loads(report.to_json())
        assert payload["scenario"] == "json"
        assert payload["lookup_success"] == round(report.lookup_success, 6)
        assert payload["digest"] == report.digest


class TestAvailability:
    def test_retry_beats_baseline_at_ten_percent_loss(self):
        base = run_chaos(small(loss=0.1, policy=None), scenario="base")
        res = run_chaos(
            small(loss=0.1, policy=RetryPolicy(max_attempts=6)),
            scenario="resilient",
        )
        assert base.lookups_attempted == res.lookups_attempted
        assert base.lookup_success < 1.0
        assert res.lookup_success >= 0.99
        assert res.mean_attempts > 1.0

    def test_clean_run_audits_clean(self):
        report = run_chaos(small(loss=0.0), scenario="clean")
        assert report.audit_ok, report.violations
        assert report.lookup_success == 1.0
        assert report.lost_files == 0
        assert report.messages_lost == 0


class TestDurability:
    def test_spaced_crashes_lose_nothing(self):
        """Crash interarrival >> recovery period: re-replication outruns
        the storm (§3.5's safe side)."""
        report = run_chaos(
            small(
                loss=0.05, crash_count=2, crash_interarrival=8.0,
                restart_after=4.0, wipe_disks=True, duration=20.0,
                policy=RetryPolicy(max_attempts=6),
            ),
            scenario="spaced",
        )
        assert report.crashes_applied == 2
        assert report.lost_files == 0
        assert report.audit_ok, report.violations

    def test_overlapping_replica_set_crash_loses_the_file(self):
        """All k holders die within one detection window, disks wiped:
        §3.5 says that file is gone — and the oracle must name it."""
        report = run_chaos(
            small(
                n_nodes=16, crash_target_replica_set=True,
                overlap_spacing=0.1, restart_after=6.0, duration=12.0,
            ),
            scenario="overlap",
        )
        assert report.target_file_id is not None
        assert report.target_file_id in report.lost_file_ids
        assert report.lost_files >= 1
        # Losing a file is an availability event, not a corruption: the
        # post-heal audit is still clean.
        assert report.audit_ok, report.violations


class TestIntegrity:
    """Storage-fault plane: bit rot vs. the anti-entropy scrubber."""

    def bitrot(self, scrub, seed=3, rate=6e-5, **kw):
        defaults = dict(
            seed=seed, n_nodes=16, n_files=12, k=4, file_size=2000,
            bitrot_rate=rate, lookups_per_tick=0, duration=20.0,
            scrub_interval=scrub,
            scrub_jitter=scrub / 6 if scrub else 0.0,
        )
        defaults.update(kw)
        return ChaosConfig(**defaults)

    def test_bitrot_without_scrub_destroys_file_contents(self):
        """No lookups, no scrubber: rot accumulates until every copy of
        some file is damaged — unrecoverable, reported by id."""
        report = run_chaos(self.bitrot(0.0), scenario="rot-off")
        assert report.bitrot_corruptions > 0
        assert report.corrupt_files > 0
        assert report.unrecoverable_files > 0
        assert report.unrecoverable_file_ids
        assert report.scrub_rounds == 0 and report.read_repairs == 0

    def test_scrubber_recovers_one_hundred_percent(self):
        report = run_chaos(self.bitrot(0.5), scenario="rot-on")
        assert report.bitrot_corruptions > 0
        assert report.scrub_rounds > 0
        assert report.read_repairs > 0
        assert report.corrupt_files == 0
        assert report.unrecoverable_files == 0
        assert report.audit_ok, report.violations
        # The oracle names every corrupted-then-healed file.
        assert report.healed_file_ids

    def test_bitrot_report_is_reproducible(self):
        a = run_chaos(self.bitrot(0.5), scenario="rot")
        b = run_chaos(self.bitrot(0.5), scenario="rot")
        assert a.to_json() == b.to_json()
