"""Tests for the replica-locality and route-stretch drivers."""

import pytest

from repro.experiments import locality


class TestReplicaLocality:
    @pytest.fixture(scope="class")
    def result(self):
        return locality.run_replica_locality(
            n_nodes=120, k=3, n_files=60, capacity_scale=1.0, seed=2
        )

    def test_counts_consistent(self, result):
        assert sum(result.nearest_rank_counts) == result.lookups
        assert len(result.nearest_rank_counts) == 3

    def test_rank_share_monotone(self, result):
        assert 0 <= result.rank_share(0) <= result.rank_share(1) <= result.rank_share(2)
        assert result.rank_share(2) == pytest.approx(1.0)

    def test_beats_uniform_baseline(self, result):
        assert result.rank_share(0) > result.random_baseline

    def test_baseline_is_one_over_k(self, result):
        assert result.random_baseline == pytest.approx(1 / 3)

    def test_empty_rank_share(self):
        empty = locality.LocalityResult(3, 0, [0, 0, 0], 1.0, 1 / 3, 0.0)
        assert empty.rank_share(0) == 0.0


class TestRouteStretch:
    def test_stretch_reasonable(self):
        result = locality.run_route_stretch(n_nodes=120, queries=200, seed=3)
        assert 1.0 <= result.mean_stretch < 4.0
        assert result.mean_hops > 0
        assert result.queries == 200
