"""End-to-end smoke test for the live (real-TCP) chaos harness.

One full default sweep over localhost: 12 WAL-backed nodes, 10% loss,
injected resets, a partition with heal, and two seeded mid-traffic
kills with WAL-recovered restarts.  The committed bench checksum in
``benchmarks/results/BENCH_live_chaos.json`` pins the same payload CI
regenerates, so this test failing means either the harness or the fault
schedule drifted.
"""

import json
from pathlib import Path

from repro.experiments.live_chaos import (
    LiveChaosConfig,
    live_chaos_bench,
    run_live_sweep,
)

COMMITTED = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "results" / "BENCH_live_chaos.json"
)


class TestLiveSweep:
    def test_default_sweep_passes_every_oracle_and_matches_bench(self):
        report = run_live_sweep()
        assert report.oracle_failures() == []
        # Steady (loss-only) rounds carry the paper's >=99% availability
        # bar; degraded rounds (corpse windows, active partition) are
        # judged by recovery instead.
        assert report.steady_success >= 0.99
        assert report.lost_files == 0
        assert report.recovered_all is True
        assert report.audit_ok is True
        assert report.kills_applied == 2 and report.restarts_applied == 2
        assert report.parity["ok"] is True
        # Faults really fired: the sweep is chaos, not a fair-weather run.
        assert report.injected["drops"] > 0
        assert report.injected["partition_drops"] > 0
        assert report.injected["resets"] > 0

        bench = live_chaos_bench(report)
        committed = json.loads(COMMITTED.read_text())
        assert bench["checksum"] == committed["checksum"]
        assert bench == committed
