"""Miniature versions of the §5 experiments: the published *shapes* must
hold even at test scale (tens of nodes, thousands of files)."""

import pytest

from repro.experiments import StorageRunConfig, run_storage_trace
from repro.experiments import caching, storage

# Tiny-scale parameters shared by the tests (seconds, not minutes).
TINY = dict(n_nodes=40, capacity_scale=0.1)


@pytest.fixture(scope="module")
def standard_run():
    return run_storage_trace(StorageRunConfig(seed=1, **TINY))


@pytest.fixture(scope="module")
def baseline_run():
    return storage.run_baseline_no_diversion(seed=1, **TINY)


class TestBaseline:
    def test_no_diversion_fails_heavily(self, baseline_run, standard_run):
        """§5.1: without diversion most inserts fail at low utilization."""
        assert baseline_run.fail_pct > 25.0
        assert baseline_run.fail_pct > 5 * standard_run.fail_pct

    def test_no_diversion_strands_capacity(self, baseline_run, standard_run):
        """Paper: 60.8% utilization without diversion vs >94% with."""
        assert baseline_run.utilization < 0.75
        assert standard_run.utilization > 0.80
        assert standard_run.utilization > baseline_run.utilization + 0.15

    def test_no_diversion_really_disabled(self, baseline_run):
        assert baseline_run.file_diversion_ratio == 0.0
        assert baseline_run.replica_diversion_ratio == 0.0


class TestStandardRun:
    def test_high_success_and_utilization(self, standard_run):
        assert standard_run.success_pct > 85.0
        assert standard_run.utilization > 0.80

    def test_replica_diversion_moderate(self, standard_run):
        """Paper: ~16% of replicas diverted at end of the d1/l=32 run."""
        assert 0.01 < standard_run.replica_diversion_ratio < 0.40

    def test_row_shape(self, standard_run):
        row = standard_run.table_row()
        assert row["succeed_pct"] + row["fail_pct"] == pytest.approx(100.0)
        assert 0 <= row["util_pct"] <= 100


class TestLeafSetEffect:
    def test_larger_leafset_helps(self):
        """Table 2: l=32 achieves higher success than l=16."""
        sweep = storage.run_table2(
            seed=2, dists=["d1"], leaf_sizes=[8, 32], **TINY
        )
        by_l = {row["l"]: row for row in sweep.rows}
        assert by_l[32]["succeed_pct"] >= by_l[8]["succeed_pct"]


class TestThresholdSweeps:
    def test_tpri_tradeoff(self):
        """Table 3: larger t_pri -> more failures but higher utilization."""
        sweep = storage.run_table3(seed=3, t_pris=[0.5, 0.05], **TINY)
        big, small = sweep.rows
        assert big["t_pri"] == 0.5 and small["t_pri"] == 0.05
        assert big["fail_pct"] > small["fail_pct"]
        assert big["util_pct"] >= small["util_pct"] - 1.0

    def test_tdiv_tradeoff(self):
        """Table 4: larger t_div -> higher utilization, more failures."""
        sweep = storage.run_table4(seed=4, t_divs=[0.1, 0.005], **TINY)
        big, small = sweep.rows
        assert big["util_pct"] > small["util_pct"]

    def test_figure2_curves_nondecreasing(self):
        sweep = storage.run_table3(seed=5, t_pris=[0.1], **TINY)
        curves = storage.figure2_curves(sweep)
        (curve,) = curves.values()
        utils = [u for u, _ in curve]
        assert utils == sorted(utils)


class TestDiversionFigures:
    def test_figure4_file_diversion_negligible_at_low_util(self):
        run, curves = storage.run_figure4(seed=6, **TINY)
        low = [c for c in curves if c[0] < 0.5]
        if low:
            final_low = low[-1]
            assert final_low[1] + final_low[2] + final_low[3] < 0.02

    def test_figure5_replica_diversion_grows_with_util(self):
        run, curve = storage.run_figure5(seed=7, **TINY)
        early = [r for u, r in curve if u < 0.4]
        late = [r for u, r in curve if u > 0.85]
        assert late and (not early or late[-1] >= max(early))

    def test_figure6_failures_biased_to_large_files(self):
        run, scatter, _ = storage.run_figure6(seed=8, **TINY)
        assert scatter, "expected some failures at saturation"
        mean_size = 10_517
        failed_sizes = [s for _, s in scatter]
        big = sum(1 for s in failed_sizes if s > mean_size)
        assert big / len(failed_sizes) > 0.5

    def test_figure7_filesystem_workload_runs(self):
        run, scatter, curve = storage.run_figure7(seed=9, n_nodes=40, capacity_scale=0.05)
        assert run.config.workload == "fs"
        # The heavy fs tail is byte-dominant at test scale, so utilization
        # saturates lower than the web runs; the shape checks are what
        # matter: failures exist and skew large.
        assert run.utilization > 0.5
        assert curve
        if scatter:
            failed = [s for _, s in scatter]
            assert sorted(failed)[len(failed) // 2] > 4_578  # median failed > fs median


class TestCaching:
    @pytest.fixture(scope="class")
    def fig8(self):
        return caching.run_figure8(n_nodes=40, capacity_scale=0.08, seed=10)

    def test_policies_present(self, fig8):
        assert set(fig8) == {"gds", "lru", "none"}

    def test_no_cache_no_hits(self, fig8):
        assert fig8["none"].hit_ratio == 0.0

    def test_caching_reduces_hops(self, fig8):
        assert fig8["gds"].mean_hops < fig8["none"].mean_hops
        assert fig8["lru"].mean_hops < fig8["none"].mean_hops

    def test_gds_at_least_as_good_as_lru(self, fig8):
        assert fig8["gds"].hit_ratio >= fig8["lru"].hit_ratio - 0.03

    def test_hit_rate_declines_past_peak(self, fig8):
        """Figure 8: hit rate falls as utilization squeezes cache space."""
        curve = [(u, h) for u, h, _, n in fig8["gds"].curve if n > 100]
        assert curve
        peak_u, peak = max(curve, key=lambda p: p[1])
        tail = [h for u, h in curve if u > max(peak_u, 0.85)]
        if tail:
            assert min(tail) < peak

    def test_lookups_succeed(self, fig8):
        for res in fig8.values():
            assert res.lookup_success_ratio > 0.95


class TestHarness:
    def test_n_files_override(self):
        cfg = StorageRunConfig(n_nodes=20, capacity_scale=0.05, n_files=100, seed=11)
        res = run_storage_trace(cfg)
        assert res.n_files == 100

    def test_keep_network(self):
        cfg = StorageRunConfig(n_nodes=20, capacity_scale=0.05, n_files=50, seed=12)
        res = run_storage_trace(cfg, keep_network=True)
        assert res.network is not None
        assert len(res.network) == 20

    def test_unknown_workload_rejected(self):
        from repro.experiments.harness import build_network, make_workload

        cfg = StorageRunConfig(n_nodes=5, workload="cassandra", seed=13)
        net = build_network(cfg)
        with pytest.raises(ValueError):
            make_workload(cfg, net)

    def test_deterministic_runs(self):
        cfg = StorageRunConfig(n_nodes=20, capacity_scale=0.05, n_files=200, seed=14)
        a = run_storage_trace(cfg)
        b = run_storage_trace(cfg)
        assert a.succeeded == b.succeeded
        assert a.utilization == b.utilization
