"""Tests for the Table 1 node-capacity distributions."""

import random

import pytest

from repro.workloads import D1, D2, D3, D4, DISTRIBUTIONS, MB


class TestTable1Parameters:
    def test_all_four_present(self):
        assert set(DISTRIBUTIONS) == {"d1", "d2", "d3", "d4"}

    def test_published_parameters(self):
        assert (D1.mean_mb, D1.sigma_mb, D1.lower_mb, D1.upper_mb) == (27, 10.8, 2, 51)
        assert (D2.mean_mb, D2.sigma_mb, D2.lower_mb, D2.upper_mb) == (27, 9.6, 4, 49)
        assert (D3.mean_mb, D3.sigma_mb, D3.lower_mb, D3.upper_mb) == (27, 54.0, 6, 48)
        assert (D4.mean_mb, D4.sigma_mb, D4.lower_mb, D4.upper_mb) == (27, 54.0, 1, 53)

    def test_d1_d2_bounds_are_2_3_sigma(self):
        for dist in (D1, D2):
            assert dist.lower_mb == pytest.approx(dist.mean_mb - 2.3 * dist.sigma_mb, abs=1.0)
            assert dist.upper_mb == pytest.approx(dist.mean_mb + 2.3 * dist.sigma_mb, abs=1.0)


class TestSampling:
    @pytest.mark.parametrize("name", ["d1", "d2", "d3", "d4"])
    def test_samples_within_bounds(self, name):
        dist = DISTRIBUTIONS[name]
        rng = random.Random(1)
        for cap in dist.sample(500, rng):
            assert dist.lower_mb * MB <= cap <= dist.upper_mb * MB

    def test_d1_mean_close_to_published(self):
        rng = random.Random(2)
        caps = D1.sample(4000, rng)
        mean = sum(caps) / len(caps)
        assert mean == pytest.approx(27 * MB, rel=0.05)

    def test_d3_flatter_than_d1(self):
        """d3's huge sigma makes it near-uniform: more mass at the edges."""
        rng = random.Random(3)
        d1_caps = D1.sample(4000, rng)
        d3_caps = D3.sample(4000, rng)
        edge = 10 * MB
        d1_small = sum(1 for c in d1_caps if c < edge) / len(d1_caps)
        d3_small = sum(1 for c in d3_caps if c < edge) / len(d3_caps)
        assert d3_small > d1_small * 1.5

    def test_scale_multiplies(self):
        rng = random.Random(4)
        caps = D1.sample(100, rng, scale=10.0)
        lo, hi = D1.bounds_bytes(scale=10.0)
        assert all(lo <= c <= hi for c in caps)
        assert D1.mean_bytes(10.0) == 270 * MB

    def test_deterministic_given_rng(self):
        a = D1.sample(50, random.Random(9))
        b = D1.sample(50, random.Random(9))
        assert a == b

    def test_requested_count(self):
        assert len(D4.sample(123, random.Random(5))) == 123
