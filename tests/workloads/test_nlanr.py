"""Tests for the squid-log parser and trace serialization."""

import io

import pytest

from repro.workloads import (
    LogRecord,
    build_trace,
    combine_logs,
    parse_squid_log,
    read_trace,
    write_trace,
)
from repro.workloads.nlanr import LogParseError

SAMPLE_LOG = """\
983802878.264 110 client-a TCP_MISS/200 1456 GET http://example.com/a - DIRECT/1.2.3.4 text/html
983802879.100 90 client-b TCP_HIT/200 800 GET http://example.com/b - NONE/- image/gif
983802880.500 120 client-a TCP_MISS/200 1456 GET http://example.com/a - DIRECT/1.2.3.4 text/html
# a comment line
983802881.000 50 client-c TCP_MISS/404 0 GET http://example.com/missing - DIRECT/- text/html
"""


class TestParser:
    def test_parses_fields(self):
        records = parse_squid_log(SAMPLE_LOG.splitlines())
        assert len(records) == 4
        first = records[0]
        assert first.timestamp == pytest.approx(983802878.264)
        assert first.client == "client-a"
        assert first.url == "http://example.com/a"
        assert first.size == 1456

    def test_zero_size_allowed(self):
        """The NLANR trace's smallest file is 0 bytes."""
        records = parse_squid_log(SAMPLE_LOG.splitlines())
        assert records[-1].size == 0

    def test_skips_malformed_lines(self):
        records = parse_squid_log(["garbage", "1 2 3"])
        assert records == []

    def test_strict_mode_raises(self):
        with pytest.raises(LogParseError):
            parse_squid_log(["too few fields"], strict=True)
        with pytest.raises(LogParseError):
            parse_squid_log(["notatime 1 c A/200 xyz GET http://u"], strict=True)

    def test_site_tagging(self):
        records = parse_squid_log(SAMPLE_LOG.splitlines(), site=3)
        assert all(r.site == 3 for r in records)


class TestCombine:
    def test_merges_by_timestamp(self):
        a = [LogRecord(10.0, "c1", "u1", 100, site=0)]
        b = [LogRecord(5.0, "c2", "u2", 200, site=1), LogRecord(15.0, "c2", "u3", 50, site=1)]
        merged = combine_logs([a, b])
        assert [r.url for r in merged] == ["u2", "u1", "u3"]

    def test_stable_within_site(self):
        a = [LogRecord(10.0, "c", "u1", 1, 0), LogRecord(10.0, "c", "u2", 2, 0)]
        merged = combine_logs([a])
        assert [r.url for r in merged] == ["u1", "u2"]


class TestBuildTrace:
    def test_first_reference_inserts(self):
        records = parse_squid_log(SAMPLE_LOG.splitlines())
        trace = build_trace(records)
        kinds = [e.kind for e in trace]
        assert kinds == ["insert", "insert", "lookup", "insert"]

    def test_repeat_keeps_first_size(self):
        records = [
            LogRecord(1.0, "c", "u", 100),
            LogRecord(2.0, "c", "u", 999),  # size changed mid-trace
        ]
        trace = build_trace(records)
        assert trace.events[1].kind == "lookup"
        assert trace.events[1].size == 100

    def test_clients_renumbered_densely(self):
        records = parse_squid_log(SAMPLE_LOG.splitlines())
        trace = build_trace(records)
        assert {e.client for e in trace} == {0, 1, 2}
        assert trace.n_clients == 3

    def test_max_entries_truncates(self):
        """The paper truncates the combined log to 4,000,000 entries."""
        records = parse_squid_log(SAMPLE_LOG.splitlines())
        trace = build_trace(records, max_entries=2)
        assert len(trace) == 2


class TestSerialization:
    def test_roundtrip_via_buffer(self):
        records = parse_squid_log(SAMPLE_LOG.splitlines(), site=2)
        trace = build_trace(records)
        buf = io.StringIO()
        write_trace(trace, buf)
        buf.seek(0)
        loaded = read_trace(buf)
        assert loaded.events == trace.events
        assert loaded.n_clients == trace.n_clients
        assert loaded.n_sites == trace.n_sites

    def test_roundtrip_via_file(self, tmp_path):
        records = parse_squid_log(SAMPLE_LOG.splitlines())
        trace = build_trace(records)
        path = tmp_path / "trace.tsv"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.events == trace.events

    def test_synthetic_trace_roundtrips(self, tmp_path):
        from repro.workloads import WebProxyWorkload

        trace = WebProxyWorkload(n_files=50, seed=9).request_trace(n_requests=200)
        path = tmp_path / "synthetic.tsv"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.events == trace.events
