"""Tests for the synthetic NLANR web-proxy and filesystem workloads."""

import statistics

import pytest

from repro.workloads import FilesystemWorkload, WebProxyWorkload
from repro.workloads.web_proxy import lognormal_params


class TestLognormalFit:
    def test_fit_reproduces_moments(self):
        import math

        mu, sigma = lognormal_params(1312, 10517)
        assert math.exp(mu) == pytest.approx(1312)
        assert math.exp(mu + sigma**2 / 2) == pytest.approx(10517)

    def test_rejects_mean_below_median(self):
        with pytest.raises(ValueError):
            lognormal_params(100, 50)

    def test_rejects_nonpositive_median(self):
        with pytest.raises(ValueError):
            lognormal_params(0, 50)


class TestWebProxyStorageTrace:
    def test_matches_published_statistics(self):
        wl = WebProxyWorkload(n_files=30_000, seed=1)
        stats = wl.storage_trace().size_stats()
        assert stats["median"] == pytest.approx(1312, rel=0.15)
        assert stats["mean"] == pytest.approx(10_517, rel=0.25)

    def test_sizes_capped_at_paper_max(self):
        wl = WebProxyWorkload(n_files=5_000, seed=2)
        stats = wl.storage_trace().size_stats()
        assert stats["max"] <= 138_000_000

    def test_every_file_inserted_once(self):
        wl = WebProxyWorkload(n_files=500, seed=3)
        trace = wl.storage_trace()
        assert trace.unique_files() == 500
        assert len({e.file_index for e in trace}) == 500
        assert all(e.kind == "insert" for e in trace)

    def test_n_files_from_total_bytes(self):
        wl = WebProxyWorkload(total_content_bytes=10_517 * 1000, seed=4)
        assert wl.n_files == 1000

    def test_requires_some_size_parameter(self):
        with pytest.raises(ValueError):
            WebProxyWorkload()

    def test_deterministic_per_seed(self):
        a = WebProxyWorkload(n_files=200, seed=7).storage_trace()
        b = WebProxyWorkload(n_files=200, seed=7).storage_trace()
        assert [e.size for e in a] == [e.size for e in b]
        assert [e.file_index for e in a] == [e.file_index for e in b]

    def test_seeds_vary_trace(self):
        a = WebProxyWorkload(n_files=200, seed=7).storage_trace()
        b = WebProxyWorkload(n_files=200, seed=8).storage_trace()
        assert [e.size for e in a] != [e.size for e in b]

    def test_clients_within_range(self):
        wl = WebProxyWorkload(n_files=300, n_clients=10, n_sites=4, seed=9)
        trace = wl.storage_trace()
        assert all(0 <= e.client < 10 for e in trace)
        assert all(0 <= e.site < 4 for e in trace)


class TestWebProxyRequestTrace:
    def test_first_reference_inserts_then_lookups(self):
        wl = WebProxyWorkload(n_files=200, seed=10)
        trace = wl.request_trace(n_requests=2_000)
        seen = set()
        for e in trace:
            if e.file_index not in seen:
                assert e.kind == "insert"
                seen.add(e.file_index)
            else:
                assert e.kind == "lookup"

    def test_zipf_popularity_is_skewed(self):
        wl = WebProxyWorkload(n_files=500, zipf_alpha=0.9, seed=11)
        trace = wl.request_trace(n_requests=10_000)
        from collections import Counter

        counts = Counter(e.file_index for e in trace)
        top = counts.most_common(50)
        top_share = sum(c for _, c in top) / len(trace)
        assert top_share > 0.3  # heavy head

    def test_request_count_default_ratio(self):
        wl = WebProxyWorkload(n_files=1_000, requests_per_file=2.15, seed=12)
        trace = wl.request_trace()
        assert len(trace) == 2_150

    def test_site_affinity_biases_requests(self):
        wl = WebProxyWorkload(
            n_files=50, n_clients=80, n_sites=8, site_affinity=1.0, seed=13
        )
        trace = wl.request_trace(n_requests=4_000)
        from collections import Counter, defaultdict

        sites_per_file = defaultdict(Counter)
        for e in trace:
            sites_per_file[e.file_index][e.site] += 1
        # With full affinity every file is requested from exactly one site.
        for counter in sites_per_file.values():
            assert len(counter) == 1

    def test_no_affinity_spreads_requests(self):
        wl = WebProxyWorkload(
            n_files=20, n_clients=80, n_sites=8, site_affinity=0.0, seed=14
        )
        trace = wl.request_trace(n_requests=4_000)
        sites = {e.site for e in trace}
        assert len(sites) == 8


class TestFilesystemTrace:
    def test_matches_published_statistics(self):
        wl = FilesystemWorkload(n_files=30_000, seed=20)
        stats = wl.storage_trace().size_stats()
        assert stats["median"] == pytest.approx(4_578, rel=0.15)
        assert stats["mean"] == pytest.approx(88_233, rel=0.3)

    def test_alphabetical_order(self):
        wl = FilesystemWorkload(n_files=500, seed=21)
        names = [e.name for e in wl.storage_trace()]
        assert names == sorted(names)

    def test_heavier_tail_than_web(self):
        web = WebProxyWorkload(n_files=20_000, seed=22).storage_trace().size_stats()
        fs = FilesystemWorkload(n_files=20_000, seed=22).storage_trace().size_stats()
        assert fs["mean"] / fs["median"] > web["mean"] / web["median"]

    def test_deterministic(self):
        a = FilesystemWorkload(n_files=100, seed=23).storage_trace()
        b = FilesystemWorkload(n_files=100, seed=23).storage_trace()
        assert [e.size for e in a] == [e.size for e in b]


class TestTraceContainer:
    def test_truncated(self):
        wl = WebProxyWorkload(n_files=100, seed=30)
        trace = wl.storage_trace()
        cut = trace.truncated(10)
        assert len(cut) == 10
        assert cut.events == trace.events[:10]

    def test_total_content_bytes(self):
        wl = WebProxyWorkload(n_files=100, seed=31)
        trace = wl.storage_trace()
        assert trace.total_content_bytes() == sum(e.size for e in trace.inserts)

    def test_empty_stats(self):
        from repro.workloads import Trace

        assert Trace().size_stats() == {"count": 0}


class TestTraceViews:
    def test_lookups_view(self):
        wl = WebProxyWorkload(n_files=100, seed=40)
        trace = wl.request_trace(n_requests=400)
        assert len(trace.inserts) + len(trace.lookups) == len(trace)
        assert all(e.kind == "lookup" for e in trace.lookups)

    def test_iteration_matches_events(self):
        wl = WebProxyWorkload(n_files=50, seed=41)
        trace = wl.storage_trace()
        assert list(trace) == trace.events
