"""Stateful property tests: hypothesis drives random operation sequences.

Two machines:

* :class:`LeafSetMachine` — random add/remove churn against a reference
  model of the leaf-set semantics.
* :class:`OverlayMachine` — random joins and failures of a live Pastry
  overlay; after every step, routing a random key from a random node must
  deliver at the numerically closest live node.
"""

import random

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.pastry import PastryNetwork, idspace
from repro.pastry.leafset import LeafSet

SMALL_IDS = st.integers(min_value=0, max_value=2**16 - 1)


class LeafSetMachine(RuleBasedStateMachine):
    """Leaf-set views must always match the brute-force reference."""

    def __init__(self):
        super().__init__()
        self.owner = 0x8000
        self.l = 8
        self.leafset = LeafSet(self.owner, self.l)
        self.universe = set()

    @rule(node=SMALL_IDS)
    def add(self, node):
        self.leafset.add(node)
        if node != self.owner:
            self.universe.add(node)

    @rule(node=SMALL_IDS)
    def remove(self, node):
        self.leafset.remove(node)
        self.universe.discard(node)

    @invariant()
    def sides_match_reference(self):
        # Reference: partition by nearer direction, keep l/2 nearest each.
        # The leaf set may have *forgotten* nodes trimmed earlier, so its
        # views must be a suffix-consistent subset of the reference built
        # from its own member set.
        members = self.leafset.members()
        cw = sorted(
            (m for m in members
             if idspace.clockwise_distance(self.owner, m)
             <= idspace.counterclockwise_distance(self.owner, m)),
            key=lambda m: idspace.clockwise_distance(self.owner, m),
        )
        ccw = sorted(
            (m for m in members
             if idspace.clockwise_distance(self.owner, m)
             > idspace.counterclockwise_distance(self.owner, m)),
            key=lambda m: idspace.counterclockwise_distance(self.owner, m),
        )
        assert self.leafset.larger == cw[: self.l // 2]
        assert self.leafset.smaller == ccw[: self.l // 2]

    @invariant()
    def members_within_universe(self):
        assert self.leafset.members() <= self.universe

    @invariant()
    def closest_matches_bruteforce(self):
        key = 0x1234
        candidates = self.leafset.members() | {self.owner}
        assert self.leafset.closest_to(key) == idspace.closest_of(candidates, key)


class OverlayMachine(RuleBasedStateMachine):
    """Routing stays correct through arbitrary join/fail/recover churn."""

    def __init__(self):
        super().__init__()
        self.net = PastryNetwork(b=4, l=8, seed=99)
        self.net.build(12)
        self.rng = random.Random(99)
        self.failed = []

    @rule()
    def join(self):
        if len(self.net) < 40:
            self.net.join()

    @precondition(lambda self: len(self.net) > 6)
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def fail(self, pick):
        ids = self.net.node_ids
        victim = ids[pick % len(ids)]
        self.net.fail_node(victim)
        self.failed.append(victim)

    @precondition(lambda self: bool(self.failed))
    @rule(pick=st.integers(min_value=0, max_value=10**9))
    def recover(self, pick):
        victim = self.failed.pop(pick % len(self.failed))
        self.net.recover_node(victim)

    @invariant()
    def routing_delivers_at_closest(self):
        for _ in range(3):
            key = self.rng.getrandbits(idspace.ID_BITS)
            origin = self.net.random_node(self.rng).node_id
            result = self.net.route(origin, key)
            assert result.terminus == self.net.numerically_closest_live(key)


TestLeafSetStateful = LeafSetMachine.TestCase
TestLeafSetStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

TestOverlayStateful = OverlayMachine.TestCase
TestOverlayStateful.settings = settings(
    max_examples=8, stateful_step_count=15, deadline=None
)
