"""Tests for lazy routing-table repair (§2.1: 'repaired lazily')."""

import random

from repro.pastry import PastryNetwork, idspace
from tests.conftest import build_pastry


def find_repairable(net):
    """A (node, dead_entry) pair where the node has live row peers."""
    for node in net.nodes():
        for entry in node.routing_table.entries():
            row, col = node.routing_table.slot_for(entry)
            peers = [
                e for e in node.routing_table.row(row)
                if e is not None and e != entry
            ]
            if peers:
                return node, entry, row, col
    return None


class TestLazyRepair:
    def test_repair_fills_slot_from_row_peer(self):
        net = build_pastry(150, l=8, seed=60)
        found = find_repairable(net)
        assert found, "topology should offer a repairable slot"
        node, dead, row, col = found
        # Quietly remove the entry's node (no witness notification) so only
        # lazy repair can fix the slot.
        net._deregister(dead)
        node.routing_table.remove(dead)
        replacement = node.repair_table_entry(row, col)
        if replacement is not None:
            assert net.is_live(replacement)
            assert idspace.shared_prefix_length(node.node_id, replacement, 4) == row
            assert idspace.digit(replacement, row, 4) == col

    def test_routing_triggers_repair_on_dead_entry(self):
        net = build_pastry(150, l=8, seed=61)
        rng = random.Random(61)
        # Remove a node quietly; subsequent routes that would have used it
        # must still deliver correctly (and repair as a side effect).
        victim = net.random_node(rng).node_id
        net._deregister(victim)
        for _ in range(200):
            key = rng.getrandbits(idspace.ID_BITS)
            origin = net.random_node(rng).node_id
            result = net.route(origin, key)
            assert result.terminus == net.numerically_closest_live(key)

    def test_repair_returns_none_when_no_candidates(self):
        net = PastryNetwork(b=4, l=8, seed=62)
        node = net.create_first_node()
        assert node.repair_table_entry(0, 5) is None

    def test_repair_never_installs_dead_or_self(self):
        net = build_pastry(100, l=8, seed=63)
        node = net.nodes()[0]
        dead_ids = list(net.node_ids)[50:55]
        for dead in dead_ids:
            net._deregister(dead)
        # Repair every slot we can; results must be live and correctly placed.
        for row in range(3):
            for col in range(16):
                result = node.repair_table_entry(row, col)
                if result is not None:
                    assert net.is_live(result)
                    assert result != node.node_id
