"""Routing correctness and performance bounds for the Pastry overlay."""

import math
import random

import pytest

from repro.pastry import PastryNetwork, idspace
from tests.conftest import build_pastry


class TestDelivery:
    def test_single_node_delivers_to_self(self):
        net = PastryNetwork(seed=1)
        node = net.create_first_node()
        result = net.route(node.node_id, 12345)
        assert result.terminus == node.node_id
        assert result.hops == 0

    def test_two_nodes(self):
        net = PastryNetwork(seed=1)
        a = net.join()
        b = net.join()
        for key in (0, idspace.ID_SPACE // 2, idspace.ID_SPACE - 1):
            result = net.route(a.node_id, key)
            assert result.terminus == net.numerically_closest_live(key)

    def test_route_to_own_id_is_zero_hops(self, small_pastry):
        node = small_pastry.nodes()[0]
        result = small_pastry.route(node.node_id, node.node_id)
        assert result.terminus == node.node_id
        assert result.hops == 0

    def test_routes_reach_numerically_closest(self, small_pastry):
        rng = random.Random(2)
        for _ in range(300):
            key = rng.getrandbits(idspace.ID_BITS)
            origin = small_pastry.random_node(rng).node_id
            result = small_pastry.route(origin, key)
            assert result.terminus == small_pastry.numerically_closest_live(key)

    def test_wraparound_keys_route_correctly(self, small_pastry):
        for key in (0, 1, idspace.ID_SPACE - 1, idspace.ID_SPACE // 2):
            origin = small_pastry.nodes()[0].node_id
            result = small_pastry.route(origin, key)
            assert result.terminus == small_pastry.numerically_closest_live(key)

    def test_route_from_unknown_origin_raises(self, small_pastry):
        with pytest.raises(KeyError):
            small_pastry.route(1 + max(small_pastry.node_ids), 5)


class TestHopBounds:
    def test_mean_hops_logarithmic(self):
        net = build_pastry(220, b=4, l=16, seed=5)
        rng = random.Random(6)
        bound = math.ceil(math.log(len(net), 2**4))
        hops = []
        for _ in range(400):
            key = rng.getrandbits(idspace.ID_BITS)
            result = net.route(net.random_node(rng).node_id, key)
            hops.append(result.hops)
        assert sum(hops) / len(hops) <= bound
        assert max(hops) <= bound + 2  # small slack for young routing tables

    def test_path_has_no_repeats(self, small_pastry):
        rng = random.Random(7)
        for _ in range(200):
            key = rng.getrandbits(idspace.ID_BITS)
            result = small_pastry.route(small_pastry.random_node(rng).node_id, key)
            assert len(result.path) == len(set(result.path))

    def test_each_hop_makes_numerical_progress(self, small_pastry):
        rng = random.Random(8)
        for _ in range(200):
            key = rng.getrandbits(idspace.ID_BITS)
            result = small_pastry.route(small_pastry.random_node(rng).node_id, key)
            dists = [idspace.ring_distance(n, key) for n in result.path]
            assert dists == sorted(dists, reverse=True)
            assert len(set(dists)) == len(dists) or dists[0] == dists[-1]


class TestRandomizedRouting:
    def test_randomized_routes_still_correct(self):
        net = PastryNetwork(b=4, l=16, seed=9, randomize_routing=True)
        net.build(60)
        rng = random.Random(10)
        for _ in range(200):
            key = rng.getrandbits(idspace.ID_BITS)
            result = net.route(net.random_node(rng).node_id, key)
            assert result.terminus == net.numerically_closest_live(key)

    def test_randomized_routing_varies_paths(self):
        """Repeated queries should not always take the same route (§2.3)."""
        net = PastryNetwork(b=4, l=8, seed=11, randomize_routing=True)
        net.build(120)
        rng = random.Random(12)
        key = rng.getrandbits(idspace.ID_BITS)
        origin = net.random_node(rng).node_id
        paths = {tuple(net.route(origin, key).path) for _ in range(30)}
        assert len(paths) > 1


class TestStats:
    def test_route_stats_accumulate(self, small_pastry):
        small_pastry.stats.reset()
        origin = small_pastry.nodes()[0].node_id
        small_pastry.route(origin, 12345)
        small_pastry.route(origin, 99999)
        assert small_pastry.stats.routes == 2
        assert small_pastry.stats.hops >= 0

    def test_distance_collection(self, small_pastry):
        small_pastry.stats.reset()
        origin = small_pastry.nodes()[0].node_id
        key = small_pastry.nodes()[-1].node_id
        result = small_pastry.route(origin, key, collect_distance=True)
        if result.hops:
            assert result.distance > 0
