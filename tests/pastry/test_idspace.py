"""Unit and property tests for identifier-space arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.pastry import idspace

ids = st.integers(min_value=0, max_value=idspace.ID_SPACE - 1)
bs = st.sampled_from([1, 2, 4, 8])


class TestDigits:
    def test_num_digits_typical(self):
        assert idspace.num_digits(4) == 32
        assert idspace.num_digits(2) == 64
        assert idspace.num_digits(1) == 128

    def test_num_digits_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            idspace.num_digits(3)

    def test_num_digits_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            idspace.num_digits(0)

    def test_digit_msb_first(self):
        ident = 0xA << 124  # single hex digit at the very top
        assert idspace.digit(ident, 0, 4) == 0xA
        assert idspace.digit(ident, 1, 4) == 0

    def test_digit_lsb(self):
        assert idspace.digit(0x7, 31, 4) == 0x7

    def test_digit_index_out_of_range(self):
        with pytest.raises(IndexError):
            idspace.digit(0, 32, 4)

    @given(ids, bs)
    def test_digits_reassemble(self, ident, b):
        ds = idspace.digits(ident, b)
        value = 0
        for d in ds:
            value = (value << b) | d
        assert value == ident

    @given(ids, bs)
    def test_digits_match_digit(self, ident, b):
        ds = idspace.digits(ident, b)
        for i in (0, len(ds) // 2, len(ds) - 1):
            assert ds[i] == idspace.digit(ident, i, b)


class TestSharedPrefix:
    def test_identical(self):
        assert idspace.shared_prefix_length(5, 5, 4) == 32

    def test_differ_at_top(self):
        a = 0x1 << 127
        assert idspace.shared_prefix_length(a, 0, 4) == 0

    def test_differ_at_bottom(self):
        assert idspace.shared_prefix_length(0, 1, 4) == 31

    @given(ids, ids, bs)
    def test_symmetry(self, a, x, b):
        assert idspace.shared_prefix_length(a, x, b) == idspace.shared_prefix_length(x, a, b)

    @given(ids, ids, bs)
    def test_prefix_digits_actually_match(self, a, x, b):
        p = idspace.shared_prefix_length(a, x, b)
        da, dx = idspace.digits(a, b), idspace.digits(x, b)
        assert da[:p] == dx[:p]
        if p < idspace.num_digits(b):
            assert da[p] != dx[p]


class TestRingDistance:
    def test_zero(self):
        assert idspace.ring_distance(42, 42) == 0

    def test_wraps(self):
        assert idspace.ring_distance(0, idspace.ID_SPACE - 1) == 1

    def test_antipode(self):
        half = idspace.ID_SPACE // 2
        assert idspace.ring_distance(0, half) == half

    @given(ids, ids)
    def test_symmetric(self, a, x):
        assert idspace.ring_distance(a, x) == idspace.ring_distance(x, a)

    @given(ids, ids)
    def test_bounded_by_half_space(self, a, x):
        assert 0 <= idspace.ring_distance(a, x) <= idspace.ID_SPACE // 2

    @given(ids, ids)
    def test_cw_plus_ccw_is_full_circle(self, a, x):
        if a != x:
            assert (
                idspace.clockwise_distance(a, x)
                + idspace.counterclockwise_distance(a, x)
                == idspace.ID_SPACE
            )

    @given(ids, ids)
    def test_ring_is_min_of_directed(self, a, x):
        assert idspace.ring_distance(a, x) == min(
            idspace.clockwise_distance(a, x), idspace.counterclockwise_distance(a, x)
        )


class TestCloseness:
    @given(ids, ids, ids)
    def test_strictly_closer_is_total_strict_order(self, a, b, target):
        if a == b:
            assert not idspace.is_strictly_closer(a, b, target)
        else:
            assert idspace.is_strictly_closer(a, b, target) != idspace.is_strictly_closer(
                b, a, target
            )

    def test_tie_broken_towards_lower_id(self):
        # 10 and 20 are equidistant from 15.
        assert idspace.is_strictly_closer(10, 20, 15)
        assert not idspace.is_strictly_closer(20, 10, 15)

    @given(st.lists(ids, min_size=1, max_size=20), ids)
    def test_closest_of_is_minimal(self, pool, target):
        best = idspace.closest_of(pool, target)
        for other in pool:
            assert not idspace.is_strictly_closer(other, best, target)

    def test_closest_of_empty(self):
        assert idspace.closest_of([], 7) is None

    @given(st.lists(ids, min_size=1, max_size=20, unique=True), ids)
    def test_sort_by_distance_sorted(self, pool, target):
        ordered = idspace.sort_by_distance(pool, target)
        assert set(ordered) == set(pool)
        for earlier, later in zip(ordered, ordered[1:]):
            assert idspace.is_strictly_closer(earlier, later, target)


class TestFileIds:
    def test_node_id_width(self):
        nid = idspace.node_id_from_public_key(b"some-key")
        assert 0 <= nid < idspace.ID_SPACE

    def test_node_id_deterministic(self):
        assert idspace.node_id_from_public_key(b"k") == idspace.node_id_from_public_key(b"k")

    def test_file_id_width(self):
        fid = idspace.file_id("a.txt", b"owner", 1)
        assert 0 <= fid < idspace.FILE_ID_SPACE

    def test_file_id_salt_changes_id(self):
        a = idspace.file_id("a.txt", b"owner", 1)
        b = idspace.file_id("a.txt", b"owner", 2)
        assert a != b

    def test_file_id_owner_changes_id(self):
        a = idspace.file_id("a.txt", b"owner1", 1)
        b = idspace.file_id("a.txt", b"owner2", 1)
        assert a != b

    def test_routing_key_is_msbs(self):
        fid = idspace.file_id("x", b"o", 0)
        assert idspace.routing_key(fid) == fid >> 32
        assert 0 <= idspace.routing_key(fid) < idspace.ID_SPACE

    def test_routing_key_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            idspace.routing_key(-1)
        with pytest.raises(ValueError):
            idspace.routing_key(idspace.FILE_ID_SPACE)


class TestFormat:
    def test_base16_format(self):
        assert idspace.format_id(0, 4) == "0" * 32

    def test_groups_limits_output(self):
        assert len(idspace.format_id(0, 4, groups=8)) == 8

    def test_base4(self):
        s = idspace.format_id(idspace.ID_SPACE - 1, 2)
        assert s == "3" * 64
