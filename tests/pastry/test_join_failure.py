"""Node join, failure detection, leaf-set repair, and recovery."""

import random

import pytest

from repro.pastry import PastryNetwork, idspace
from tests.conftest import build_pastry


def assert_leafsets_correct(net: PastryNetwork):
    """Every node's leaf set holds exactly the ring-adjacent live nodes."""
    ids = net.node_ids
    n = len(ids)
    for node in net.nodes():
        half = min(node.l // 2, n - 1)
        idx = ids.index(node.node_id)
        expected_larger = [ids[(idx + i) % n] for i in range(1, half + 1)]
        expected_smaller = [ids[(idx - i) % n] for i in range(1, half + 1)]
        assert node.leafset.larger == expected_larger, node
        assert node.leafset.smaller == expected_smaller, node


class TestJoin:
    def test_sequential_joins_maintain_leafsets(self):
        net = PastryNetwork(b=4, l=8, seed=20)
        for _ in range(50):
            net.join()
        assert_leafsets_correct(net)

    def test_join_duplicate_id_rejected(self):
        net = PastryNetwork(seed=21)
        node = net.join(node_id=777)
        with pytest.raises(ValueError):
            net.join(node_id=777)
        assert node.node_id == 777

    def test_first_node_has_empty_state(self):
        net = PastryNetwork(seed=22)
        node = net.create_first_node()
        assert len(node.leafset) == 0
        assert len(node.routing_table) == 0

    def test_create_first_node_twice_rejected(self):
        net = PastryNetwork(seed=23)
        net.create_first_node()
        with pytest.raises(RuntimeError):
            net.create_first_node()

    def test_joiner_learns_routing_rows_from_path(self):
        net = build_pastry(100, seed=24)
        newcomer = net.join()
        # The newcomer must know at least its leaf set and some table rows.
        assert newcomer.leafset.is_full() or len(net) <= newcomer.l
        assert len(newcomer.routing_table) > 0

    def test_existing_nodes_learn_about_joiner(self):
        net = build_pastry(40, l=8, seed=25)
        newcomer = net.join()
        holders = [
            n for n in net.nodes()
            if newcomer.node_id in n.leafset and n is not newcomer
        ]
        assert len(holders) >= min(8, len(net) - 1)

    def test_neighborhood_set_is_proximity_sorted(self):
        net = build_pastry(60, l=8, seed=26)
        node = net.nodes()[5]
        dists = [node._proximity(n) for n in node.neighborhood]
        assert dists == sorted(dists)


class TestFailure:
    def test_fail_removes_from_registry(self):
        net = build_pastry(30, l=8, seed=30)
        victim = net.nodes()[3].node_id
        net.fail_node(victim)
        assert not net.is_live(victim)
        assert len(net) == 29

    def test_fail_unknown_raises(self):
        net = build_pastry(10, seed=31)
        with pytest.raises(KeyError):
            net.fail_node(123456789)

    def test_leafsets_repaired_after_failure(self):
        net = build_pastry(40, l=8, seed=32)
        rng = random.Random(33)
        ids = list(net.node_ids)
        rng.shuffle(ids)
        for victim in ids[:8]:
            net.fail_node(victim)
        assert_leafsets_correct(net)

    def test_routing_survives_random_failures(self):
        net = build_pastry(80, l=8, seed=34)
        rng = random.Random(35)
        ids = list(net.node_ids)
        rng.shuffle(ids)
        for victim in ids[:20]:
            net.fail_node(victim)
        for _ in range(200):
            key = rng.getrandbits(idspace.ID_BITS)
            result = net.route(net.random_node(rng).node_id, key)
            assert result.terminus == net.numerically_closest_live(key)

    def test_adjacent_failures_within_guarantee(self):
        """Fewer than l/2 adjacent failures must not break delivery."""
        net = build_pastry(60, l=16, seed=36)
        ids = net.node_ids
        for victim in ids[10:13]:  # 3 adjacent < l/2 = 8
            net.fail_node(victim)
        rng = random.Random(37)
        for _ in range(150):
            key = rng.getrandbits(idspace.ID_BITS)
            result = net.route(net.random_node(rng).node_id, key)
            assert result.terminus == net.numerically_closest_live(key)

    def test_lazy_discovery_of_dead_routing_entries(self):
        """A node that never heard about a failure drops the dead entry on use."""
        net = build_pastry(60, l=8, seed=38)
        origin = net.nodes()[0]
        # Fail a node present in origin's routing table but not its leaf set.
        dead = None
        for entry in origin.routing_table.entries():
            if entry not in origin.leafset:
                dead = entry
                break
        if dead is None:
            pytest.skip("no suitable routing entry in this topology")
        # Remove quietly: bypass witness notification to simulate a remote,
        # unobserved crash.
        net._deregister(dead)
        result = net.route(origin.node_id, dead)
        assert result.terminus == net.numerically_closest_live(dead)


class TestRecovery:
    def test_recover_restores_membership(self):
        net = build_pastry(30, l=8, seed=40)
        victim = net.nodes()[7].node_id
        net.fail_node(victim)
        net.recover_node(victim)
        assert net.is_live(victim)
        assert_leafsets_correct(net)

    def test_recover_unknown_raises(self):
        net = build_pastry(10, seed=41)
        with pytest.raises(KeyError):
            net.recover_node(42)

    def test_churn_storm(self):
        """Interleaved joins, failures and recoveries keep the ring sound."""
        net = build_pastry(50, l=8, seed=42)
        rng = random.Random(43)
        failed = []
        for step in range(60):
            action = rng.random()
            if action < 0.4 and len(net) > 20:
                victim = rng.choice(net.node_ids)
                net.fail_node(victim)
                failed.append(victim)
            elif action < 0.6 and failed:
                net.recover_node(failed.pop(rng.randrange(len(failed))))
            else:
                net.join()
        assert_leafsets_correct(net)
        for _ in range(100):
            key = rng.getrandbits(idspace.ID_BITS)
            result = net.route(net.random_node(rng).node_id, key)
            assert result.terminus == net.numerically_closest_live(key)


class TestClusteredRingJoin:
    """Regression: joins into a ring whose live nodes cluster on one arc.

    Heavy failures can leave every survivor on one side of the namespace.
    Nodes near the cluster's edge then trim the far edge from their leaf
    sets (the other side staying empty), so a newcomer seeded only from
    its join terminus was blind to live nodes that belong in its leaf set
    and delivered keys at itself while numerically closer nodes existed.
    The leaf-set exchange at join and the trim-aware ``covers`` fix both
    halves of that failure.
    """

    # Two fail/join schedules distilled from hypothesis counterexamples.
    SCHEDULES = [[124, 0, 0, 182, 2, 1612], [2, 24, 106, 182, 2, 1612]]

    @pytest.mark.parametrize("picks", SCHEDULES)
    def test_join_into_clustered_ring_restores_invariants(self, picks):
        net = PastryNetwork(b=4, l=8, seed=99)
        net.build(12)
        for pick in picks:
            ids = net.node_ids
            net.fail_node(ids[pick % len(ids)])
        net.join()
        net.join()
        net.fail_node(net.node_ids[0])

        # Every node knows the l/2 nearest live nodes on each of its sides.
        live = sorted(net.node_ids)
        for nid in live:
            node = net.node(nid)
            others = [m for m in live if m != nid]
            cw = sorted(
                (m for m in others
                 if idspace.clockwise_distance(nid, m)
                 <= idspace.counterclockwise_distance(nid, m)),
                key=lambda m: idspace.clockwise_distance(nid, m),
            )
            ccw = sorted(
                (m for m in others
                 if idspace.clockwise_distance(nid, m)
                 > idspace.counterclockwise_distance(nid, m)),
                key=lambda m: idspace.counterclockwise_distance(nid, m),
            )
            want = set(cw[: net.l // 2]) | set(ccw[: net.l // 2])
            assert want <= node.leafset.members(), hex(nid)

        # And routing from every node delivers at the closest live node.
        rng = random.Random(7)
        for _ in range(40):
            key = rng.getrandbits(idspace.ID_BITS)
            for origin in net.node_ids:
                result = net.route(origin, key)
                assert result.terminus == net.numerically_closest_live(key)
