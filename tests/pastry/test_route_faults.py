"""Routing under an installed fault plane (loss, delay, duplication)."""

import pytest

from repro.netsim.faults import FaultPlan
from repro.pastry.network import RoutingError
from tests.conftest import build_pastry


def far_pair(net):
    """An (origin, key) pair guaranteed to need at least one hop."""
    ids = sorted(net.node_ids)
    return ids[0], ids[len(ids) // 2]


class TestLossOnRoute:
    def test_certain_loss_terminates_route(self):
        net = build_pastry(30, l=8, seed=90)
        origin, key = far_pair(net)
        net.fault_plan = FaultPlan(seed=1, loss=1.0)
        result = net.route(origin, key)
        assert result.lost and result.terminus is None
        assert net.fault_plan.stats.messages_lost == 1

    def test_lost_route_logged_but_not_misdelivered(self):
        net = build_pastry(30, l=8, seed=90)
        origin, key = far_pair(net)
        net.fault_plan = FaultPlan(seed=1, loss=1.0)
        log = net.start_delivery_log()
        net.route(origin, key)
        net.delivery_log = None
        assert len(log) == 1
        assert log[0].lost and not log[0].misdelivered

    def test_partition_severs_routes(self):
        net = build_pastry(30, l=8, seed=91)
        origin, key = far_pair(net)
        plan = FaultPlan(seed=0).bind_clock(lambda: 5.0)
        # Cut the origin off from everyone: its first hop must cross.
        plan.add_partition(at=0.0, heal_at=10.0, group=[origin])
        net.fault_plan = plan
        result = net.route(origin, key)
        assert result.lost
        assert plan.stats.partition_drops == 1

    def test_no_plan_and_quiet_plan_route_identically(self):
        net = build_pastry(30, l=8, seed=92)
        origin, key = far_pair(net)
        clean = net.route(origin, key)
        plan = FaultPlan(seed=3)  # all rates zero: must not perturb anything
        state = plan.rng.getstate()
        net.fault_plan = plan
        faulty = net.route(origin, key)
        assert faulty.path == clean.path
        assert not faulty.lost and faulty.latency == 0.0
        assert plan.rng.getstate() == state


class TestDelayAndDuplication:
    def test_delay_accumulates_in_latency(self):
        net = build_pastry(30, l=8, seed=93)
        origin, key = far_pair(net)
        net.fault_plan = FaultPlan(seed=2, delay_mean=0.5)
        result = net.route(origin, key)
        assert not result.lost and result.hops >= 1
        assert result.latency > 0.0

    def test_duplicated_hop_reroutes_a_copy(self):
        net = build_pastry(30, l=8, seed=94)
        origin, key = far_pair(net)
        net.fault_plan = FaultPlan(seed=2, duplicate=1.0)
        log = net.start_delivery_log()
        result = net.route(origin, key)
        net.delivery_log = None
        assert not result.lost
        originals = [r for r in log if not r.duplicate]
        copies = [r for r in log if r.duplicate]
        assert len(originals) == 1
        # One copy per hop of the original; copies never spawn copies.
        assert len(copies) == result.hops


class TestMidRouteCrash:
    def test_next_hop_vanishing_raises_routing_error(self):
        """A hop chosen while live can die before delivery (satellite of
        the fault plane: the race the pragma used to hide)."""
        net = build_pastry(30, l=8, seed=95)
        origin, key = far_pair(net)
        plan = FaultPlan(seed=0)

        def assassinate(src: int, dst: int) -> None:
            if net.is_live(dst):
                net.mark_failed(dst)

        plan.on_transmit = assassinate
        net.fault_plan = plan
        with pytest.raises(RoutingError, match="vanished mid-route"):
            net.route(origin, key)
