"""Unit tests for the Pastry routing table."""

from hypothesis import given, strategies as st

from repro.pastry import idspace
from repro.pastry.routingtable import RoutingTable

OWNER = 0x12345678 << 96  # digits: 1,2,3,4,5,6,7,8,0,...

ids = st.integers(min_value=0, max_value=idspace.ID_SPACE - 1)


def make(proximity=None):
    prox = proximity if proximity is not None else (lambda n: 0.0)
    return RoutingTable(OWNER, 4, prox)


class TestSlots:
    def test_slot_for_self_is_none(self):
        assert make().slot_for(OWNER) is None

    def test_slot_row_is_shared_prefix(self):
        rt = make()
        other = 0x22345678 << 96  # differs at digit 0
        assert rt.slot_for(other) == (0, 2)

    def test_slot_deeper(self):
        rt = make()
        other = 0x12395678 << 96  # shares 3 digits, digit 3 = 9
        assert rt.slot_for(other) == (3, 9)

    def test_dimensions(self):
        rt = make()
        assert rt.rows == 32
        assert rt.cols == 16


class TestConsider:
    def test_fills_empty_slot(self):
        rt = make()
        node = 0x2 << 124
        assert rt.consider(node)
        assert rt.entry(0, 2) == node

    def test_never_fills_own_digit_column(self):
        rt = make()
        # Shares 0 digits but first digit equals owner's first digit: that
        # is impossible (they'd share a digit), so craft a row-1 case:
        # shares 1 digit ("1"), next digit 2 == owner's digit 2 -> impossible
        # too.  The guard is exercised via install_row with the owner itself.
        assert not rt.consider(OWNER)

    def test_prefers_proximal_candidate(self):
        distances = {}
        rt = make(lambda n: distances[n])
        far = 0x2F << 120
        near = 0x2A << 120
        distances[far], distances[near] = 5.0, 1.0
        rt.consider(far)
        assert rt.consider(near)
        assert rt.entry(0, 2) == near

    def test_keeps_nearer_occupant(self):
        distances = {}
        rt = make(lambda n: distances[n])
        near = 0x2A << 120
        far = 0x2F << 120
        distances[far], distances[near] = 5.0, 1.0
        rt.consider(near)
        assert not rt.consider(far)
        assert rt.entry(0, 2) == near

    def test_duplicate_consider_is_noop(self):
        rt = make()
        node = 0x2 << 124
        rt.consider(node)
        assert not rt.consider(node)

    @given(st.lists(ids, min_size=1, max_size=100, unique=True))
    def test_property_entries_in_correct_slots(self, nodes):
        rt = make()
        for n in nodes:
            rt.consider(n)
        for entry in rt.entries():
            row, col = rt.slot_for(entry)
            assert rt.entry(row, col) == entry
            assert idspace.shared_prefix_length(OWNER, entry, 4) == row
            assert idspace.digit(entry, row, 4) == col


class TestLookup:
    def test_lookup_finds_longer_prefix_node(self):
        rt = make()
        node = 0x129 << 116  # shares "12", digit 9 at row 2
        rt.consider(node)
        key = 0x1299 << 112
        assert rt.lookup(key) == node

    def test_lookup_empty_slot_returns_none(self):
        assert make().lookup(0x9 << 124) is None

    def test_lookup_own_id_returns_none(self):
        assert make().lookup(OWNER) is None

    def test_remove(self):
        rt = make()
        node = 0x2 << 124
        rt.consider(node)
        assert rt.remove(node)
        assert rt.entry(0, 2) is None

    def test_remove_absent(self):
        assert not make().remove(0x3 << 124)

    def test_remove_wrong_occupant_is_noop(self):
        rt = make()
        a = 0x2A << 120
        b = 0x2B << 120  # same slot as a
        rt.consider(a)
        assert not rt.remove(b)
        assert rt.entry(0, 2) == a


class TestRows:
    def test_row_copy_is_defensive(self):
        rt = make()
        node = 0x2 << 124
        rt.consider(node)
        row = rt.row(0)
        row[2] = None
        assert rt.entry(0, 2) == node

    def test_install_row_applies_consider_rules(self):
        rt = make()
        donor_row = [None] * 16
        node = 0x2 << 124
        donor_row[2] = node
        donor_row[1] = OWNER  # must be skipped
        rt.install_row(0, donor_row)
        assert rt.entry(0, 2) == node
        assert len(rt) == 1

    def test_len_counts_entries(self):
        rt = make()
        rt.consider(0x2 << 124)
        rt.consider(0x129 << 116)
        assert len(rt) == 2
