"""Unit and property tests for Pastry leaf sets."""

import pytest
from hypothesis import given, strategies as st

from repro.pastry import idspace
from repro.pastry.leafset import LeafSet

ids = st.integers(min_value=0, max_value=idspace.ID_SPACE - 1)


def make(owner=1000, l=8):
    return LeafSet(owner, l)


class TestConstruction:
    def test_rejects_odd_l(self):
        with pytest.raises(ValueError):
            LeafSet(0, 7)

    def test_rejects_tiny_l(self):
        with pytest.raises(ValueError):
            LeafSet(0, 0)

    def test_empty_initially(self):
        ls = make()
        assert len(ls) == 0
        assert ls.smaller == [] and ls.larger == []


class TestMembership:
    def test_add_ignores_self(self):
        ls = make(owner=5)
        ls.add(5)
        assert len(ls) == 0

    def test_add_and_contains(self):
        ls = make()
        ls.add(2000)
        assert 2000 in ls

    def test_remove(self):
        ls = make()
        ls.add(2000)
        assert ls.remove(2000)
        assert 2000 not in ls

    def test_remove_absent_returns_false(self):
        assert not make().remove(77)

    def test_sides_sorted_nearest_first(self):
        ls = make(owner=1000, l=4)
        ls.add_all([900, 800, 1100, 1200])
        assert ls.smaller == [900, 800]
        assert ls.larger == [1100, 1200]

    def test_trims_to_l_over_2_per_side(self):
        # 1300 is neither among the 2 nearest clockwise successors
        # (1100, 1200) nor the 2 nearest counterclockwise predecessors
        # across the wrap (1500, 1400), so it is the one node trimmed.
        # The retained far nodes are members but sit on no side view
        # (they are clockwise-nearer, and the clockwise view is full
        # with nearer successors).
        ls = make(owner=1000, l=4)
        ls.add_all([1100, 1200, 1300, 1400, 1500])
        assert ls.larger == [1100, 1200]
        assert ls.smaller == []
        assert ls.members() == {1100, 1200, 1400, 1500}
        assert 1300 not in ls
        assert ls.ever_trimmed

    def test_small_ring_keeps_every_member(self):
        # With at most l/2 nodes per direction ranking, every node is
        # among the nearest in one of the two rankings: nothing is
        # trimmed, preserving global knowledge of a small ring.
        ls = make(owner=1000, l=4)
        ls.add_all([1100, 1200, 1300, 1400])
        assert ls.members() == {1100, 1200, 1300, 1400}
        assert not ls.ever_trimmed

    def test_wraps_around_namespace(self):
        top = idspace.ID_SPACE - 5
        ls = make(owner=top, l=4)
        ls.add_all([3, idspace.ID_SPACE - 10])
        assert 3 in ls.larger  # 3 is clockwise-adjacent across the wrap

    def test_is_full(self):
        ls = make(owner=1000, l=4)
        assert not ls.is_full()
        ls.add_all([900, 800, 1100, 1200])
        assert ls.is_full()


class TestCoverage:
    def test_not_full_covers_everything(self):
        ls = make(owner=1000, l=8)
        ls.add(2000)
        assert ls.covers(0) and ls.covers(idspace.ID_SPACE - 1)

    def test_full_covers_span_only(self):
        ls = make(owner=1000, l=4)
        ls.add_all([900, 800, 1100, 1200])
        assert ls.covers(1000) and ls.covers(850) and ls.covers(1150)
        assert not ls.covers(5000)
        assert not ls.covers(500)

    def test_trimmed_set_does_not_cover_forgotten_gap(self):
        # Regression: five nodes clustered clockwise of the owner.  Node
        # 30 is neither among the 2 nearest clockwise (10, 20) nor the 2
        # nearest counterclockwise across the wrap (50, 40), so it is
        # trimmed and forgotten.  The set has lost knowledge, so it must
        # NOT claim anything beyond its faithful arc (which ends at 20 —
        # the retained far nodes 40 and 50 are clockwise-nearer, so the
        # counterclockwise side is genuinely empty) — claiming more made
        # routing deliver at nodes that merely could not see anything
        # closer.
        ls = make(owner=0, l=4)
        ls.add_all([10, 20, 30, 40, 50])
        assert ls.larger == [10, 20] and ls.smaller == []
        assert {40, 50} <= ls.members()
        assert ls.ever_trimmed
        assert ls.covers(15)          # inside the arc owner..20
        assert not ls.covers(30)      # the forgotten node's neighborhood
        assert not ls.covers(45)      # beyond the faithful arc
        assert not ls.covers(idspace.ID_SPACE - 50)

    def test_clustered_ring_keeps_clockwise_successor(self):
        # Regression for a real misrouting bug: every other node sits far
        # clockwise of the owner, so a trim that bucketed members by
        # nearer direction would overflow that one bucket and forget the
        # farthest successors.  The direction-blind union trim keeps all
        # six (each is among the 4 nearest in at least one direction
        # ranking), so the set never trims and retains global knowledge
        # — while the faithful side views still report that no member is
        # genuinely counterclockwise-nearer.
        ls = make(owner=0, l=8)
        cluster = [500, 510, 520, 530, 540, 550]
        ls.add_all(cluster)
        assert ls.members() == set(cluster)
        assert not ls.ever_trimmed
        assert ls.larger == [500, 510, 520, 530]
        assert ls.smaller == []
        assert ls.covers(1000) and ls.covers(idspace.ID_SPACE - 50)
        assert ls.covers(535)

    def test_never_trimmed_partial_set_still_covers_everything(self):
        # A side shrinking below l/2 through removals (without ever
        # overflowing) keeps the global-knowledge shortcut.
        ls = make(owner=0, l=4)
        ls.add_all([10, 20])
        ls.remove(20)
        assert not ls.is_full()
        assert ls.covers(1000) and ls.covers(idspace.ID_SPACE - 50)

    def test_extremes(self):
        ls = make(owner=1000, l=4)
        ls.add_all([900, 800, 1100, 1200])
        assert ls.extremes() == (800, 1200)

    def test_extremes_partial(self):
        ls = make(owner=1000, l=4)
        ls.add(1100)
        assert ls.extremes() == (None, 1100)


class TestClosest:
    def test_closest_to_includes_self(self):
        ls = make(owner=1000, l=4)
        ls.add_all([900, 1100])
        assert ls.closest_to(1001) == 1000

    def test_closest_to_excluding_self(self):
        ls = make(owner=1000, l=4)
        ls.add_all([900, 1100])
        assert ls.closest_to(1001, include_self=False) == 1100

    def test_closest_nodes_ordering(self):
        ls = make(owner=1000, l=8)
        ls.add_all([990, 1010, 950, 1050])
        assert ls.closest_nodes(1000, 3) == [1000, 990, 1010]

    def test_closest_nodes_k_larger_than_members(self):
        ls = make(owner=1000, l=8)
        ls.add(1010)
        assert len(ls.closest_nodes(1000, 5)) == 2


@given(
    owner=ids,
    members=st.lists(ids, min_size=0, max_size=30, unique=True),
    key=ids,
)
def test_property_sides_hold_true_nearest(owner, members, key):
    """Each side holds the l/2 nearest nodes that are nearer in its direction."""
    l = 8
    ls = LeafSet(owner, l)
    ls.add_all(members)
    others = [m for m in members if m != owner]
    cw_side = [
        m
        for m in others
        if idspace.clockwise_distance(owner, m) <= idspace.counterclockwise_distance(owner, m)
    ]
    ccw_side = [m for m in others if m not in cw_side]
    expect_larger = sorted(cw_side, key=lambda i: idspace.clockwise_distance(owner, i))[: l // 2]
    expect_smaller = sorted(
        ccw_side, key=lambda i: idspace.counterclockwise_distance(owner, i)
    )[: l // 2]
    assert ls.larger == expect_larger
    assert ls.smaller == expect_smaller


@given(
    owner=ids,
    members=st.lists(ids, min_size=5, max_size=30, unique=True),
    key=ids,
)
def test_property_closest_to_agrees_with_oracle(owner, members, key):
    ls = LeafSet(owner, 8)
    ls.add_all(members)
    candidates = ls.members() | {owner}
    assert ls.closest_to(key) == idspace.closest_of(candidates, key)


@given(
    owner=ids,
    adds=st.lists(ids, min_size=1, max_size=40),
    removes=st.data(),
)
def test_property_add_remove_interleaved_consistent(owner, adds, removes):
    """After arbitrary add/remove churn the views stay consistent."""
    ls = LeafSet(owner, 8)
    alive = set()
    for i, node in enumerate(adds):
        ls.add(node)
        if node != owner:
            alive.add(node)
        if i % 3 == 2 and alive:
            victim = removes.draw(st.sampled_from(sorted(alive)))
            ls.remove(victim)
            alive.discard(victim)
    # Every remaining member is one we added and never removed...
    assert ls.members() <= alive
    # ...and each side is sorted by directed distance.
    larger = ls.larger
    dists = [idspace.clockwise_distance(owner, m) for m in larger]
    assert dists == sorted(dists)


class TestStateRows:
    def test_state_rows_shape(self):
        ls = make(owner=1000, l=4)
        ls.add_all([900, 1100])
        rows = ls.state_rows()
        assert rows == {"smaller": [900], "larger": [1100]}
