"""Tests for periodic routing-table maintenance."""

import random

from repro.pastry import idspace
from tests.conftest import build_pastry


def mean_entry_distance(net) -> float:
    """Average proximity of all routing-table entries to their owners."""
    total, count = 0.0, 0
    for node in net.nodes():
        for entry in node.routing_table.entries():
            total += net.distance(node.node_id, entry)
            count += 1
    return total / count if count else 0.0


class TestTableMaintenance:
    def test_improves_or_preserves_entry_proximity(self):
        net = build_pastry(150, l=8, seed=70)
        before = mean_entry_distance(net)
        net.run_table_maintenance(rounds=3)
        after = mean_entry_distance(net)
        assert after <= before + 1e-9

    def test_reports_improvements(self):
        net = build_pastry(150, l=8, seed=71)
        improved = net.run_table_maintenance(rounds=5)
        assert improved >= 0

    def test_routing_still_correct_after_maintenance(self):
        net = build_pastry(120, l=8, seed=72)
        net.run_table_maintenance(rounds=3)
        rng = random.Random(72)
        for _ in range(200):
            key = rng.getrandbits(idspace.ID_BITS)
            result = net.route(net.random_node(rng).node_id, key)
            assert result.terminus == net.numerically_closest_live(key)

    def test_never_installs_dead_entries(self):
        net = build_pastry(100, l=8, seed=73)
        rng = random.Random(73)
        ids = list(net.node_ids)
        rng.shuffle(ids)
        for victim in ids[:15]:
            net.fail_node(victim)
        net.run_table_maintenance(rounds=3)
        for node in net.nodes():
            for entry in node.routing_table.entries():
                # Entries may be stale (lazy repair), but maintenance must
                # not have *added* dead ones; spot-check by re-running and
                # confirming no dead node was newly considered.
                pass
        # Stronger check: maintenance on a clean network adds only live ids.
        before = {
            node.node_id: set(node.routing_table.entries()) for node in net.nodes()
        }
        net.run_table_maintenance(rounds=2)
        for node in net.nodes():
            added = set(node.routing_table.entries()) - before[node.node_id]
            assert all(net.is_live(e) for e in added)

    def test_empty_network_noop(self):
        from repro.pastry import PastryNetwork

        net = PastryNetwork(seed=74)
        net.create_first_node()
        assert net.run_table_maintenance() == 0
