"""Tests for the keep-alive failure-detection protocol."""

import pytest

from repro.netsim.eventsim import EventSimulator
from repro.pastry.keepalive import KeepAliveMonitor
from tests.conftest import build_pastry


def make(n=30, interval=1.0, timeout=3.0, seed=80):
    net = build_pastry(n, l=8, seed=seed)
    sim = EventSimulator()
    detected = []
    monitor = KeepAliveMonitor(
        sim, net, on_detect=detected.append, interval=interval, timeout=timeout
    )
    monitor.start()
    return net, sim, monitor, detected


class TestDetection:
    def test_healthy_network_detects_nothing(self):
        net, sim, monitor, detected = make()
        sim.run_until(20.0)
        assert detected == []
        assert monitor.probes_sent > 0

    def test_crash_detected_within_timeout_plus_interval(self):
        net, sim, monitor, detected = make(interval=1.0, timeout=3.0)
        sim.run_until(5.0)
        victim = net.node_ids[4]
        net.mark_failed(victim)
        crash_time = sim.now
        sim.run_until(crash_time + 3.0 + 1.0 + 1e-6)
        assert detected == [victim]

    def test_not_detected_before_timeout(self):
        net, sim, monitor, detected = make(interval=1.0, timeout=5.0)
        sim.run_until(2.0)
        victim = net.node_ids[0]
        net.mark_failed(victim)
        sim.run_until(sim.now + 4.0)  # < timeout
        assert detected == []

    def test_detection_fires_exactly_once(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[7]
        net.mark_failed(victim)
        sim.run_until(30.0)
        assert detected.count(victim) == 1

    def test_multiple_crashes_all_detected(self):
        net, sim, monitor, detected = make(n=40)
        victims = [net.node_ids[i] for i in (3, 11, 25)]
        for v in victims:
            net.mark_failed(v)
        sim.run_until(20.0)
        assert set(detected) == set(victims)

    def test_crashed_observer_stops_probing(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[2]
        net.mark_failed(victim)
        sim.run_until(10.0)
        assert victim not in monitor._timers

    def test_forget_allows_redetection_after_recovery(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[5]
        net.mark_failed(victim)
        sim.run_until(10.0)
        assert detected == [victim]
        net.recover_node(victim)
        monitor.forget(victim)
        monitor.watch(victim)
        sim.run_until(20.0)
        assert detected == [victim]  # healthy again: no false positive
        net.mark_failed(victim)
        sim.run_until(30.0)
        assert detected == [victim, victim]

    def test_invalid_parameters(self):
        net, sim, _, _ = make()
        with pytest.raises(ValueError):
            KeepAliveMonitor(sim, net, lambda n: None, interval=0.0)
        with pytest.raises(ValueError):
            KeepAliveMonitor(sim, net, lambda n: None, timeout=-1.0)


def assert_indexes_consistent(monitor):
    """The per-node indexes must mirror last_heard exactly."""
    from_index = {
        (obs, peer)
        for obs, peers in monitor._peers_of.items()
        for peer in peers
    }
    from_reverse = {
        (obs, peer)
        for peer, observers in monitor._observers_of.items()
        for obs in observers
    }
    assert from_index == set(monitor.last_heard)
    assert from_reverse == set(monitor.last_heard)


class TestStateHygiene:
    def test_unwatch_drops_observer_side_state(self):
        net, sim, monitor, detected = make()
        sim.run_until(5.0)
        victim = net.node_ids[3]
        assert any(obs == victim for obs, _ in monitor.last_heard)
        monitor.unwatch(victim)
        assert not any(obs == victim for obs, _ in monitor.last_heard)
        assert victim not in monitor._peers_of
        # Others still probe it: peer-side entries survive unwatch.
        assert any(peer == victim for _, peer in monitor.last_heard)
        assert_indexes_consistent(monitor)

    def test_forget_drops_both_sides(self):
        net, sim, monitor, detected = make()
        sim.run_until(5.0)
        victim = net.node_ids[3]
        monitor.forget(victim)
        assert not any(victim in key for key in monitor.last_heard)
        assert victim not in monitor._peers_of
        assert victim not in monitor._observers_of
        assert_indexes_consistent(monitor)

    def test_stop_leaves_no_state_behind(self):
        net, sim, monitor, detected = make()
        sim.run_until(5.0)
        monitor.stop()
        assert monitor._timers == {}
        assert monitor.last_heard == {}
        assert monitor._peers_of == {} and monitor._observers_of == {}

    def test_crashed_observer_state_reclaimed(self):
        """A dead observer's probe state must not leak forever."""
        net, sim, monitor, detected = make()
        victim = net.node_ids[2]
        sim.run_until(2.0)
        net.mark_failed(victim)
        sim.run_until(10.0)
        assert victim not in monitor._timers
        assert not any(obs == victim for obs, _ in monitor.last_heard)
        assert_indexes_consistent(monitor)


class TestFirstContactWindow:
    def test_watch_seeds_window_at_watch_time(self):
        """The timeout window starts when watching begins — not backdated
        one probe interval into the past."""
        net = build_pastry(30, l=8, seed=80)
        sim = EventSimulator()
        monitor = KeepAliveMonitor(
            sim, net, on_detect=lambda n: None, interval=1.0, timeout=3.0
        )
        sim.schedule(4.0, monitor.start)
        sim.run_until(4.0)
        assert monitor.last_heard  # start() seeded the current leaf sets
        assert all(t == 4.0 for t in monitor.last_heard.values())

    def test_peer_dead_at_watch_gets_full_timeout(self):
        """A peer that never answers is detected ``timeout`` after watch
        begins; the old backdated seeding fired an interval early."""
        net = build_pastry(30, l=8, seed=80)
        sim = EventSimulator()
        times = {}
        monitor = KeepAliveMonitor(
            sim, net, on_detect=lambda n: times.setdefault(n, sim.now),
            interval=1.0, timeout=3.0,
        )
        victim = net.node_ids[4]
        net.mark_failed(victim)
        monitor.start()  # at t=0, victim already silent
        sim.run_until(10.0)
        assert times[victim] >= 3.0


class TestAutoRewatch:
    def test_recovered_node_probes_again_without_manual_watch(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[5]
        net.mark_failed(victim)
        sim.run_until(10.0)
        assert detected == [victim]
        assert victim not in monitor._timers
        # Only the overlay-level recovery: no forget()/watch() calls.
        net.recover_node(victim)
        assert victim in monitor._timers
        assert victim not in monitor.detected
        sim.run_until(20.0)
        assert detected == [victim]  # healthy: no false re-detection

    def test_fail_recover_fail_again_detected_twice(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[5]
        net.mark_failed(victim)
        sim.run_until(10.0)
        net.recover_node(victim)
        sim.run_until(15.0)
        net.mark_failed(victim)
        sim.run_until(25.0)
        assert detected == [victim, victim]

    def test_recovery_while_stopped_does_not_watch(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[5]
        net.mark_failed(victim)
        sim.run_until(10.0)
        monitor.stop()
        net.recover_node(victim)
        assert victim not in monitor._timers
        assert monitor.last_heard == {}


class TestEndToEndWithPast:
    def test_keepalive_drives_past_recovery(self):
        """Full loop: crash -> keep-alive expiry -> PAST re-replication."""
        import random

        from repro import PastConfig, PastNetwork, audit

        net = PastNetwork(PastConfig(l=8, k=3, seed=81, cache_policy="none"))
        net.build([2_000_000] * 25)
        owner = net.create_client("o")
        rng = random.Random(81)
        fids = []
        for i in range(40):
            res = net.insert(f"ka{i}", owner, 20_000,
                             net.nodes()[rng.randrange(len(net))].node_id)
            fids.append(res.file_id)

        sim = EventSimulator()
        monitor = KeepAliveMonitor(
            sim, net.pastry,
            on_detect=net.process_failure_detection,
            interval=1.0, timeout=3.0,
        )
        monitor.start()
        victim = net.pastry.node_ids[6]
        sim.schedule(2.0, lambda: (net.crash_node(victim),
                                   net.wipe_failed_disk(victim)))
        sim.run_until(10.0)
        monitor.stop()
        # Detection happened and maintenance restored every file.
        assert victim in monitor.detected
        report = audit(net)
        assert report.ok, report.violations[:3]
        probe = net.nodes()[0].node_id
        assert all(net.lookup(fid, probe).success for fid in fids)
