"""Tests for the keep-alive failure-detection protocol."""

import pytest

from repro.netsim.eventsim import EventSimulator
from repro.pastry.keepalive import KeepAliveMonitor
from tests.conftest import build_pastry


def make(n=30, interval=1.0, timeout=3.0, seed=80):
    net = build_pastry(n, l=8, seed=seed)
    sim = EventSimulator()
    detected = []
    monitor = KeepAliveMonitor(
        sim, net, on_detect=detected.append, interval=interval, timeout=timeout
    )
    monitor.start()
    return net, sim, monitor, detected


class TestDetection:
    def test_healthy_network_detects_nothing(self):
        net, sim, monitor, detected = make()
        sim.run_until(20.0)
        assert detected == []
        assert monitor.probes_sent > 0

    def test_crash_detected_within_timeout_plus_interval(self):
        net, sim, monitor, detected = make(interval=1.0, timeout=3.0)
        sim.run_until(5.0)
        victim = net.node_ids[4]
        net.mark_failed(victim)
        crash_time = sim.now
        sim.run_until(crash_time + 3.0 + 1.0 + 1e-6)
        assert detected == [victim]

    def test_not_detected_before_timeout(self):
        net, sim, monitor, detected = make(interval=1.0, timeout=5.0)
        sim.run_until(2.0)
        victim = net.node_ids[0]
        net.mark_failed(victim)
        sim.run_until(sim.now + 4.0)  # < timeout
        assert detected == []

    def test_detection_fires_exactly_once(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[7]
        net.mark_failed(victim)
        sim.run_until(30.0)
        assert detected.count(victim) == 1

    def test_multiple_crashes_all_detected(self):
        net, sim, monitor, detected = make(n=40)
        victims = [net.node_ids[i] for i in (3, 11, 25)]
        for v in victims:
            net.mark_failed(v)
        sim.run_until(20.0)
        assert set(detected) == set(victims)

    def test_crashed_observer_stops_probing(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[2]
        net.mark_failed(victim)
        sim.run_until(10.0)
        assert victim not in monitor._timers

    def test_forget_allows_redetection_after_recovery(self):
        net, sim, monitor, detected = make()
        victim = net.node_ids[5]
        net.mark_failed(victim)
        sim.run_until(10.0)
        assert detected == [victim]
        net.recover_node(victim)
        monitor.forget(victim)
        monitor.watch(victim)
        sim.run_until(20.0)
        assert detected == [victim]  # healthy again: no false positive
        net.mark_failed(victim)
        sim.run_until(30.0)
        assert detected == [victim, victim]

    def test_invalid_parameters(self):
        net, sim, _, _ = make()
        with pytest.raises(ValueError):
            KeepAliveMonitor(sim, net, lambda n: None, interval=0.0)
        with pytest.raises(ValueError):
            KeepAliveMonitor(sim, net, lambda n: None, timeout=-1.0)


class TestEndToEndWithPast:
    def test_keepalive_drives_past_recovery(self):
        """Full loop: crash -> keep-alive expiry -> PAST re-replication."""
        import random

        from repro import PastConfig, PastNetwork, audit

        net = PastNetwork(PastConfig(l=8, k=3, seed=81, cache_policy="none"))
        net.build([2_000_000] * 25)
        owner = net.create_client("o")
        rng = random.Random(81)
        fids = []
        for i in range(40):
            res = net.insert(f"ka{i}", owner, 20_000,
                             net.nodes()[rng.randrange(len(net))].node_id)
            fids.append(res.file_id)

        sim = EventSimulator()
        monitor = KeepAliveMonitor(
            sim, net.pastry,
            on_detect=net.process_failure_detection,
            interval=1.0, timeout=3.0,
        )
        monitor.start()
        victim = net.pastry.node_ids[6]
        sim.schedule(2.0, lambda: (net.crash_node(victim),
                                   net.wipe_failed_disk(victim)))
        sim.run_until(10.0)
        monitor.stop()
        # Detection happened and maintenance restored every file.
        assert victim in monitor.detected
        report = audit(net)
        assert report.ok, report.violations[:3]
        probe = net.nodes()[0].node_id
        assert all(net.lookup(fid, probe).success for fid in fids)
