"""Tests for the linter's incremental mode (--baseline / --changed)."""

import json
import subprocess

import pytest

from repro.devtools.lint import (
    changed_files,
    finding_key,
    load_baseline,
    main as lint_main,
    write_baseline,
)
from repro.devtools.framework import Finding, LintError

BAD_SOURCE = "import random\nr = random.Random()\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    return tmp_path


class TestBaseline:
    def test_write_then_suppress(self, tree, capsys):
        baseline = tree / "lint-baseline.json"
        assert lint_main([str(tree), "--write-baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 finding" in out
        # The recorded finding no longer fails the run...
        assert lint_main([str(tree), "--baseline", str(baseline)]) == 0
        # ...but a new one does, and is the only one reported.
        (tree / "worse.py").write_text(BAD_SOURCE)
        assert lint_main([str(tree), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "worse.py" in out and "bad.py" not in out

    def test_baseline_survives_line_drift(self, tree):
        baseline = tree / "baseline.json"
        lint_main([str(tree), "--write-baseline", str(baseline)])
        # Shift the offending line down; the finding identity is
        # line-number-free, so it stays suppressed.
        (tree / "bad.py").write_text("# a comment\n\n" + BAD_SOURCE)
        assert lint_main([str(tree), "--baseline", str(baseline)]) == 0

    def test_finding_key_ignores_line(self):
        a = Finding("rule", "p.py", 3, "msg")
        b = Finding("rule", "p.py", 99, "msg")
        assert finding_key(a) == finding_key(b)

    def test_roundtrip_helpers(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(str(path), [Finding("r", "p.py", 1, "m")])
        assert load_baseline(str(path)) == {"r|p.py|m"}

    def test_unreadable_baseline_is_usage_error(self, tree, capsys):
        assert lint_main([str(tree), "--baseline", str(tree / "nope.json")]) == 2

    def test_wrong_version_is_usage_error(self, tree):
        bad = tree / "bad-baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(LintError):
            load_baseline(str(bad))


class TestChanged:
    @pytest.fixture
    def repo(self, tmp_path):
        def git(*args):
            subprocess.run(
                ["git", *args], cwd=tmp_path, check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        (tmp_path / "clean.py").write_text("x = 1\n")
        git("add", "clean.py")
        git("commit", "-qm", "init")
        return tmp_path

    def test_changed_sees_modified_and_untracked_only(self, repo, monkeypatch):
        monkeypatch.chdir(repo)
        (repo / "clean.py").write_text("x = 2\n")
        (repo / "new.py").write_text("y = 3\n")
        assert sorted(changed_files(["."])) == ["clean.py", "new.py"]
        # Scope filter: a subdirectory root excludes top-level files.
        (repo / "sub").mkdir()
        (repo / "sub" / "inner.py").write_text("z = 4\n")
        assert changed_files(["sub"]) == ["sub/inner.py"]

    def test_changed_lints_only_the_diff(self, repo, monkeypatch, capsys):
        monkeypatch.chdir(repo)
        # An (uncommitted) offender next to a committed clean file.
        (repo / "new_bad.py").write_text(BAD_SOURCE)
        assert lint_main([".", "--changed"]) == 1
        out = capsys.readouterr().out
        assert "new_bad.py" in out and "clean.py" not in out

    def test_changed_with_clean_diff_exits_zero(self, repo, monkeypatch, capsys):
        monkeypatch.chdir(repo)
        assert lint_main([".", "--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_changed_skips_deleted_files(self, repo, monkeypatch):
        monkeypatch.chdir(repo)
        (repo / "clean.py").unlink()
        # The deleted file is in the diff but must not be linted; a lone
        # deletion leaves nothing to check at all.
        assert changed_files(["."]) == []

    def test_changed_follows_renames(self, repo, monkeypatch):
        monkeypatch.chdir(repo)

        def git(*args):
            subprocess.run(
                ["git", *args], cwd=repo, check=True, capture_output=True
            )

        git("mv", "clean.py", "renamed.py")
        # Only the new name is linted — the old half of the rename has
        # nothing on disk and must not surface as a phantom candidate.
        assert changed_files(["."]) == ["renamed.py"]

    def test_changed_works_from_a_subdirectory(self, repo, monkeypatch):
        # Names from git are repo-root-relative; run from a subdirectory
        # to prove they are anchored at the root, not the cwd.
        sub = repo / "pkg"
        sub.mkdir()
        (sub / "mod.py").write_text("a = 1\n")
        (repo / "clean.py").unlink()  # deletion mixed into the same diff
        monkeypatch.chdir(sub)
        assert changed_files(["."]) == ["mod.py"]
        # A root naming the repo top level still sees the new file.
        assert changed_files([".."]) == ["mod.py"]
