"""Per-rule coverage: a snippet each rule must flag, and one it must pass."""

from __future__ import annotations

from repro.devtools import module_from_source, run_rules
from repro.devtools.rules import (
    BuiltinHashRule,
    GlobalRandomRule,
    LayeringRule,
    ProtocolCompletenessRule,
    SimPurityRule,
    UnseededRandomRule,
    WallClockRule,
)


def findings_for(rule, source, name="snippet"):
    module = module_from_source(source, name=name, path=f"{name}.py")
    return run_rules([module], [rule])


class TestUnseededRandom:
    def test_flags_unseeded_random(self):
        found = findings_for(UnseededRandomRule(), "import random\nr = random.Random()\n")
        assert [f.line for f in found] == [2]

    def test_flags_system_random(self):
        found = findings_for(
            UnseededRandomRule(), "import random\nr = random.SystemRandom()\n"
        )
        assert len(found) == 1

    def test_flags_unseeded_numpy_rng(self):
        found = findings_for(
            UnseededRandomRule(), "import numpy as np\nr = np.random.default_rng()\n"
        )
        assert len(found) == 1

    def test_passes_seeded_constructions(self):
        source = (
            "import random\nimport numpy as np\n"
            "a = random.Random(42)\n"
            "b = np.random.default_rng(7)\n"
        )
        assert findings_for(UnseededRandomRule(), source) == []

    def test_suppression_comment(self):
        source = "import random\nr = random.Random()  # lint: ignore[unseeded-random]\n"
        assert findings_for(UnseededRandomRule(), source) == []


class TestGlobalRandom:
    def test_flags_module_level_random_calls(self):
        source = "import random\nx = random.random()\nrandom.shuffle([1, 2])\n"
        found = findings_for(GlobalRandomRule(), source)
        assert [f.line for f in found] == [2, 3]

    def test_flags_legacy_numpy_global_api(self):
        found = findings_for(
            GlobalRandomRule(), "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert len(found) == 1

    def test_passes_instance_methods(self):
        source = (
            "import random\nrng = random.Random(1)\n"
            "x = rng.random()\nrng.shuffle([1, 2])\n"
        )
        assert findings_for(GlobalRandomRule(), source) == []

    def test_passes_seeded_numpy_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng(1)\nx = rng.random()\n"
        assert findings_for(GlobalRandomRule(), source) == []


class TestWallClock:
    def test_flags_time_time_anywhere(self):
        found = findings_for(
            WallClockRule(), "import time\nt = time.time()\n", name="repro.experiments.x"
        )
        assert len(found) == 1

    def test_flags_datetime_now_via_from_import(self):
        source = "from datetime import datetime\nt = datetime.now()\n"
        assert len(findings_for(WallClockRule(), source, name="repro.analysis.x")) == 1

    def test_flags_os_urandom_and_secrets(self):
        source = "import os\nimport secrets\na = os.urandom(8)\nb = secrets.token_bytes(8)\n"
        assert len(findings_for(WallClockRule(), source, name="repro.cli")) == 2

    def test_perf_counter_banned_in_sim_layers(self):
        source = "import time\nt = time.perf_counter()\n"
        found = findings_for(WallClockRule(), source, name="repro.core.network")
        assert len(found) == 1
        assert "benchmark timing only" in found[0].message

    def test_perf_counter_allowed_above_simulation(self):
        source = "import time\nt = time.perf_counter()\n"
        assert findings_for(WallClockRule(), source, name="repro.experiments.churn") == []


class TestBuiltinHash:
    def test_flags_builtin_hash(self):
        found = findings_for(BuiltinHashRule(), "seed = 1 ^ hash((2, 3))\n")
        assert len(found) == 1
        assert "derive_seed" in found[0].message

    def test_passes_locally_defined_hash(self):
        source = "def hash(x):\n    return 0\n\nseed = hash(3)\n"
        assert findings_for(BuiltinHashRule(), source) == []

    def test_passes_hashlib_and_methods(self):
        source = (
            "import hashlib\n"
            "d = hashlib.sha256(b'x').digest()\n"
            "class C:\n"
            "    def __hash__(self):\n"
            "        return 0\n"
        )
        assert findings_for(BuiltinHashRule(), source) == []


class TestSimPurity:
    def test_flags_threading_import_in_core(self):
        found = findings_for(
            SimPurityRule(), "import threading\n", name="repro.core.network"
        )
        assert len(found) == 1

    def test_flags_socket_from_import_in_pastry(self):
        found = findings_for(
            SimPurityRule(), "from socket import socket\n", name="repro.pastry.node"
        )
        assert len(found) == 1

    def test_flags_open_and_print_in_netsim(self):
        source = "data = open('f').read()\nprint(data)\n"
        found = findings_for(SimPurityRule(), source, name="repro.netsim.topology")
        assert [f.line for f in found] == [1, 2]

    def test_passes_same_constructs_outside_sim_layers(self):
        source = "import threading\ndata = open('f').read()\nprint(data)\n"
        assert findings_for(SimPurityRule(), source, name="repro.workloads.nlanr") == []

    def test_passes_pure_core_module(self):
        source = "import heapq\nimport random\n\nrng = random.Random(1)\n"
        assert findings_for(SimPurityRule(), source, name="repro.core.cache") == []


class TestLayering:
    def test_flags_pastry_importing_core(self):
        found = findings_for(
            LayeringRule(),
            "from ..core import PastNetwork\n",
            name="repro.pastry.node",
        )
        assert len(found) == 1
        assert "repro.pastry must not import repro.core" in found[0].message

    def test_flags_netsim_importing_experiments_absolute(self):
        found = findings_for(
            LayeringRule(),
            "from repro.experiments import harness\n",
            name="repro.netsim.eventsim",
        )
        assert len(found) == 1

    def test_flags_security_importing_anything_above(self):
        found = findings_for(
            LayeringRule(), "from ..pastry import idspace\n", name="repro.security.keys"
        )
        assert len(found) == 1

    def test_flags_from_dot_dot_import_subpackage(self):
        found = findings_for(
            LayeringRule(), "from .. import core\n", name="repro.netsim.stats"
        )
        assert len(found) == 1

    def test_passes_allowed_edges(self):
        assert findings_for(
            LayeringRule(), "from ..netsim import MessageStats\n", name="repro.pastry.network"
        ) == []
        assert findings_for(
            LayeringRule(), "from ..pastry import idspace\n", name="repro.core.invariants"
        ) == []
        assert findings_for(
            LayeringRule(), "from ..core import audit\n", name="repro.experiments.churn"
        ) == []

    def test_passes_intra_package_and_stdlib_imports(self):
        source = "import heapq\nfrom . import idspace\nfrom .leafset import LeafSet\n"
        assert findings_for(LayeringRule(), source, name="repro.pastry.node") == []


class TestProtocolCompleteness:
    MESSAGES = (
        "class InsertRequest:\n    pass\n\n"
        "class LookupRequest:\n    pass\n\n"
        "class NotARequestHelper:\n    pass\n"
    )

    def _project(self, node_src, network_src):
        modules = [
            module_from_source(self.MESSAGES, name="repro.core.messages", path="messages.py"),
            module_from_source(node_src, name="repro.core.node", path="node.py"),
            module_from_source(network_src, name="repro.core.network", path="network.py"),
        ]
        return run_rules(modules, [ProtocolCompletenessRule()])

    def test_passes_when_all_requests_handled_and_constructed(self):
        node = "def deliver(m):\n    return isinstance(m, (InsertRequest, LookupRequest))\n"
        network = "def insert():\n    return InsertRequest()\n\ndef lookup():\n    return LookupRequest()\n"
        assert self._project(node, network) == []

    def test_flags_request_without_handler(self):
        node = "def deliver(m):\n    return isinstance(m, InsertRequest)\n"
        network = "def insert():\n    return InsertRequest()\n\ndef lookup():\n    return LookupRequest()\n"
        found = self._project(node, network)
        assert len(found) == 1
        assert "LookupRequest" in found[0].message
        assert "handler" in found[0].message

    def test_flags_request_never_constructed(self):
        node = "def deliver(m):\n    return isinstance(m, (InsertRequest, LookupRequest))\n"
        network = "def insert():\n    return InsertRequest()\n"
        found = self._project(node, network)
        assert len(found) == 1
        assert "LookupRequest" in found[0].message
        assert "constructed" in found[0].message

    def test_inactive_without_messages_module(self):
        module = module_from_source("x = 1\n", name="repro.core.node", path="node.py")
        assert run_rules([module], [ProtocolCompletenessRule()]) == []
