"""Tests for the concurrency-readiness analyzer (`repro-conc`).

Planted fixtures: a check-then-act-across-RPC mutant the atomicity
analysis MUST flag, its confirm-reread rewrite that must pass clean
(the shape every concurrency fix in this repo follows), blocking and
seam-conformance mutants, plus the real-tree gates — the committed
baseline covers every finding, the engine-pure modules are never
``blocked``, and the repaired production paths stay clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import collect_modules, module_from_source, run_rules
from repro.devtools.conc import (
    CONC_RULE_NAMES,
    ENGINE_PURE_MODULES,
    conc_rules,
    get_conc_analysis,
    readiness,
)
from repro.devtools.conc.analysis import ConcAnalysis
from repro.devtools.conc.cli import main as conc_main
from repro.devtools.lint import finding_key, load_baseline
from repro.devtools.rules import get_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "benchmarks" / "conc_baseline.json"


def analyze(source, name="repro.core.fixture"):
    module = module_from_source(source, name=name, path="fixture.py")
    return run_rules([module], conc_rules())


def rules_of(findings):
    return [f.rule for f in findings]


# The canonical mutant: the claim is checked before the RPC and acted on
# after it, so a concurrent claim that lands while the send is in flight
# is silently overwritten.
PLANTED_MUTANT = """\
class Directory:
    def __init__(self, transport):
        self.transport = transport
        self.entries = {}

    def claim(self, node_id, key):
        owner = self.entries.get(key)
        if owner is not None:
            return owner
        delivered, _ = self.transport.send(node_id, 0, None)
        if not delivered:
            return None
        self.entries[key] = node_id
        return node_id
"""

# The repair this repo's production fixes follow: re-read the structure
# in test position after the suspension, before writing.
PLANTED_FIXED = """\
class Directory:
    def __init__(self, transport):
        self.transport = transport
        self.entries = {}

    def claim(self, node_id, key):
        owner = self.entries.get(key)
        if owner is not None:
            return owner
        delivered, _ = self.transport.send(node_id, 0, None)
        if not delivered:
            return None
        if key in self.entries:
            return self.entries[key]
        self.entries[key] = node_id
        return node_id
"""


class TestAtomicity:
    def test_check_then_act_mutant_is_flagged(self):
        findings = analyze(PLANTED_MUTANT)
        assert "conc-atomicity" in rules_of(findings)
        (finding,) = [f for f in findings if f.rule == "conc-atomicity"]
        assert "self.entries" in finding.message
        assert "Directory.claim" in finding.message

    def test_confirm_reread_rewrite_is_clean(self):
        assert analyze(PLANTED_FIXED) == []

    def test_binding_the_stale_value_does_not_confirm(self):
        # Branching on a local bound BEFORE the suspension proves nothing
        # about the post-suspension world: still flagged.
        source = PLANTED_MUTANT.replace(
            "        if not delivered:\n",
            "        if not delivered or owner is not None:\n",
        )
        findings = analyze(source)
        assert "conc-atomicity" in rules_of(findings)

    def test_counter_increments_are_exempt(self):
        source = """\
class Meter:
    def __init__(self, transport):
        self.transport = transport
        self.sent = 0

    def ping(self):
        if self.sent > 100:
            return False
        self.transport.send(0, 1, None)
        self.sent += 1
        return True
"""
        assert analyze(source) == []

    def test_message_contains_no_line_numbers(self):
        (finding,) = analyze(PLANTED_MUTANT)
        assert not any(ch.isdigit() for ch in finding.message)

    def test_loop_wraparound_hazard_is_caught(self):
        # The read happens at the TOP of the next iteration, after the
        # previous iteration's suspension: only visible with the loop
        # body scanned twice.
        source = """\
class Batcher:
    def __init__(self, transport):
        self.transport = transport
        self.pending = {}

    def flush(self, items):
        for item in items:
            if item in self.pending:
                continue
            self.transport.send(0, item, None)
            self.pending[item] = True
"""
        findings = analyze(source)
        assert "conc-atomicity" in rules_of(findings)


class TestBlocking:
    def test_wall_clock_sleep_is_flagged(self):
        source = "import time\n\ndef wait():\n    time.sleep(0.5)\n"
        findings = analyze(source)
        assert rules_of(findings) == ["conc-blocking"]
        assert "time.sleep" in findings[0].message

    def test_busy_wait_without_exit_is_flagged(self):
        source = "def spin(flag):\n    while True:\n        flag.check()\n"
        findings = analyze(source)
        assert rules_of(findings) == ["conc-blocking"]
        assert "busy-wait" in findings[0].message

    def test_loop_with_break_is_clean(self):
        source = (
            "def drain(queue):\n"
            "    while True:\n"
            "        if not queue:\n"
            "            break\n"
            "        queue.pop()\n"
        )
        assert analyze(source) == []

    def test_file_io_flagged_only_in_engine_packages(self):
        source = "def load(path):\n    return open(path).read()\n"
        engine = analyze(source, name="repro.core.fixture")
        assert rules_of(engine) == ["conc-blocking"]
        harness = analyze(source, name="repro.workloads.fixture")
        assert harness == []


class TestReentrancy:
    def test_mutating_suspending_cycle_is_flagged(self):
        source = """\
class Router:
    def route(self, transport, msg):
        self.pending.append(msg)
        transport.send(0, 1, None)
        self.forward(transport, msg)

    def forward(self, transport, msg):
        if msg:
            self.route(transport, msg - 1)
"""
        findings = analyze(source)
        assert "conc-reentrancy" in rules_of(findings)
        (finding,) = [f for f in findings if f.rule == "conc-reentrancy"]
        assert "Router.route" in finding.message

    def test_non_suspending_recursion_is_not_flagged(self):
        # Run-to-completion recursion cannot interleave with itself.
        source = """\
class Walker:
    def visit(self, node):
        self.seen.append(node)
        self.descend(node)

    def descend(self, node):
        for child in node.children:
            self.visit(child)
"""
        findings = analyze(source)
        assert "conc-reentrancy" not in rules_of(findings)


class TestSeam:
    ENGINE = "repro.pastry.keepalive"

    def test_runtime_simulator_import_is_flagged(self):
        source = "from ..netsim.eventsim import EventSimulator\n"
        findings = analyze(source, name=self.ENGINE)
        assert rules_of(findings) == ["conc-seam"]

    def test_type_checking_import_is_fine(self):
        source = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from ..netsim.eventsim import PeriodicTimer\n"
        )
        assert analyze(source, name=self.ENGINE) == []

    def test_raw_sim_scheduling_is_flagged(self):
        source = (
            "class M:\n"
            "    def watch(self):\n"
            "        self.sim.schedule(1.0, self.fire)\n"
        )
        findings = analyze(source, name=self.ENGINE)
        assert rules_of(findings) == ["conc-seam"]
        assert "schedule" in findings[0].message

    def test_transport_scheduling_is_fine(self):
        source = (
            "class M:\n"
            "    def watch(self):\n"
            "        self.transport.schedule(1.0, self.fire)\n"
            "        self.transport.every(1.0, self.fire)\n"
            "        t = self.transport.now()\n"
        )
        assert analyze(source, name=self.ENGINE) == []

    def test_raw_sim_clock_read_is_flagged(self):
        source = (
            "class M:\n"
            "    def stamp(self):\n"
            "        return self.sim.now\n"
        )
        findings = analyze(source, name=self.ENGINE)
        assert rules_of(findings) == ["conc-seam"]
        assert ".sim.now" in findings[0].message

    def test_sub_seam_primitives_are_flagged(self):
        source = (
            "class M:\n"
            "    def talk(self, net):\n"
            "        net.stats.record_rpc()\n"
        )
        findings = analyze(source, name=self.ENGINE)
        assert rules_of(findings) == ["conc-seam"]

    def test_non_engine_modules_are_outside_the_seam(self):
        # The emulator itself lives below the seam and may do all of this.
        source = (
            "class M:\n"
            "    def watch(self):\n"
            "        self.sim.schedule(1.0, self.fire)\n"
        )
        assert analyze(source, name="repro.netsim.fixture") == []


@pytest.fixture(scope="module")
def real_tree(request):
    os.chdir(REPO_ROOT)
    modules = collect_modules(["src"])
    findings = run_rules(modules, conc_rules())
    analysis = get_conc_analysis(modules)
    return modules, findings, analysis


class TestRealTree:
    def test_every_finding_is_baselined_and_no_suppressions(self, real_tree):
        modules, findings, _ = real_tree
        known = load_baseline(str(BASELINE))
        new = [f for f in findings if finding_key(f) not in known]
        rendered = "\n".join(f.render() for f in new)
        assert not new, f"non-baselined conc findings:\n{rendered}"
        for module in modules:
            for names in module.suppressions.values():
                if names is None:
                    continue
                assert not any(n.startswith("conc-") for n in names), (
                    f"conc suppression comment in {module.path}; use the "
                    "baseline, not inline suppressions"
                )

    def test_engine_pure_modules_are_never_blocked(self, real_tree):
        modules, findings, analysis = real_tree
        table = readiness(modules, findings, analysis)
        assert sorted(table) == sorted(ENGINE_PURE_MODULES)
        for name, entry in table.items():
            assert entry["verdict"] in ("ready", "conditionally-ready"), (
                f"{name} is {entry['verdict']}: {entry['findings']}"
            )

    def test_seam_conformance_is_unconditionally_clean(self, real_tree):
        _modules, findings, _ = real_tree
        seam = [f for f in findings if f.rule == "conc-seam"]
        rendered = "\n".join(f.render() for f in seam)
        assert not seam, f"transport-seam violations:\n{rendered}"

    def test_repaired_production_paths_are_clean(self, real_tree):
        """The three shipped concurrency fixes must analyze clean.

        * ``KeepAliveMonitor._probe_round`` re-reads the clock per probe
          and re-checks ``last_heard``/``_timers`` before every write;
        * ``PastNode.read_repair`` confirm-rereads its own replica after
          the donor search;
        * ``AntiEntropyScrubber._exchange_digests`` re-checks
          ``references_file`` before requesting repair.
        """
        _modules, _findings, analysis = real_tree
        assert not [h for h in analysis.hazards if "KeepAliveMonitor" in h.qualname]
        assert not [h for h in analysis.hazards if "read_repair" in h.qualname]
        exchange = [
            h for h in analysis.hazards
            if h.qualname.endswith("_exchange_digests")
        ]
        assert not [h for h in exchange if h.key.split(".")[0] == "node"]

    def test_keepalive_module_is_fully_ready(self, real_tree):
        modules, findings, analysis = real_tree
        table = readiness(modules, findings, analysis)
        assert table["repro.pastry.keepalive"]["verdict"] == "ready"

    def test_footprints_cover_monitor_state(self, real_tree):
        _modules, _findings, analysis = real_tree
        qual = "repro.pastry.keepalive.KeepAliveMonitor._probe_round"
        footprint = analysis.footprint(qual)
        assert "last_heard" in footprint
        assert "detected" in footprint


class TestDeterminism:
    def test_report_is_byte_identical_across_hash_seeds(self, tmp_path):
        outputs = []
        for seed in ("0", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-m", "repro.devtools.conc", "--format",
                 "json", "src/repro/pastry", "src/repro/core"],
                cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            )
            assert proc.returncode == 1, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

    def test_hazard_order_is_stable(self, real_tree):
        _modules, _findings, analysis = real_tree
        keys = [(h.path, h.line, h.key, h.qualname) for h in analysis.hazards]
        assert keys == sorted(keys)


class TestCli:
    def test_write_then_gate_round_trip(self, tmp_path, capsys):
        os.chdir(REPO_ROOT)
        baseline = tmp_path / "conc.json"
        assert conc_main(["--write-baseline", str(baseline), "src"]) == 0
        capsys.readouterr()
        assert conc_main(["--baseline", str(baseline), "src"]) == 0
        out = capsys.readouterr().out
        assert "0 new findings" in out
        assert "concurrency readiness" in out

    def test_select_and_exit_codes(self, capsys):
        os.chdir(REPO_ROOT)
        assert conc_main(["--select", "conc-seam", "--no-report", "src"]) == 0
        capsys.readouterr()
        assert conc_main(["--select", "no-such-rule", "src"]) == 2

    def test_list_rules(self, capsys):
        assert conc_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in CONC_RULE_NAMES:
            assert name in out

    def test_json_report_carries_readiness(self, capsys):
        os.chdir(REPO_ROOT)
        code = conc_main(
            ["--format", "json", "--baseline", str(BASELINE), "src"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["baselined"] > 0
        assert set(payload["readiness"]) == set(ENGINE_PURE_MODULES)


class TestRegistry:
    def test_conc_rules_resolvable_by_name_but_not_default(self):
        from repro.devtools.rules import all_rules

        default_names = {rule.name for rule in all_rules()}
        assert not any(name in default_names for name in CONC_RULE_NAMES)
        selected = get_rules(list(CONC_RULE_NAMES))
        assert {rule.name for rule in selected} == set(CONC_RULE_NAMES)

    def test_analysis_cache_is_identity_keyed(self):
        module = module_from_source(PLANTED_MUTANT, name="repro.core.fx")
        first = get_conc_analysis([module])
        assert get_conc_analysis([module]) is first
        other = module_from_source(PLANTED_MUTANT, name="repro.core.fx")
        assert get_conc_analysis([other]) is not first

    def test_direct_analysis_reports_suspension_closure(self):
        module = module_from_source(PLANTED_MUTANT, name="repro.core.fx")
        analysis = ConcAnalysis([module])
        assert analysis.function_suspends("repro.core.fx.Directory.claim")
        assert not analysis.function_suspends("repro.core.fx.Directory.__init__")
