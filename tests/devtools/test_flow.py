"""The interprocedural flow analysis: call graph, effects, and rules.

Every rule is exercised both ways — a snippet it must flag and the
corresponding clean code it must pass — plus a cross-module case that
only an *interprocedural* analysis can catch (the effect lives two
calls away from the loop, in another module).
"""

from __future__ import annotations

import pytest

from repro.devtools.framework import module_from_source, run_rules
from repro.devtools.flow import (
    EFFECT_MUTATE,
    EFFECT_RNG,
    EFFECT_SCHEDULE,
    FlowAnalysis,
    OrderingHazardRule,
    RngDisciplineRule,
    SharedMutableStateRule,
    project_aliases,
)


def mod(source: str, name: str = "repro.core.snippet"):
    return module_from_source(source, name=name, path=f"<{name}>")


def findings(rule, *modules):
    return run_rules(list(modules), [rule])


# ------------------------------------------------------------- call graph


class TestCallGraph:
    def test_relative_import_aliases_resolve_against_package(self):
        m = mod(
            "from . import idspace\n"
            "from .node import PastryNode\n"
            "from ..netsim import MessageStats\n",
            name="repro.pastry.network",
        )
        aliases = project_aliases(m)
        assert aliases["idspace"] == "repro.pastry.idspace"
        assert aliases["PastryNode"] == "repro.pastry.node.PastryNode"
        assert aliases["MessageStats"] == "repro.netsim.MessageStats"

    def test_qualified_project_call_resolves_exactly(self):
        helper = mod(
            "def routing_key(fid):\n    return fid\n",
            name="repro.pastry.idspace",
        )
        caller = mod(
            "from . import idspace\n"
            "def go(fid):\n    return idspace.routing_key(fid)\n",
            name="repro.pastry.node",
        )
        analysis = FlowAnalysis([helper, caller])
        facts = analysis.facts["repro.pastry.node.go"]
        assert ("repro.pastry.idspace.routing_key", 3) in facts.calls

    def test_method_call_resolves_by_name_across_classes(self):
        m = mod(
            "class LeafSet:\n"
            "    def consider(self, x):\n"
            "        self._members = set()\n"
            "def drive(node):\n"
            "    node.leafset.consider(1)\n",
            name="repro.pastry.leafset",
        )
        analysis = FlowAnalysis([m])
        facts = analysis.facts["repro.pastry.leafset.drive"]
        assert any(q.endswith("LeafSet.consider") for q, _ in facts.calls)

    def test_effects_propagate_transitively(self):
        m = mod(
            "class Net:\n"
            "    def deep(self):\n"
            "        self.sim.schedule(1.0, self.deep)\n"
            "    def middle(self):\n"
            "        self.deep()\n"
            "    def top(self):\n"
            "        self.middle()\n",
            name="repro.core.net",
        )
        analysis = FlowAnalysis([m])
        assert EFFECT_SCHEDULE in analysis.effects["repro.core.net.Net.top"]
        assert EFFECT_SCHEDULE in analysis.effects["repro.core.net.Net.middle"]

    def test_mutating_a_fresh_local_is_not_an_effect(self):
        m = mod(
            "def collect(items):\n"
            "    out = []\n"
            "    for item in items:\n"
            "        out.append(item)\n"
            "    return out\n",
            name="repro.core.util",
        )
        analysis = FlowAnalysis([m])
        assert EFFECT_MUTATE not in analysis.effects["repro.core.util.collect"]

    def test_mutating_self_state_is_an_effect(self):
        m = mod(
            "class Store:\n"
            "    def drop(self, fid):\n"
            "        self._entries.pop(fid, None)\n",
            name="repro.core.store",
        )
        analysis = FlowAnalysis([m])
        assert EFFECT_MUTATE in analysis.effects["repro.core.store.Store.drop"]

    def test_init_self_assignment_is_not_mutation(self):
        m = mod(
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.x = {}\n"
            "        self.x['a'] = 1\n",
            name="repro.core.n",
        )
        analysis = FlowAnalysis([m])
        assert EFFECT_MUTATE not in analysis.effects["repro.core.n.Node.__init__"]


# ------------------------------------------------- flow-ordering-hazard


HAZARD_MUTATE = """
class Net:
    def __init__(self):
        self.seen = set()
    def mark(self, x):
        self.seen.add(x)
    def sweep(self, items):
        for item in {i for i in items}:
            self.mark(item)
"""

CLEAN_SORTED = """
class Net:
    def __init__(self):
        self.seen = set()
    def mark(self, x):
        self.seen.add(x)
    def sweep(self, items):
        for item in sorted({i for i in items}):
            self.mark(item)
"""


class TestOrderingHazard:
    def test_flags_set_iteration_driving_mutation(self):
        found = findings(OrderingHazardRule(), mod(HAZARD_MUTATE))
        assert len(found) == 1
        assert found[0].rule == "flow-ordering-hazard"
        assert "mutates shared state" in found[0].message
        assert found[0].line == 8

    def test_sorted_wrapper_passes(self):
        assert findings(OrderingHazardRule(), mod(CLEAN_SORTED)) == []

    def test_cross_module_schedule_effect_is_caught(self):
        provider = mod(
            "def peers():\n    return set()\n",
            name="repro.pastry.util",
        )
        consumer = mod(
            "from repro.pastry.util import peers\n"
            "def kick(sim):\n"
            "    for p in peers():\n"
            "        sim.schedule(1.0, p)\n",
            name="repro.core.driver",
        )
        found = findings(OrderingHazardRule(), provider, consumer)
        assert len(found) == 1
        assert "schedules events" in found[0].message
        assert "peers()" in found[0].message

    def test_set_typed_attribute_iteration_flagged(self):
        m = mod(
            "class Replica:\n"
            "    def __init__(self):\n"
            "        self.referrers = set()\n"
            "class Node:\n"
            "    def drop_all(self, replica):\n"
            "        for ref in replica.referrers:\n"
            "            self.table.pop(ref, None)\n",
            name="repro.core.rep",
        )
        found = findings(OrderingHazardRule(), m)
        assert len(found) == 1
        assert "referrers" in found[0].message

    def test_effect_free_loop_body_passes(self):
        m = mod(
            "def total(ids):\n"
            "    acc = 0\n"
            "    for i in set(ids):\n"
            "        acc = acc + i\n"
            "    return acc\n",
            name="repro.core.sum",
        )
        assert findings(OrderingHazardRule(), m) == []

    def test_out_of_scope_module_passes(self):
        assert findings(
            OrderingHazardRule(), mod(HAZARD_MUTATE, name="repro.experiments.snip")
        ) == []

    def test_suppression_comment_silences_finding(self):
        suppressed = HAZARD_MUTATE.replace(
            "for item in {i for i in items}:",
            "for item in {i for i in items}:  # lint: ignore[flow-ordering-hazard]",
        )
        assert findings(OrderingHazardRule(), mod(suppressed)) == []


# ------------------------------------------------- flow-rng-discipline


class TestRngDiscipline:
    def test_flags_rng_constructed_in_entry_point(self):
        m = mod(
            "import random\n"
            "def jitter():\n"
            "    rng = random.Random(7)\n"
            "    return rng.random()\n",
            name="repro.netsim.j",
        )
        found = findings(RngDisciplineRule(), m)
        assert len(found) == 1
        assert "random.Random" in found[0].message
        assert found[0].line == 3

    def test_flags_construction_in_private_helper_reachable_from_entry(self):
        m = mod(
            "import random\n"
            "def _mk():\n"
            "    return random.Random(3)\n"
            "def roll():\n"
            "    return _mk().random()\n",
            name="repro.netsim.h",
        )
        found = findings(RngDisciplineRule(), m)
        assert len(found) == 1
        assert "_mk" in found[0].message

    def test_construction_in_init_passes(self):
        m = mod(
            "import random\n"
            "class Net:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = random.Random(seed)\n",
            name="repro.core.net",
        )
        assert findings(RngDisciplineRule(), m) == []

    def test_rng_parameter_passes(self):
        m = mod(
            "def jitter(rng):\n    return rng.random()\n",
            name="repro.netsim.j",
        )
        # Drawing from a received rng in a single ordered context is the
        # sanctioned pattern.
        assert findings(RngDisciplineRule(), m) == []

    def test_flags_shared_rng_drawn_from_two_unordered_contexts(self):
        m = mod(
            "import random\n"
            "class Sim:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = random.Random(seed)\n"
            "    def _draw(self):\n"
            "        return self.rng.random()\n"
            "    def a(self, xs):\n"
            "        out = []\n"
            "        for x in set(xs):\n"
            "            out.append(self._draw())\n"
            "        return out\n"
            "    def b(self, ys):\n"
            "        out = []\n"
            "        for y in frozenset(ys):\n"
            "            out.append(self._draw())\n"
            "        return out\n",
            name="repro.core.sim",
        )
        found = [
            f for f in findings(RngDisciplineRule(), m)
            if "unordered iteration contexts" in f.message
        ]
        assert len(found) == 1
        assert "_draw" in found[0].message
        assert "2 unordered iteration contexts" in found[0].message

    def test_sorted_contexts_do_not_count(self):
        m = mod(
            "import random\n"
            "class Sim:\n"
            "    def __init__(self, seed):\n"
            "        self.rng = random.Random(seed)\n"
            "    def _draw(self):\n"
            "        return self.rng.random()\n"
            "    def a(self, xs):\n"
            "        return [self._draw() for _ in sorted(set(xs))]\n"
            "    def b(self, ys):\n"
            "        return [self._draw() for _ in sorted(set(ys))]\n",
            name="repro.core.sim",
        )
        assert findings(RngDisciplineRule(), m) == []


# ------------------------------------------------- flow-shared-state


class TestSharedMutableState:
    def test_flags_class_level_mutable_attribute(self):
        m = mod(
            "class Node:\n"
            "    cache = {}\n"
            "    def __init__(self):\n"
            "        pass\n",
            name="repro.core.n",
        )
        found = findings(SharedMutableStateRule(), m)
        assert len(found) == 1
        assert "Node.cache" in found[0].message
        assert found[0].line == 2

    def test_flags_mutable_default_argument(self):
        m = mod(
            "def handle(event, acc=[]):\n    acc.append(event)\n",
            name="repro.netsim.h",
        )
        found = findings(SharedMutableStateRule(), m)
        assert len(found) == 1
        assert "acc" in found[0].message

    def test_dataclass_field_default_factory_passes(self):
        m = mod(
            "from dataclasses import dataclass, field\n"
            "from typing import Set\n"
            "@dataclass\n"
            "class Replica:\n"
            "    referrers: Set[int] = field(default_factory=set)\n",
            name="repro.core.r",
        )
        assert findings(SharedMutableStateRule(), m) == []

    def test_none_default_passes(self):
        m = mod(
            "def handle(event, acc=None):\n"
            "    acc = acc if acc is not None else []\n"
            "    acc.append(event)\n",
            name="repro.netsim.h",
        )
        assert findings(SharedMutableStateRule(), m) == []

    def test_out_of_scope_module_passes(self):
        m = mod("class C:\n    shared = []\n", name="repro.workloads.w")
        assert findings(SharedMutableStateRule(), m) == []
