"""The Transport seam must not perturb the schedule explorer.

The digests below were produced by replaying these exact decision
strings on the tree *before* the Transport protocol was threaded through
the node logic (PR 7's seam refactor).  They are hard-coded, not
recomputed: the point is that the mechanical seam introduction changed
no event ordering, no RNG draw order, and no trace content — a
counterexample minimised pre-seam still replays byte-identically
post-seam.  If a future change to the seam shifts any of these, either
it reordered events (a bug) or it knowingly broke decision-string
compatibility and must bump DECISION_FORMAT_VERSION.
"""

from __future__ import annotations

import pytest

from repro.devtools.explore import SCENARIOS, Explorer, parse_decisions

#: (scenario, decision string) -> pre-seam trace digest.
PRE_SEAM_DIGESTS = {
    ("churn", "v1:7:"):
        "caf43c7fdff90e526cf323389a298afe10109d8779a94b937291c67e283330c2",
    ("churn", "v1:7:1"):
        "664a9c5ae5c5562da9aea00a39d048c25ffcec38bc8b4085fe5d9cccb18cc329",
    ("churn", "v1:7:1.2"):
        "bfd4cbc27a43d2bcd183e2a874e796e97bd26405635e9199d3dd633d82cc21dd",
    ("join", "v1:7:"):
        "2a76d908e7afffd507e2096560c0464435bb70302d06a318006433bc945ef08b",
    ("join", "v1:7:1"):
        "93145001dc24d4577a268d65983dedbe18520cc7f1d7d3f1639bce6ec1c89830",
    ("join", "v1:7:1.2"):
        "9b9a60f01483bdbff8540ae3da688bb83260f9d7366729d10672cff670ef5b2f",
}


class TestSeamPreservesDecisionStrings:
    @pytest.mark.parametrize(
        "scenario,decisions",
        sorted(PRE_SEAM_DIGESTS),
        ids=[f"{s}-{d}" for s, d in sorted(PRE_SEAM_DIGESTS)],
    )
    def test_pre_seam_decision_string_replays_byte_identical(
        self, scenario, decisions
    ):
        seed, plan = parse_decisions(decisions)
        run = Explorer(SCENARIOS[scenario], seed=seed).execute(list(plan))
        assert run.trace.digest() == PRE_SEAM_DIGESTS[(scenario, decisions)]

    def test_fifo_and_deviated_digests_differ(self):
        """Sanity: the pinned digests really capture different schedules
        (the seam test is vacuous if every plan collapses to FIFO)."""
        assert len({
            digest
            for (scen, _), digest in PRE_SEAM_DIGESTS.items()
            if scen == "churn"
        }) == 3
        assert len({
            digest
            for (scen, _), digest in PRE_SEAM_DIGESTS.items()
            if scen == "join"
        }) == 3
