"""Tests for the bounded schedule explorer (repro.devtools.explore)."""

import random
import types

import pytest

from repro.devtools.explore import (
    SCENARIOS,
    Counterexample,
    Explorer,
    IndependenceOracle,
    PlanPolicy,
    check_quiescence,
    format_decisions,
    minimize_plan,
    parse_decisions,
)
from repro.devtools.explore.__main__ import main as explore_main
from repro.devtools.explore.scenarios import ScenarioRun, scenario_join
from repro.devtools.flow.analysis import (
    EFFECT_MUTATE,
    EFFECT_RNG,
    EFFECT_SCHEDULE,
)
from repro.netsim.eventsim import EventSimulator, PendingEvent
from repro.netsim.trace import ScheduleTrace

# Effect-set injection: an empty map makes every callback "unknown",
# hence dependent on everything — full exploration, and no repo-wide
# flow analysis run per test.
NO_PRUNING = IndependenceOracle(effect_sets={})


# ----------------------------------------------------------- decision strings


class TestDecisionStrings:
    def test_roundtrip(self):
        text = format_decisions(42, [0, 3, 1])
        assert text == "v1:42:0.3.1"
        assert parse_decisions(text) == (42, [0, 3, 1])

    def test_empty_plan(self):
        text = format_decisions(7, [])
        assert text == "v1:7:"
        assert parse_decisions(text) == (7, [])

    @pytest.mark.parametrize("bad", [
        "v2:7:0.1", "v1:7", "v1:x:0", "v1:7:0.-1", "v1:7:0.a", "",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_decisions(bad)


# ------------------------------------------------------------- independence


class TestIndependenceOracle:
    def test_suffix_match_and_disjointness(self):
        oracle = IndependenceOracle(effect_sets={
            "repro.pastry.keepalive.KeepAliveMonitor._probe_round":
                frozenset({EFFECT_MUTATE}),
            "repro.netsim.eventsim.PeriodicTimer._fire":
                frozenset({EFFECT_SCHEDULE}),
        })
        assert oracle.effects_of("KeepAliveMonitor._probe_round") == {EFFECT_MUTATE}
        assert oracle.independent(
            "KeepAliveMonitor._probe_round", "PeriodicTimer._fire"
        )
        assert oracle.dependent(
            "KeepAliveMonitor._probe_round", "KeepAliveMonitor._probe_round"
        )

    def test_unknown_label_is_dependent_on_everything(self):
        oracle = IndependenceOracle(effect_sets={
            "mod.pure": frozenset(),
        })
        assert oracle.effects_of("no.such.callback") == {
            EFFECT_SCHEDULE, EFFECT_RNG, EFFECT_MUTATE,
        }
        # Unknown x unknown: full sets intersect.
        assert oracle.dependent("mystery_a", "mystery_b")
        # A genuinely effect-free callback commutes even with unknowns.
        assert oracle.independent("pure", "mystery_a")

    def test_ambiguous_suffix_unions_effects(self):
        oracle = IndependenceOracle(effect_sets={
            "repro.a.Klass.go": frozenset({EFFECT_RNG}),
            "repro.b.Klass.go": frozenset({EFFECT_MUTATE}),
        })
        assert oracle.effects_of("Klass.go") == {EFFECT_RNG, EFFECT_MUTATE}

    def test_project_effect_sets_resolve_real_callbacks(self):
        # The real flow analysis must know the simulator's own timers:
        # this is what the explorer's pruning is computed from.
        oracle = IndependenceOracle()
        fire = oracle.effects_of("PeriodicTimer._fire")
        assert EFFECT_SCHEDULE in fire
        probe = oracle.effects_of("KeepAliveMonitor._probe_round")
        assert EFFECT_MUTATE in probe


# ------------------------------------------------------------- DPOR pruning


def _decision_trace(labels):
    """A trace with one decision point offering callbacks named ``labels``."""
    trace = ScheduleTrace()

    def make(label):
        def cb():
            pass
        cb.__qualname__ = label
        return cb

    frontier = [
        PendingEvent(1.0, seq, make(label))
        for seq, label in enumerate(labels)
    ]
    trace.record_decision(0, frontier)
    return trace


class TestPruning:
    def test_independent_alternative_is_pruned(self):
        oracle = IndependenceOracle(effect_sets={
            "m.writer": frozenset({EFFECT_MUTATE}),
            "m.pure": frozenset(),
        })
        explorer = Explorer(scenario_join, seed=1, independence=oracle)
        trace = _decision_trace(["writer", "pure", "writer"])
        result = types.SimpleNamespace(pruned=0)
        children = explorer._children([], trace, result)
        # index 1 ("pure") commutes with the writer it overtakes: pruned.
        # index 2 (second "writer") conflicts with index 0's writer: kept.
        assert children == [[2]]
        assert result.pruned == 1

    def test_unknown_callbacks_are_never_pruned(self):
        explorer = Explorer(scenario_join, seed=1, independence=NO_PRUNING)
        trace = _decision_trace(["a", "b", "c"])
        result = types.SimpleNamespace(pruned=0)
        children = explorer._children([], trace, result)
        assert children == [[1], [2]]
        assert result.pruned == 0


# ----------------------------------------------------------------- replay


class TestReplayFidelity:
    def test_empty_plan_matches_unpoliced_run(self):
        plain = SCENARIOS["join"](13)
        policed = SCENARIOS["join"](
            13, policy=PlanPolicy([]), trace=ScheduleTrace()
        )
        assert plain.trace.digests == policed.trace.digests

    @pytest.mark.parametrize("scenario", ["join", "churn", "divert", "scrub"])
    def test_plan_replays_identical_digest_stream(self, scenario):
        explorer = Explorer(
            SCENARIOS[scenario], seed=7, independence=NO_PRUNING
        )
        first = explorer.execute([2])
        again = explorer.replay(format_decisions(7, [2]))
        assert first.trace.digests == again.trace.digests
        assert [d.chosen for d in first.trace.decisions] == \
               [d.chosen for d in again.trace.decisions]

    def test_deviation_changes_the_schedule(self):
        explorer = Explorer(scenario_join, seed=7, independence=NO_PRUNING)
        fifo = explorer.execute([])
        deviated = explorer.execute([1])
        assert fifo.trace.digest() != deviated.trace.digest()


# -------------------------------------------------------------- exploration


class TestExploration:
    def test_unmutated_join_is_clean(self):
        explorer = Explorer(scenario_join, seed=7, independence=NO_PRUNING)
        result = explorer.explore(budget=12)
        assert result.ok
        assert result.schedules_run == 12
        assert result.unique_schedules == 12

    def test_budget_is_respected(self):
        explorer = Explorer(scenario_join, seed=7, independence=NO_PRUNING)
        result = explorer.explore(budget=3)
        assert result.schedules_run == 3


# ------------------------------------------------------------- minimization


class TestMinimizePlan:
    def test_reduces_to_single_relevant_deviation(self):
        runs = []

        def still_fails(plan):
            runs.append(list(plan))
            return len(plan) > 5 and plan[5] == 3

        minimized = minimize_plan(still_fails, [0, 1, 0, 2, 0, 3, 1, 0])
        assert minimized == [0, 0, 0, 0, 0, 3]

    def test_keeps_jointly_required_deviations(self):
        def still_fails(plan):
            padded = list(plan) + [0] * 8
            return padded[1] == 2 and padded[4] == 1

        minimized = minimize_plan(still_fails, [3, 2, 1, 0, 1, 2])
        assert minimized == [0, 2, 0, 0, 1]

    def test_irreproducible_plan_is_returned_stripped(self):
        assert minimize_plan(lambda p: False, [0, 1, 0]) == [0, 1]


# -------------------------------------------------- mutation kill-switch


def _mutant_silent_recovery(seed, policy=None, trace=None):
    """A deployment carrying a reintroduced event-order bug.

    The mutation: a recovering node rejoins the ring *silently* — it
    rebuilds its own leaf set but never announces itself to the members
    (the unmutated ``PastryNetwork.recover_node`` ends with a
    ``member.learn(node_id)`` round).  Under the FIFO schedule this is
    invisible: the recovery event carries an earlier sequence number
    than the keep-alive probes sharing its tick, so it runs first and no
    witness ever detects the crash.  If the explorer runs any same-tick
    probe *before* the recovery, detection fires, the witnesses purge
    the victim, and the silent rejoin leaves the leaf sets asymmetric —
    which the quiescence oracles must catch.
    """
    from repro.core import PastConfig, PastNetwork
    from repro.pastry.keepalive import KeepAliveMonitor

    rng = random.Random(seed)
    config = PastConfig(l=8, k=3, seed=seed, cache_policy="none")
    net = PastNetwork(config)
    net.build([rng.randrange(500_000, 1_000_000) for _ in range(6)])
    owner = net.create_client("mutant")
    node_ids = [n.node_id for n in net.nodes()]
    for i in range(3):
        net.insert(f"m{i}", owner, 10_000, node_ids[i])

    def silent_recover(pastry, node_id):
        # Verbatim PastryNetwork.recover_node, except the final "notify
        # the members of its new leaf set of its presence" round is never
        # sent.  Harmless whenever the members still list the node (no
        # detection ran); fatal when a witness purged it first.
        node = pastry._failed.pop(node_id)
        node.alive = True
        old_members = sorted(node.leafset.members())
        node.leafset = type(node.leafset)(node.node_id, pastry.l)
        for member_id in old_members:
            donor = pastry._nodes.get(member_id)
            if donor is None:
                continue
            node.leafset.add(member_id)
            for m in sorted(donor.leafset.members()):
                if pastry.is_live(m):
                    node.leafset.add(m)
        node.exchange_leafsets()
        pastry._register(node)
        return node

    net.pastry.recover_node = types.MethodType(silent_recover, net.pastry)

    if trace is None:
        trace = ScheduleTrace()
    sim = EventSimulator(trace=trace, policy=policy)
    monitor = KeepAliveMonitor(
        sim, net.pastry, on_detect=net.process_failure_detection,
        interval=1.0, timeout=3.0,
    )
    monitor.start()

    victim = sorted(net.pastry.node_ids)[0]

    def crash():
        if net.pastry.is_live(victim):
            net.crash_node(victim)

    def recover():
        if victim in net._failed_past:
            net.recover_node(victim)
            monitor.forget(victim)
            monitor.watch(victim)

    # Crash off-tick at 2.5; the earliest probe round that can see the
    # silence expire is t=5.0 (last heard 2.0, timeout 3.0) — exactly
    # where the recovery is scheduled.  FIFO runs the recovery first
    # (lower seq); only a reordered schedule detects the crash.
    sim.schedule_at(2.5, crash)
    sim.schedule_at(5.0, recover)
    sim.run_until(9.0)
    monitor.stop()

    from repro.devtools.explore.scenarios import _verify_routes

    run = ScenarioRun(trace=trace, net=net, sim=sim)
    _verify_routes(net, seed, run)
    return run


class TestKillSwitch:
    def test_fifo_schedule_masks_the_mutant(self):
        run = _mutant_silent_recovery(7, policy=PlanPolicy([]))
        assert check_quiescence(run) == []

    def test_explorer_finds_the_seeded_mutation(self):
        explorer = Explorer(
            _mutant_silent_recovery, seed=7, independence=NO_PRUNING
        )
        result = explorer.explore(budget=200)
        assert not result.ok, "explorer failed to find the seeded mutation"
        assert result.schedules_run <= 200
        cex = result.counterexamples[0]
        kinds = {v.kind for v in cex.violations}
        assert any(k.startswith("audit:overlay") for k in kinds) or \
            "misdelivery" in kinds or "routing-error" in kinds

        # The counterexample replays to the identical digest stream.
        seed, plan = parse_decisions(cex.decisions)
        assert seed == 7 and plan == cex.plan
        replayed = explorer.execute(plan)
        assert replayed.trace.digest() == cex.digest
        assert check_quiescence(replayed) != []

        # Delta debugging keeps it failing and no larger than the original.
        minimized = explorer.minimize(cex, budget=32)
        _, min_plan = parse_decisions(minimized)
        assert len(min_plan) <= len(cex.plan)
        assert check_quiescence(explorer.execute(min_plan)) != []


# --------------------------------------------------------------------- CLI


class TestCLI:
    def test_explore_clean_exit_zero(self, capsys):
        code = explore_main([
            "--scenario", "join", "--budget", "4", "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no schedule violated" in out

    def test_scrub_scenario_explores_clean(self, capsys):
        """Scrub rounds racing a crash/recovery: every explored schedule
        must still reach the integrity fixpoint (audit oracle clean)."""
        code = explore_main([
            "--scenario", "scrub", "--budget", "6", "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "no schedule violated" in out

    def test_replay_exit_zero_and_digest_printed(self, capsys):
        code = explore_main([
            "--scenario", "join", "--replay", "v1:7:1", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        import json
        payload = json.loads(out)
        assert payload["decisions"] == "v1:7:1"
        assert payload["violations"] == []
        assert len(payload["digest"]) == 64

    def test_bad_replay_string_is_usage_error(self, capsys):
        assert explore_main(["--replay", "not-a-decision-string"]) == 2

    def test_nonpositive_budget_is_usage_error(self):
        assert explore_main(["--budget", "0"]) == 2
