"""The schedule-trace sanitizer: divergence search and the CLI harness.

The two end-to-end tests each spawn two child interpreters with
different ``PYTHONHASHSEED`` values — they are the acceptance criteria
of the sanitizer: the shipped churn scenario must be hashseed-
independent, and the injected set-iteration hazard must be localised to
its first divergent event.
"""

from __future__ import annotations

import pytest

from repro.devtools.sanitize import (
    SCENARIOS,
    first_divergence,
    main as sanitize_main,
    scenario_hazard,
)
from repro.netsim.trace import ScheduleTrace


class TestFirstDivergence:
    def test_identical_traces_return_none(self):
        digests = ["a", "b", "c"]
        assert first_divergence(digests, list(digests)) is None

    def test_empty_traces_are_identical(self):
        assert first_divergence([], []) is None

    def test_divergence_at_first_event(self):
        assert first_divergence(["x", "y"], ["a", "b"]) == 0

    def test_divergence_in_the_middle(self):
        a = ["d0", "d1", "d2x", "d3x", "d4x"]
        b = ["d0", "d1", "d2y", "d3y", "d4y"]
        assert first_divergence(a, b) == 2

    def test_common_prefix_with_extra_events(self):
        a = ["d0", "d1"]
        b = ["d0", "d1", "d2"]
        assert first_divergence(a, b) == 2

    def test_cumulative_digests_from_real_traces(self):
        t1, t2 = ScheduleTrace(), ScheduleTrace()
        for t in (t1, t2):
            t.record_event(1.0, 0, lambda: None)
            t.record_event(2.0, 1, lambda: None)
        t1.record_event(3.0, 2, lambda: None)
        t2.record_event(3.5, 2, lambda: None)
        assert first_divergence(t1.digests, t2.digests) == 2


class TestScenarios:
    def test_scenario_registry(self):
        assert set(SCENARIOS) == {"churn", "scrub", "hazard"}

    def test_hazard_scenario_runs_all_events(self):
        trace = scenario_hazard(seed=1)
        assert len(trace.events) == 25
        assert len(trace.digests) == 25
        assert all(e.callback.startswith("hazard_event[") for e in trace.events)

    def test_trace_digest_is_deterministic_in_process(self):
        # Same interpreter, same seed: the digest must be reproducible.
        assert scenario_hazard(seed=1).digest() == scenario_hazard(seed=1).digest()


class TestHarness:
    def test_churn_scenario_is_hashseed_independent(self, capsys):
        rc = sanitize_main(
            ["--scenario", "churn", "--seed", "7", "--hashseeds", "1", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "identical trace digests" in out

    def test_hazard_scenario_is_localised_to_first_divergence(self, capsys):
        rc = sanitize_main(
            ["--scenario", "hazard", "--seed", "3", "--hashseeds", "1", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "DIVERGE at event" in out
        assert "hazard_event[" in out
        # The report names the scheduling call site of the divergent event.
        assert "sanitize.py:" in out

    def test_emit_trace_prints_json(self, capsys):
        import json

        rc = sanitize_main(["--emit-trace", "--scenario", "hazard", "--seed", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["digest"] == payload["digests"][-1]
        assert len(payload["events"]) == len(payload["digests"])
