"""Tests for the wire-safety analyzer (`repro-wire`).

Planted fixtures: one mutant per wire rule that the analyzer MUST flag,
the clean rewrite of the same RPC shape that must pass, plus the real
tree's gates — zero findings with zero suppressions, and the committed
``wire_schema.json`` byte-identical to the surface recomputed from
source (the codec's type registry can never silently drift).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import collect_modules, module_from_source, run_rules
from repro.devtools.rules import get_rules
from repro.devtools.wire import (
    DEFAULT_SCHEMA_PATH,
    build_schema,
    get_wire_analysis,
    is_wire_safe,
    schema_json,
    wire_rules,
)
from repro.devtools.wire.cli import main as wire_main
from repro.devtools.wire.rules import (
    WireHandlerTotalRule,
    WireLostPathRule,
    WireSchemaDriftRule,
    WireSerializableRule,
)
from repro.devtools.wire.schema import write_schema

REPO_ROOT = Path(__file__).resolve().parents[2]

WIRE_RULE_NAMES = (
    "wire-serializable",
    "wire-handler-total",
    "wire-lost-path",
    "wire-schema-drift",
)


def analyze(source, name="repro.core.fixture", schema_path=None, rules=None):
    module = module_from_source(source, name=name, path="fixture.py")
    if rules is None:
        rules = wire_rules(schema_path or Path("/nonexistent/wire_schema.json"))
    return run_rules([module], rules)


def rules_of(findings):
    return [f.rule for f in findings]


# The clean RPC shape every fixture below mutates: annotated wire-safe
# handler, delivered flag bound and tested, arity in range.
CLEAN_RPC = """\
class Store:
    def fetch(self, file_id: int, salt: int = 0) -> bytes:
        return b""

class Node:
    def __init__(self, transport, store: Store):
        self.transport = transport
        self.store = store

    def pull(self, peer, fid: int) -> bytes:
        delivered, data = self.transport.send(
            self.node_id, peer.node_id, peer.store.fetch, fid
        )
        if not delivered:
            return b""
        return data
"""


class TestWireSerializable:
    def test_clean_rpc_passes(self):
        assert analyze(CLEAN_RPC) == []

    def test_unannotated_remote_parameter_is_flagged(self):
        source = CLEAN_RPC.replace("file_id: int, ", "file_id, ")
        findings = analyze(source)
        assert "wire-serializable" in rules_of(findings)
        assert any("has no annotation" in f.message for f in findings)

    def test_live_object_parameter_is_flagged(self):
        source = CLEAN_RPC.replace("file_id: int", "file_id: Node")
        findings = analyze(source)
        assert any(
            f.rule == "wire-serializable"
            and "'Node' is not wire-encodable" in f.message
            for f in findings
        )

    def test_missing_return_annotation_is_flagged(self):
        source = CLEAN_RPC.replace(" -> bytes:\n        return b\"\"", ":\n        return b\"\"", 1)
        findings = analyze(source)
        assert any(
            f.rule == "wire-serializable" and "no return annotation" in f.message
            for f in findings
        )

    def test_unregistered_route_payload_is_flagged(self):
        source = CLEAN_RPC + (
            "\n"
            "class Router:\n"
            "    def __init__(self, transport):\n"
            "        self.transport = transport\n"
            "\n"
            "    def go(self, key: int):\n"
            "        self.transport.route(0, key, message=Store())\n"
        )
        findings = analyze(source)
        assert any(
            f.rule == "wire-serializable"
            and "not a registered message dataclass" in f.message
            for f in findings
        )

    def test_unsafe_message_field_is_flagged(self):
        messages = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Envelope:\n"
            "    file_id: int\n"
            "    handle: object\n"
        )
        module = module_from_source(
            messages, name="repro.core.messages", path="messages.py"
        )
        findings = run_rules(
            [module], [WireSerializableRule(Path("/nonexistent.json"))]
        )
        assert [f.rule for f in findings] == ["wire-serializable"]
        assert "Envelope.handle" in findings[0].message

    def test_is_wire_safe_grammar(self):
        safe = {"Envelope"}
        assert is_wire_safe("int", safe)
        assert is_wire_safe("Optional[bytes]", safe)
        assert is_wire_safe("List[Envelope]", safe)
        assert is_wire_safe("Dict[int, Tuple[int, ...]]", safe)
        assert is_wire_safe("int | None", safe)
        assert not is_wire_safe(None, safe)
        assert not is_wire_safe("PastNode", safe)
        assert not is_wire_safe("tuple", safe)  # bare container
        assert not is_wire_safe("Callable[[int], int]", safe)
        assert not is_wire_safe("Dict[int, PastNode]", safe)


class TestWireHandlerTotal:
    def test_orphan_send_is_flagged(self):
        source = CLEAN_RPC.replace("peer.store.fetch", "peer.store.missing_method")
        findings = analyze(source)
        assert any(
            f.rule == "wire-handler-total" and "orphan send" in f.message
            for f in findings
        )

    def test_unknown_keyword_is_flagged(self):
        source = CLEAN_RPC.replace(
            "peer.store.fetch, fid", "peer.store.fetch, fid, bogus=1"
        )
        findings = analyze(source)
        assert any(
            f.rule == "wire-handler-total" and "bogus" in f.message
            for f in findings
        )

    def test_arity_overflow_is_flagged(self):
        source = CLEAN_RPC.replace(
            "peer.store.fetch, fid", "peer.store.fetch, fid, 1, 2"
        )
        findings = analyze(source)
        assert any(
            f.rule == "wire-handler-total" and "accepts between 1 and 2" in f.message
            for f in findings
        )

    def test_dead_schema_handler_is_flagged(self, tmp_path):
        schema = tmp_path / "wire_schema.json"
        schema.write_text(json.dumps({
            "version": 1,
            "rpcs": {
                "Store.fetch": {"module": "repro.core.fixture"},
                "Store.stale_handler": {"module": "repro.core.fixture"},
            },
            "messages": {},
        }))
        findings = analyze(CLEAN_RPC, rules=[WireHandlerTotalRule(schema)])
        assert len(findings) == 1
        assert "Store.stale_handler" in findings[0].message
        assert "dead handler" in findings[0].message


class TestWireLostPath:
    def test_discarded_delivery_tuple_is_flagged(self):
        source = CLEAN_RPC.replace(
            "delivered, data = self.transport.send",
            "self.transport.send",
        ).replace("if not delivered:\n            return b\"\"\n        return data",
                  "return b\"\"")
        findings = analyze(source)
        assert any(
            f.rule == "wire-lost-path" and "discards the" in f.message
            for f in findings
        )

    def test_bound_but_untested_flag_is_flagged(self):
        source = CLEAN_RPC.replace(
            "if not delivered:\n            return b\"\"\n        return data",
            "return data",
        )
        findings = analyze(source)
        assert any(
            f.rule == "wire-lost-path" and "never tests it" in f.message
            for f in findings
        )

    def test_reliable_send_is_exempt(self):
        source = CLEAN_RPC.replace(
            "peer.store.fetch, fid", "peer.store.fetch, fid, reliable=True"
        ).replace(
            "if not delivered:\n            return b\"\"\n        return data",
            "return data",
        )
        findings = analyze(source)
        assert "wire-lost-path" not in rules_of(findings)

    def test_retry_policy_in_scope_is_exempt(self):
        source = CLEAN_RPC.replace(
            "def pull(self, peer, fid: int) -> bytes:",
            "def pull(self, peer, fid: int, policy: 'RetryPolicy' = None) -> bytes:",
        ).replace(
            "if not delivered:\n            return b\"\"\n        return data",
            "return data",
        )
        findings = analyze(source)
        assert "wire-lost-path" not in rules_of(findings)


class TestWireSchemaDrift:
    def _pin(self, tmp_path, source):
        module = module_from_source(source, name="repro.core.fixture", path="fixture.py")
        schema = build_schema(get_wire_analysis([module]))
        path = tmp_path / "wire_schema.json"
        write_schema(schema, path)
        return path

    def test_unchanged_surface_is_clean(self, tmp_path):
        pinned = self._pin(tmp_path, CLEAN_RPC)
        findings = analyze(CLEAN_RPC, rules=[WireSchemaDriftRule(pinned)])
        assert findings == []

    def test_parameter_drift_is_flagged(self, tmp_path):
        pinned = self._pin(tmp_path, CLEAN_RPC)
        drifted = CLEAN_RPC.replace("file_id: int", "file_id: str")
        findings = analyze(drifted, rules=[WireSchemaDriftRule(pinned)])
        assert any(
            "parameter shape drifted" in f.message for f in findings
        )

    def test_return_drift_is_flagged(self, tmp_path):
        pinned = self._pin(tmp_path, CLEAN_RPC)
        drifted = CLEAN_RPC.replace(
            "def fetch(self, file_id: int, salt: int = 0) -> bytes:",
            "def fetch(self, file_id: int, salt: int = 0) -> str:",
        )
        findings = analyze(drifted, rules=[WireSchemaDriftRule(pinned)])
        assert any("return shape drifted" in f.message for f in findings)

    def test_new_rpc_absent_from_schema_is_flagged(self, tmp_path):
        pinned = self._pin(tmp_path, CLEAN_RPC)
        grown = CLEAN_RPC + (
            "\n"
            "    def push(self, peer, fid: int) -> bool:\n"
            "        delivered, ok = self.transport.send(\n"
            "            self.node_id, peer.node_id, peer.store.install, fid\n"
            "        )\n"
            "        return delivered and ok\n"
        )
        grown = grown.replace(
            "    def fetch(self, file_id: int, salt: int = 0) -> bytes:\n"
            "        return b\"\"\n",
            "    def fetch(self, file_id: int, salt: int = 0) -> bytes:\n"
            "        return b\"\"\n"
            "\n"
            "    def install(self, file_id: int) -> bool:\n"
            "        return True\n",
        )
        findings = analyze(grown, rules=[WireSchemaDriftRule(pinned)])
        assert any(
            "Store.install: rpc is live in source but absent" in f.message
            for f in findings
        )

    def test_message_field_drift_is_flagged(self, tmp_path):
        messages = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Envelope:\n"
            "    file_id: int\n"
        )
        module = module_from_source(
            messages, name="repro.core.messages", path="messages.py"
        )
        schema = build_schema(get_wire_analysis([module]))
        path = tmp_path / "wire_schema.json"
        write_schema(schema, path)
        drifted = module_from_source(
            messages + "    salt: int\n",
            name="repro.core.messages", path="messages.py",
        )
        findings = run_rules([drifted], [WireSchemaDriftRule(path)])
        assert any(
            "message Envelope: field shape drifted" in f.message
            for f in findings
        )


class TestRealTreeGates:
    def test_src_tree_has_zero_findings(self, monkeypatch, capsys):
        """The wire gate: the production RPC surface is fully shippable,
        with no baseline and no suppressions."""
        monkeypatch.chdir(REPO_ROOT)
        assert wire_main(["--format", "json", "src"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["baselined"] == 0
        assert payload["surface"]["rpcs"] > 0
        assert payload["surface"]["send_sites"] > 0

    def test_no_wire_suppressions_in_src(self):
        """Zero suppressions is part of the gate: a wire finding is a
        payload the transport cannot ship, so it cannot be waived."""
        for path in (REPO_ROOT / "src").rglob("*.py"):
            text = path.read_text()
            assert "lint: ignore[wire-" not in text, path

    def test_committed_schema_matches_source(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        modules = collect_modules(["src"])
        fresh = schema_json(build_schema(get_wire_analysis(modules)))
        committed = DEFAULT_SCHEMA_PATH.read_text()
        assert fresh == committed, (
            "wire_schema.json is stale; run "
            "python -m repro.devtools.wire --write-schema src"
        )

    def test_check_schema_cli_passes(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert wire_main(["--check-schema", "src"]) == 0
        assert "matches source" in capsys.readouterr().out

    def test_schema_bytes_stable_across_hash_seeds(self, tmp_path):
        """The golden schema must be byte-identical under any
        PYTHONHASHSEED — CI diffs two seeds, this pins the same contract."""
        outputs = []
        for seed in ("0", "31337"):
            out = tmp_path / f"schema-{seed}.json"
            env = dict(os.environ, PYTHONHASHSEED=seed,
                       PYTHONPATH=str(REPO_ROOT / "src"))
            proc = subprocess.run(
                [sys.executable, "-m", "repro.devtools.wire",
                 "--write-schema", "--schema", str(out), "src"],
                cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]


class TestCatalogueRegistry:
    def test_wire_rules_resolvable_by_name(self):
        selected = get_rules(list(WIRE_RULE_NAMES))
        assert sorted(r.name for r in selected) == sorted(WIRE_RULE_NAMES)

    def test_wire_rules_not_in_default_set(self):
        default = {r.name for r in get_rules()}
        assert not default & set(WIRE_RULE_NAMES)

    def test_list_rules_cli(self, capsys):
        assert wire_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in WIRE_RULE_NAMES:
            assert name in out

    def test_unknown_rule_name_is_a_usage_error(self, capsys):
        assert wire_main(["--select", "wire-bogus", "src"]) == 2
