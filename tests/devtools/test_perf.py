"""Tests for the static cost analyzer and perf lint rules.

Planted fixtures: a quadratic-membership loop and a sort-in-a-loop that
the analyzer MUST flag, plus an ordered-container rewrite of the same
logic that it must NOT flag (the shape every fix in this repo follows).
"""

from __future__ import annotations

import json

from repro.devtools import module_from_source, run_rules
from repro.devtools.perf import (
    CostAnalyzer,
    PERF_RULE_NAMES,
    perf_rules,
    rank_findings,
)
from repro.devtools.perf.costmodel import (
    KIND_ALLOC,
    KIND_HOT_SORT,
    KIND_QUADRATIC,
    KIND_SLOTS,
)
from repro.devtools.perf.profile import CallCountProfile


def analyze(source, name="repro.core.fixture"):
    module = module_from_source(source, name=name, path="fixture.py")
    return CostAnalyzer([module]).findings


def kinds(findings):
    return [f.kind for f in findings]


PLANTED_QUADRATIC = """\
def dedup(items):
    seen = []
    for item in items:
        if item not in seen:
            seen.append(item)
    return seen
"""

PLANTED_SORT_IN_LOOP = """\
def closest_each(queries, members):
    out = []
    for q in queries:
        ranked = sorted(members)
        out.append(ranked[0])
    return out
"""

# The ordered-container equivalent: membership via a set, the sort
# hoisted out of the loop.  Must produce zero findings.
CLEAN_ORDERED = """\
def dedup(items):
    seen = set()
    out = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out

def closest_each(queries, members):
    ranked = sorted(members)
    return [ranked[0] for _ in queries]
"""


class TestPlantedFixtures:
    def test_flags_quadratic_membership(self):
        found = analyze(PLANTED_QUADRATIC)
        assert KIND_QUADRATIC in kinds(found)
        (hit,) = [f for f in found if f.kind == KIND_QUADRATIC]
        assert hit.line == 4
        assert hit.qualname == "repro.core.fixture.dedup"

    def test_flags_sort_in_loop(self):
        found = analyze(PLANTED_SORT_IN_LOOP)
        assert KIND_HOT_SORT in kinds(found)
        (hit,) = [f for f in found if f.kind == KIND_HOT_SORT]
        assert hit.line == 4

    def test_clean_ordered_container_is_not_flagged(self):
        assert analyze(CLEAN_ORDERED) == []

    def test_membership_on_set_is_not_quadratic(self):
        source = (
            "def f(items):\n"
            "    seen = set()\n"
            "    for i in items:\n"
            "        if i in seen:\n"
            "            pass\n"
        )
        assert KIND_QUADRATIC not in kinds(analyze(source))

    def test_nested_loop_raises_badness(self):
        source = (
            "def f(rows):\n"
            "    bag = []\n"
            "    for row in rows:\n"
            "        for cell in row:\n"
            "            if cell in bag:\n"
            "                bag.append(cell)\n"
        )
        (hit,) = [f for f in analyze(source) if f.kind == KIND_QUADRATIC]
        assert hit.badness == 3  # depth 2 + 1

    def test_loop_variant_alloc_is_not_flagged(self):
        # The allocation consumes the loop variable: not hoistable.
        source = (
            "def f(rows):\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        out.append(sorted(row))\n"
            "    return out\n"
        )
        assert KIND_ALLOC not in kinds(analyze(source))

    def test_loop_invariant_alloc_is_flagged(self):
        source = (
            "def f(rows, base):\n"
            "    out = []\n"
            "    for row in rows:\n"
            "        out.append(set(base))\n"
            "    return out\n"
        )
        assert KIND_ALLOC in kinds(analyze(source))

    def test_slots_for_class_constructed_in_loop(self):
        source = (
            "class Record:\n"
            "    def __init__(self, a, b):\n"
            "        self.a = a\n"
            "        self.b = b\n"
            "\n"
            "def make(n):\n"
            "    return [Record(i, i) for i in range(n)]\n"
        )
        found = [f for f in analyze(source) if f.kind == KIND_SLOTS]
        assert len(found) == 1
        assert "Record" in found[0].message
        # Hotness attribution points at the constructing function, not
        # the (possibly synthetic) __init__.
        assert found[0].hotness_qualname == "repro.core.fixture.make"

    def test_slotted_class_is_not_flagged(self):
        source = (
            "class Record:\n"
            "    __slots__ = ('a',)\n"
            "    def __init__(self, a):\n"
            "        self.a = a\n"
            "\n"
            "def make(n):\n"
            "    return [Record(i) for i in range(n)]\n"
        )
        assert KIND_SLOTS not in kinds(analyze(source))

    def test_out_of_scope_module_is_ignored(self):
        module = module_from_source(
            PLANTED_QUADRATIC, name="repro.experiments.fig3", path="fig3.py"
        )
        assert CostAnalyzer([module]).findings == []


class TestPerfRules:
    def test_rule_names(self):
        assert PERF_RULE_NAMES == (
            "perf-hot-sort",
            "perf-quadratic-membership",
            "perf-alloc-in-loop",
            "perf-slots",
        )

    def test_rules_emit_framework_findings(self):
        module = module_from_source(
            PLANTED_QUADRATIC + PLANTED_SORT_IN_LOOP,
            name="repro.core.fixture",
            path="fixture.py",
        )
        found = run_rules([module], perf_rules())
        assert {f.rule for f in found} == {
            "perf-quadratic-membership",
            "perf-hot-sort",
        }

    def test_suppression_comment_applies(self):
        source = PLANTED_QUADRATIC.replace(
            "if item not in seen:",
            "if item not in seen:  # lint: ignore[perf-quadratic-membership]",
        )
        module = module_from_source(
            source, name="repro.core.fixture", path="fixture.py"
        )
        assert run_rules([module], perf_rules()) == []

    def test_perf_rules_not_in_default_catalogue(self):
        from repro.devtools.rules import all_rules, get_rules

        default_names = {r.name for r in all_rules()}
        assert not default_names & set(PERF_RULE_NAMES)
        # ...but resolvable by explicit selection.
        selected = get_rules(["perf-hot-sort"])
        assert [r.name for r in selected] == ["perf-hot-sort"]


class TestRanking:
    def _profile(self, counts):
        return CallCountProfile(
            nodes=10, seed=1, counts=counts, builtin_counts={}, scenarios=[]
        )

    def test_rank_orders_by_score_then_position(self):
        found = analyze(PLANTED_QUADRATIC + "\n" + PLANTED_SORT_IN_LOOP)
        profile = self._profile(
            {"repro.core.fixture.closest_each": 500, "repro.core.fixture.dedup": 2}
        )
        ranked = rank_findings(found, profile)
        assert ranked[0].finding.kind == KIND_HOT_SORT
        # hot-sort badness == loop depth (1 here); score = badness x hotness
        assert ranked[0].score == 1 * 500
        assert ranked[0].score > ranked[1].score

    def test_unprofiled_function_gets_floor_hotness(self):
        found = analyze(PLANTED_QUADRATIC)
        ranked = rank_findings(found, self._profile({}))
        quad = [r for r in ranked if r.finding.kind == KIND_QUADRATIC][0]
        assert quad.hotness == 0
        assert quad.score == quad.finding.badness  # max(1, hotness) floor

    def test_ranked_finding_roundtrips_to_json(self):
        found = analyze(PLANTED_SORT_IN_LOOP)
        ranked = rank_findings(found, self._profile({}))
        payload = json.dumps([r.to_dict() for r in ranked], sort_keys=True)
        parsed = json.loads(payload)
        assert parsed[0]["kind"] == "hot-sort"
        assert parsed[0]["score"] == parsed[0]["badness"] * 1

    def test_report_is_deterministic(self):
        found = analyze(PLANTED_QUADRATIC + "\n" + PLANTED_SORT_IN_LOOP)
        profile = self._profile({"repro.core.fixture.dedup": 7})
        a = [r.to_dict() for r in rank_findings(found, profile)]
        b = [
            r.to_dict()
            for r in rank_findings(
                list(reversed(found)), profile
            )
        ]
        assert a == b


class TestRealTree:
    def test_analyzer_is_clean_on_src_after_fixes(self, monkeypatch):
        """The committed tree carries no un-suppressed perf findings
        beyond the accepted baseline (see benchmarks/perf_baseline.json)."""
        from pathlib import Path

        from repro.devtools.framework import collect_modules
        from repro.devtools.lint import finding_key, load_baseline

        root = Path(__file__).resolve().parents[2]
        # Baseline keys carry repo-relative paths (the CLI is run from
        # the repo root); collect the same way.
        monkeypatch.chdir(root)
        modules = collect_modules(["src"])
        found = run_rules(modules, perf_rules())
        accepted = load_baseline("benchmarks/perf_baseline.json")
        new = [f for f in found if finding_key(f) not in accepted]
        assert new == [], [f"{f.path}:{f.line} {f.rule}" for f in new]


class TestCliBaselineRoundTrip:
    def test_write_then_gate_exits_clean(self, monkeypatch, tmp_path):
        """``--write-baseline`` followed by ``--baseline`` on the same
        tree must gate clean: the written file accepts exactly the
        findings the analyzer currently emits."""
        from pathlib import Path

        from repro.devtools.perf.cli import main

        root = Path(__file__).resolve().parents[2]
        monkeypatch.chdir(root)
        baseline = tmp_path / "perf_baseline.json"
        assert main(["--write-baseline", str(baseline), "src"]) == 0
        assert baseline.exists()
        assert main(["--baseline", str(baseline), "src"]) == 0

    def test_written_baseline_matches_committed(self, monkeypatch, tmp_path):
        """Regenerating the baseline from the committed tree reproduces
        the committed baseline — the debt file is never stale."""
        import json
        from pathlib import Path

        from repro.devtools.perf.cli import main

        root = Path(__file__).resolve().parents[2]
        monkeypatch.chdir(root)
        fresh = tmp_path / "fresh.json"
        assert main(["--write-baseline", str(fresh), "src"]) == 0
        committed = json.loads(Path("benchmarks/perf_baseline.json").read_text())
        regenerated = json.loads(fresh.read_text())
        assert regenerated == committed
