"""The lint gate: the shipped tree must be clean under the full rule set.

This is the static complement of the runtime invariant audit — any PR
that introduces unseeded randomness, wall-clock reads, cross-layer
imports or an unhandled request message fails here before it can skew
the paper's reproduced figures.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools import collect_modules, run_rules
from repro.devtools.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_lint_clean():
    modules = collect_modules([REPO_ROOT / "src"])
    assert len(modules) > 50, "expected the whole src tree to be collected"
    findings = run_rules(modules, all_rules())
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"lint findings in src/:\n{rendered}"


def test_rule_set_is_complete_and_distinct():
    rules = all_rules()
    names = [rule.name for rule in rules]
    assert len(names) == len(set(names)), "duplicate rule names"
    assert len(rules) >= 6, "the suite promises at least six distinct rules"
    for rule in rules:
        assert rule.name and rule.description
