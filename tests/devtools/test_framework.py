"""Framework behaviour: module loading, suppressions, engine, CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools import (
    Finding,
    LintError,
    Rule,
    collect_modules,
    module_from_source,
    run_rules,
)
from repro.devtools.framework import import_aliases, qualified_name
from repro.devtools.lint import main as lint_main
from repro.devtools.rules import get_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


class NameCallRule(Rule):
    """Test double: flags every call to a configurable bare name."""

    def __init__(self, target: str = "forbidden", rule_name: str = "name-call"):
        self.target = target
        self.name = rule_name

    def check(self, module):
        import ast

        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == self.target
            ):
                yield self.finding(module, node, f"call to {self.target}")


class TestModuleLoading:
    def test_collect_modules_walks_directories(self, tmp_path):
        pkg = tmp_path / "repro" / "sub"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        modules = collect_modules([tmp_path])
        names = {m.name for m in modules}
        assert names == {"repro.sub", "repro.sub.mod"}

    def test_missing_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            collect_modules(["/nonexistent/dir"])

    def test_syntax_error_raises(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(LintError, match="syntax error"):
            collect_modules([bad])

    def test_package_and_subpackage_resolution(self):
        mod = module_from_source("x = 1\n", name="repro.core.network", path="network.py")
        assert mod.package == "repro.core"
        assert mod.subpackage == "core"
        init = module_from_source("", name="repro.core", path="src/repro/core/__init__.py")
        assert init.package == "repro.core"


class TestSuppressions:
    def test_plain_ignore_suppresses_all_rules(self):
        mod = module_from_source("forbidden()  # lint: ignore\n")
        assert run_rules([mod], [NameCallRule()]) == []

    def test_named_ignore_suppresses_only_that_rule(self):
        mod = module_from_source("forbidden()  # lint: ignore[name-call]\n")
        assert run_rules([mod], [NameCallRule()]) == []
        other = module_from_source("forbidden()  # lint: ignore[other-rule]\n")
        assert len(run_rules([other], [NameCallRule()])) == 1

    def test_ignore_applies_only_to_its_line(self):
        mod = module_from_source("forbidden()  # lint: ignore\nforbidden()\n")
        findings = run_rules([mod], [NameCallRule()])
        assert [f.line for f in findings] == [2]


class TestEngine:
    def test_findings_sorted_by_location(self):
        mod = module_from_source("b()\na()\n", path="m.py")
        findings = run_rules(
            [mod], [NameCallRule("a", "rule-a"), NameCallRule("b", "rule-b")]
        )
        assert [(f.line, f.rule) for f in findings] == [(1, "rule-b"), (2, "rule-a")]

    def test_finding_serialization(self):
        finding = Finding(rule="r", path="p.py", line=3, message="m")
        assert finding.to_dict() == {"rule": "r", "path": "p.py", "line": 3, "message": "m"}
        assert finding.render() == "p.py:3: [r] m"

    def test_get_rules_unknown_name(self):
        with pytest.raises(LintError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_qualified_name_resolves_aliases(self):
        import ast

        tree = ast.parse("import numpy as np\nnp.random.default_rng(3)\n")
        aliases = import_aliases(tree)
        call = tree.body[1].value
        assert qualified_name(call.func, aliases) == "numpy.random.default_rng"


class TestCli:
    def _run(self, *argv):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", *argv],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        )

    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("import random\n\nrng = random.Random(7)\n")
        proc = self._run(str(clean))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_dirty_file_exits_one_with_json(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n\nrng = random.Random()\n")
        proc = self._run(str(dirty), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-random"
        assert payload["findings"][0]["line"] == 3

    def test_usage_error_exits_two(self):
        proc = self._run("--select", "no-such-rule", "src")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_list_rules_names_all_rules(self):
        assert lint_main(["--list-rules"]) == 0

    def test_select_runs_only_named_rules(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n\nrng = random.Random()\n")
        proc = self._run(str(dirty), "--select", "builtin-hash")
        assert proc.returncode == 0

    def test_select_multiple_rules(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n\nrng = random.Random()\n")
        proc = self._run(
            str(dirty), "--select", "builtin-hash,unseeded-random",
            "--format", "json",
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "unseeded-random"

    def test_ignore_skips_named_rule(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n\nrng = random.Random()\n")
        proc = self._run(str(dirty), "--ignore", "unseeded-random")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_ignore_composes_with_select(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n\nrng = random.Random()\n")
        proc = self._run(
            str(dirty),
            "--select", "unseeded-random,builtin-hash",
            "--ignore", "unseeded-random",
        )
        assert proc.returncode == 0
        assert "0 findings" in proc.stdout

    def test_ignore_unknown_rule_exits_two(self):
        proc = self._run("--ignore", "no-such-rule", "src")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_get_rules_ignore_api(self):
        from repro.devtools.rules import all_rules

        names = {rule.name for rule in get_rules(ignore=["flow-shared-state"])}
        assert "flow-shared-state" not in names
        assert len(names) == len(all_rules()) - 1
        with pytest.raises(LintError):
            get_rules(ignore=["nope"])
