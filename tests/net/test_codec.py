"""Tests for the schema-generated wire codec.

The codec is the cashed form of the wire analyzer's certificate: it must
round-trip everything inside the certified grammar, reject everything
outside it, and produce byte-identical encodings regardless of hash seed
or container insertion history.
"""

from __future__ import annotations

import struct

import pytest

from repro.core.messages import InsertRequest, LookupRequest
from repro.net.codec import SCHEMA_PATH, CodecError, WireCodec, load_wire_schema
from repro.security.certificates import FileCertificate, StoreReceipt


@pytest.fixture(scope="module")
def codec():
    return WireCodec()


def roundtrip(codec, value):
    blob = codec.encode(value)
    assert isinstance(blob, bytes)
    return codec.decode(blob)


def make_certificate(fid=0x1234, size=4096):
    return FileCertificate(
        file_id=fid,
        content_hash=b"\x00" * 32,
        size=size,
        k=3,
        salt=77,
        creation_date=12,
        owner_public=b"owner-pub",
        signature=b"sig",
    )


class TestPrimitives:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            -256,
            2**130 + 17,  # PAST node/file ids exceed machine words
            -(2**100),
            0.0,
            -1.5,
            3.141592653589793,
            "",
            "hello",
            "unicode ☃ snowman",
            b"",
            b"\x00\xff" * 7,
        ],
    )
    def test_roundtrip(self, codec, value):
        out = roundtrip(codec, value)
        assert out == value
        assert type(out) is type(value)

    def test_bool_is_not_collapsed_to_int(self, codec):
        # bool is an int subclass; the codec must preserve the distinction.
        assert roundtrip(codec, True) is True
        assert roundtrip(codec, 1) == 1
        assert type(roundtrip(codec, 1)) is int


class TestContainers:
    def test_nested_containers(self, codec):
        value = {
            "ids": [1, 2, 3],
            "pair": (4, "five"),
            "seen": {6, 7},
            "frozen": frozenset({8}),
            "deep": {"inner": [(None, True), (2**80, b"x")]},
        }
        assert roundtrip(codec, value) == value

    def test_tuple_and_list_stay_distinct(self, codec):
        assert roundtrip(codec, (1, 2)) == (1, 2)
        assert roundtrip(codec, [1, 2]) == [1, 2]
        assert type(roundtrip(codec, (1, 2))) is tuple
        assert type(roundtrip(codec, [1, 2])) is list

    def test_set_and_frozenset_stay_distinct(self, codec):
        assert type(roundtrip(codec, {1})) is set
        assert type(roundtrip(codec, frozenset({1}))) is frozenset

    def test_set_encoding_is_insertion_order_independent(self, codec):
        a = set()
        for item in range(100):
            a.add(item)
        b = set()
        for item in reversed(range(100)):
            b.add(item)
        assert codec.encode(a) == codec.encode(b)

    def test_dict_encoding_is_insertion_order_independent(self, codec):
        a = {f"k{i}": i for i in range(50)}
        b = {f"k{i}": i for i in reversed(range(50))}
        assert codec.encode(a) == codec.encode(b)
        assert roundtrip(codec, a) == a


class TestMessages:
    def test_frozen_certificate_roundtrip(self, codec):
        cert = make_certificate()
        assert roundtrip(codec, cert) == cert

    def test_request_with_nested_messages_roundtrip(self, codec):
        cert = make_certificate(fid=0xBEEF)
        request = InsertRequest(
            certificate=cert,
            client_id=42,
            content=b"payload" * 10,
            coordinator_id=7,
            receipts=[
                StoreReceipt(
                    file_id=0xBEEF, node_id=9, diverted=False,
                    node_public=b"np", signature=b"s",
                )
            ],
            accepted=True,
            failure_reason=None,
            replica_diversions=1,
        )
        out = roundtrip(codec, request)
        assert out == request
        assert out.certificate == cert
        assert out.receipts[0].node_id == 9

    def test_lookup_request_roundtrip(self, codec):
        request = LookupRequest(file_id=5, client_id=6, source="cache")
        assert roundtrip(codec, request) == request


class TestRejections:
    def test_unregistered_object_raises(self, codec):
        class NotAMessage:
            pass

        with pytest.raises(CodecError, match="outside the certified wire grammar"):
            codec.encode(NotAMessage())

    def test_unregistered_value_nested_in_container_raises(self, codec):
        with pytest.raises(CodecError):
            codec.encode([1, 2, object()])

    def test_callable_raises(self, codec):
        with pytest.raises(CodecError):
            codec.encode(len)

    def test_truncated_float_raises(self, codec):
        blob = codec.encode(1.5)
        with pytest.raises(CodecError, match="corrupt wire bytes"):
            codec.decode(blob[:-3])

    def test_truncated_string_raises(self, codec):
        blob = codec.encode("hello world")
        with pytest.raises(CodecError):
            codec.decode(blob[:-3])

    def test_unknown_tag_raises(self, codec):
        with pytest.raises(CodecError, match="unknown wire tag"):
            codec.decode(b"Q")

    def test_trailing_bytes_raise(self, codec):
        blob = codec.encode(1) + b"junk"
        with pytest.raises(CodecError, match="trailing bytes"):
            codec.decode(blob)


class TestSchemaBinding:
    def test_committed_schema_loads(self):
        schema = load_wire_schema()
        assert schema["version"] == 1
        assert "messages" in schema and schema["messages"]

    def test_missing_schema_raises(self, tmp_path):
        with pytest.raises(CodecError, match="no wire schema"):
            load_wire_schema(tmp_path / "absent.json")

    def test_drifted_schema_fails_at_construction(self):
        """A schema whose pinned fields disagree with the live dataclass
        must fail loudly at codec construction, not corrupt payloads."""
        schema = load_wire_schema(SCHEMA_PATH)
        name = sorted(schema["messages"])[0]
        schema["messages"][name]["fields"].append(
            {"name": "phantom_field", "type": "int"}
        )
        with pytest.raises(CodecError, match="wire schema drift"):
            WireCodec(schema)


class TestFrames:
    def test_frame_is_length_prefixed_payload(self, codec):
        value = {"op": "lookup", "fid": 2**70}
        frame = codec.encode_frame(value)
        (length,) = struct.unpack(">I", frame[:4])
        payload = frame[4:]
        assert length == len(payload)
        assert codec.decode(payload) == value
