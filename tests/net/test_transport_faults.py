"""Socket-level fault scenarios for :class:`AsyncioTransport`.

The wire-safety story (DESIGN.md §4k) makes concrete promises about how
the real transport degrades: one deadline per RPC leg normalized to
``asyncio.TimeoutError``, refused connections that stay refused until an
explicit restart, resets surfaced promptly instead of silent stalls,
servers that shrug off half-written frames, and reject-not-queue
backpressure past the pool's high-water mark.  Each test here kills,
stalls, or mangles a live localhost cluster and pins one promise.
"""

import asyncio
import socket
import threading
import time

from repro.core.storage import LocalStore
from repro.net import InjectedReset, WireFaultPlan
from repro.net.differential import build_cluster
from repro.netsim import FaultSpec


def _two_nodes(net):
    """A deterministic (client, target) pair of distinct nodes."""
    nodes = sorted(net.nodes(), key=lambda n: n.node_id)
    return nodes[0], nodes[1]


class TestDeadlineSymmetry:
    def test_stalled_handler_times_out_in_one_deadline(self, monkeypatch):
        """A stalled peer costs the caller one deadline, not two.

        The old transport split the budget into an in-loop read timeout
        plus a driver-side ``future.result(timeout * 2)``, so a peer that
        accepted the frame but never answered could pin the caller for
        double its nominal budget.  Now one ``wait_for`` governs the
        whole leg and the failure lands in ``wire.timeouts``.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            transport.policy = None
            transport.timeout = 0.5
            client, target = _two_nodes(net)
            release = threading.Event()
            entered = threading.Event()
            orig = LocalStore.holds_file

            def holds_file(self, fid):
                entered.set()
                release.wait(10)
                return orig(self, fid)

            monkeypatch.setattr(LocalStore, "holds_file", holds_file)
            start = time.monotonic()
            ok, result = transport.send(
                client.node_id, target.node_id, target.store.holds_file, 1
            )
            elapsed = time.monotonic() - start
            assert entered.is_set(), "RPC never reached the handler"
            assert (ok, result) == (False, None)
            # One deadline (0.5s) plus scheduling slack — far under the
            # doubled budget the old asymmetry allowed.
            assert elapsed < 1.4, f"timeout took {elapsed:.2f}s for a 0.5s deadline"
            assert transport.wire.timeouts == 1
            release.set()
            assert transport.drain(timeout=10) is True
        finally:
            release.set()
            transport.close()

    def test_deadline_scales_with_route_legs(self):
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            transport.policy = None
            transport.timeout = 0.25
            assert transport.rpc_deadline() == 0.25
            assert transport.rpc_deadline(8) == 2.0
        finally:
            transport.close()


class TestKilledPeer:
    def test_connection_refused_on_first_contact(self):
        """A killed node refuses promptly and stays dead.

        ``kill_server`` must defeat serve-on-first-contact resurrection:
        the node is still in the overlay (the corpse window before
        failure detection), but dialing it has to fail fast and be
        classified as refused, until an explicit ``ensure_server``.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            client, victim = _two_nodes(net)
            transport.kill_server(victim.node_id)
            start = time.monotonic()
            assert transport.probe(client.node_id, victim.node_id) is False
            assert time.monotonic() - start < 2.0
            assert transport.wire.refused >= 1
            assert victim.node_id not in transport._ports
            transport.ensure_server(victim.node_id)
            assert transport.probe(client.node_id, victim.node_id) is True
        finally:
            transport.close()

    def test_peer_killed_mid_frame_surfaces_reset(self, monkeypatch):
        """Killing a peer mid-RPC resets the caller instead of stalling it.

        The client's frame is accepted and parked in the handler when the
        kill lands; severing the accepted connection must bounce the
        caller immediately with a reset, well inside its deadline.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            client, victim = _two_nodes(net)
            release = threading.Event()
            entered = threading.Event()
            orig = LocalStore.holds_file

            def holds_file(self, fid):
                entered.set()
                release.wait(10)
                return orig(self, fid)

            monkeypatch.setattr(LocalStore, "holds_file", holds_file)
            outcome = {}

            def call():
                outcome["result"] = transport.send(
                    client.node_id, victim.node_id, victim.store.holds_file, 1
                )

            worker = threading.Thread(target=call)
            worker.start()
            assert entered.wait(5), "RPC never reached the handler"
            transport.kill_server(victim.node_id)
            worker.join(timeout=5)
            assert not worker.is_alive(), "caller stalled past the kill"
            assert outcome["result"] == (False, None)
            assert transport.wire.resets >= 1
            release.set()
        finally:
            release.set()
            transport.close()


class TestMangledFrames:
    def test_half_written_length_prefix_leaves_server_healthy(self):
        """A connection dropped after two prefix bytes poisons nothing.

        The server must treat the truncated frame as a dead client —
        close that connection and keep serving fresh ones untouched.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            client, target = _two_nodes(net)
            port = transport.ensure_server(target.node_id)
            raw = socket.create_connection((transport.host, port))
            raw.sendall(b"\x00\x01")  # half a length prefix, then vanish
            raw.close()
            assert transport.probe(client.node_id, target.node_id) is True
            ok, _ = transport.send(
                client.node_id, target.node_id, target.store.holds_file, 1
            )
            assert ok is True
        finally:
            transport.close()

    def test_injected_reset_tears_link_then_recovers(self):
        """reset=1.0 fails every fault-scoped leg mid-frame, recoverably.

        Each injected reset writes a partial prefix and drops the
        connection; the caller sees ``(False, None)`` and a resets
        count, and once the plan is uninstalled the very next RPC on a
        fresh connection succeeds — frame alignment survives.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            client, target = _two_nodes(net)
            plan = WireFaultPlan(FaultSpec(seed=7), reset=1.0)
            plan.bind_clock(lambda: 0.0)
            transport.install_faults(plan)
            ok, _ = transport.send(
                client.node_id, target.node_id, target.store.holds_file, 1
            )
            assert ok is False
            assert plan.resets_injected == 1
            assert transport.wire.resets >= 1
            # reliable=True skips the plan entirely (join/recovery RPCs).
            ok, _ = transport.send(
                client.node_id, target.node_id, target.store.holds_file, 1,
                reliable=True,
            )
            assert ok is True
            assert plan.resets_injected == 1
            transport.install_faults(None)
            ok, _ = transport.send(
                client.node_id, target.node_id, target.store.holds_file, 1
            )
            assert ok is True
        finally:
            transport.close()

    def test_injected_loss_is_not_a_wire_timeout(self):
        """Injected drops fail fast and never pollute the real counters.

        On 3.11+ ``concurrent.futures.TimeoutError`` *is* the builtin,
        so an ``InjectedLoss`` (an ``asyncio.TimeoutError`` subclass)
        propagating through ``future.result`` is one careless except
        clause away from being rebranded a genuine timeout.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            client, target = _two_nodes(net)
            plan = WireFaultPlan(FaultSpec(seed=7, loss=1.0))
            plan.bind_clock(lambda: 0.0)
            transport.install_faults(plan)
            start = time.monotonic()
            ok, _ = transport.send(
                client.node_id, target.node_id, target.store.holds_file, 1
            )
            assert ok is False
            assert time.monotonic() - start < 1.0, "injected loss burned the deadline"
            assert plan.stats.messages_lost >= 1
            assert transport.wire.timeouts == 0
            assert transport.wire.resets == 0
        finally:
            transport.close()


class TestBackpressure:
    def test_reject_not_queue_past_pool_limit(self, monkeypatch):
        """The pool's high-water mark rejects promptly instead of queueing."""
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            transport.pool_limit = 1
            nodes = sorted(net.nodes(), key=lambda n: n.node_id)
            client_a, client_b, target = nodes[0], nodes[1], nodes[2]
            release = threading.Event()
            entered = threading.Event()
            orig = LocalStore.holds_file

            def holds_file(self, fid):
                entered.set()
                release.wait(10)
                return orig(self, fid)

            monkeypatch.setattr(LocalStore, "holds_file", holds_file)
            worker = threading.Thread(
                target=lambda: transport.send(
                    client_a.node_id, target.node_id, target.store.holds_file, 1
                ),
            )
            worker.start()
            assert entered.wait(5), "first RPC never occupied the pool"
            start = time.monotonic()
            ok, _ = transport.send(
                client_b.node_id, target.node_id, target.store.holds_file, 1
            )
            assert ok is False
            assert time.monotonic() - start < 1.0, "rejection was not prompt"
            assert transport.wire.rejected >= 1
            release.set()
            worker.join(timeout=5)
        finally:
            release.set()
            transport.close()


class TestReconnect:
    def test_sends_racing_a_restart_reconverge(self):
        """Traffic racing a kill/restart settles: drain() ends clean.

        Sends issued while the victim is down fail fast (refused);
        ``ensure_server`` rebinds it, and the very next send — plus a
        drain — must succeed with no stale pooled connections left over.
        """
        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            client, victim = _two_nodes(net)
            ok, _ = transport.send(
                client.node_id, victim.node_id, victim.store.holds_file, 1
            )
            assert ok is True  # warm the pool toward the victim
            transport.kill_server(victim.node_id)
            stop = threading.Event()
            failures = []

            def hammer():
                while not stop.is_set():
                    got, _ = transport.send(
                        client.node_id, victim.node_id, victim.store.holds_file, 1
                    )
                    if not got:
                        failures.append(1)

            worker = threading.Thread(target=hammer)
            worker.start()
            time.sleep(0.05)
            transport.ensure_server(victim.node_id)
            time.sleep(0.05)
            stop.set()
            worker.join(timeout=5)
            assert failures, "kill window produced no refused sends"
            ok, holds = transport.send(
                client.node_id, victim.node_id, victim.store.holds_file, 1
            )
            assert ok is True
            assert holds is False
            assert transport.drain(timeout=10) is True
        finally:
            transport.close()
