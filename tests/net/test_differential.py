"""Cross-engine differential oracle: SimTransport vs AsyncioTransport.

The wire analyzer proves the RPC surface *can* ship; these tests prove
the shipped system *behaves identically*: one seeded build + insert /
join / lookup workload, run over the in-process simulator and over real
asyncio TCP, must fold to the same outcome checksum with a clean
invariant audit.  The checksum is pinned so either engine drifting —
not just both drifting apart — fails the suite.
"""

from __future__ import annotations

from repro.net.differential import build_cluster, outcome_checksum, run_differential, run_workload

#: sha256 of the canonical observable outcome at (n_nodes=10, n_files=8,
#: seed=7).  Changes only when the storage semantics change; if that is
#: deliberate, re-pin from ``repro serve --differential``.
PINNED_CHECKSUM = "d9142d198f4f0f6966666bd3e371aeca637ca38a31fa2b55b2bc620aa1186864"


class TestDifferential:
    def test_engines_agree_at_pinned_seed(self):
        result = run_differential(n_nodes=10, n_files=8, seed=7)
        assert result["equal"], (
            "engine outcomes diverged:\n"
            f"  sim     = {result['sim']}\n"
            f"  asyncio = {result['asyncio']}"
        )
        assert result["sim"] == PINNED_CHECKSUM
        assert result["asyncio"] == PINNED_CHECKSUM

    def test_audit_clean_on_both_engines(self):
        result = run_differential(n_nodes=10, n_files=8, seed=7)
        assert result["sim_view"]["audit_violations"] == []
        assert result["asyncio_view"]["audit_violations"] == []


class TestAsyncioCluster:
    def test_every_node_listens_on_its_own_tcp_port(self):
        net, transport = build_cluster(6, seed=3, engine="asyncio")
        try:
            ports = transport.serve_all()
            assert set(ports) == {n.node_id for n in net.nodes()}
            assert len(set(ports.values())) == len(ports)
            for node in net.nodes():
                assert transport.probe(node.node_id, node.node_id)
        finally:
            transport.close()

    def test_workload_runs_over_tcp(self):
        net, transport = build_cluster(6, seed=3, engine="asyncio")
        try:
            workload = run_workload(net, n_files=3, seed=4, join_extra=1)
            assert all(r.success for r in workload["inserts"])
            assert all(
                r is not None and r.success for r in workload["lookups"]
            )
            checksum, view = outcome_checksum(net, workload)
            assert view["audit_violations"] == []
            assert len(checksum) == 64
        finally:
            transport.close()
