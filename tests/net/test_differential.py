"""Cross-engine differential oracle: SimTransport vs AsyncioTransport.

The wire analyzer proves the RPC surface *can* ship; these tests prove
the shipped system *behaves identically*: one seeded build + insert /
join / lookup workload, run over the in-process simulator and over real
asyncio TCP, must fold to the same outcome checksum with a clean
invariant audit.  The checksum is pinned so either engine drifting —
not just both drifting apart — fails the suite.
"""

from __future__ import annotations

from repro.net.differential import (
    build_cluster,
    graceful_shutdown,
    outcome_checksum,
    run_differential,
    run_serve,
    run_workload,
)

#: sha256 of the canonical observable outcome at (n_nodes=10, n_files=8,
#: seed=7).  Changes only when the storage semantics change; if that is
#: deliberate, re-pin from ``repro serve --differential``.
PINNED_CHECKSUM = "d9142d198f4f0f6966666bd3e371aeca637ca38a31fa2b55b2bc620aa1186864"


class TestDifferential:
    def test_engines_agree_at_pinned_seed(self):
        result = run_differential(n_nodes=10, n_files=8, seed=7)
        assert result["equal"], (
            "engine outcomes diverged:\n"
            f"  sim     = {result['sim']}\n"
            f"  asyncio = {result['asyncio']}"
        )
        assert result["sim"] == PINNED_CHECKSUM
        assert result["asyncio"] == PINNED_CHECKSUM

    def test_audit_clean_on_both_engines(self):
        result = run_differential(n_nodes=10, n_files=8, seed=7)
        assert result["sim_view"]["audit_violations"] == []
        assert result["asyncio_view"]["audit_violations"] == []


class TestAsyncioCluster:
    def test_every_node_listens_on_its_own_tcp_port(self):
        net, transport = build_cluster(6, seed=3, engine="asyncio")
        try:
            ports = transport.serve_all()
            assert set(ports) == {n.node_id for n in net.nodes()}
            assert len(set(ports.values())) == len(ports)
            for node in net.nodes():
                assert transport.probe(node.node_id, node.node_id)
        finally:
            transport.close()

    def test_workload_runs_over_tcp(self):
        net, transport = build_cluster(6, seed=3, engine="asyncio")
        try:
            workload = run_workload(net, n_files=3, seed=4, join_extra=1)
            assert all(r.success for r in workload["inserts"])
            assert all(
                r is not None and r.success for r in workload["lookups"]
            )
            checksum, view = outcome_checksum(net, workload)
            assert view["audit_violations"] == []
            assert len(checksum) == 64
        finally:
            transport.close()


class TestDurableServe:
    """``repro serve --data-dir``: WAL-journaled stores over real TCP,
    a mid-serve kill/restart from the journal, and graceful shutdown."""

    def test_durable_cluster_journals_every_store(self, tmp_path):
        net, transport = build_cluster(
            6, seed=3, engine="asyncio", data_dir=tmp_path
        )
        try:
            run_workload(net, n_files=3, seed=4, join_extra=0)
            for node in net.nodes():
                backend = node.store.backend
                assert backend is not None and backend.durable
                assert backend.state.seq > 0 or not node.store.file_ids()
                # sync_every=1: the journal is never behind the store.
                assert backend.synced_seq == backend.state.seq
        finally:
            graceful_shutdown(transport, net)

    def test_serve_restarts_killed_node_from_wal(self, tmp_path):
        bench = run_serve(
            n_nodes=8, n_files=8, seed=11, workers=2,
            lookup_rounds=1, data_dir=tmp_path,
        )
        durability = bench["durability"]
        assert durability["recovered_all"], (
            "the journal did not reproduce the pre-kill entry set"
        )
        assert durability["entries_restored"] == durability["entries_before_kill"]
        assert durability["records_replayed"] >= durability["entries_restored"]
        assert bench["lookup_failures"] == 0
        assert bench["audit_violations"] == 0
        assert bench["shutdown"]["drained"] is True
        assert bench["shutdown"]["wals_flushed"] > 0

    def test_plain_serve_record_has_no_durable_keys(self):
        bench = run_serve(
            n_nodes=6, n_files=4, seed=11, workers=2, lookup_rounds=1,
        )
        assert "durability" not in bench
        assert "shutdown" not in bench

    def test_graceful_shutdown_drains_and_flushes(self, tmp_path):
        net, transport = build_cluster(
            6, seed=3, engine="asyncio", data_dir=tmp_path
        )
        run_workload(net, n_files=2, seed=4, join_extra=0)
        info = graceful_shutdown(transport, net)
        assert info["drained"] is True
        assert info["wals_flushed"] == len(net)
        for node in net.nodes():
            assert node.store.backend.closed

    def test_drain_waits_for_inflight_dispatch(self, monkeypatch):
        import threading

        from repro.core.storage import LocalStore

        net, transport = build_cluster(4, seed=3, engine="asyncio")
        try:
            node = next(iter(net.nodes()))
            release = threading.Event()
            entered = threading.Event()
            orig = LocalStore.holds_file

            def holds_file(self, fid):
                entered.set()
                release.wait(5)
                return orig(self, fid)

            monkeypatch.setattr(LocalStore, "holds_file", holds_file)
            worker = threading.Thread(
                target=lambda: transport.send(
                    node.node_id, node.node_id, node.store.holds_file, 1
                ),
            )
            # A dispatch parked inside a handler: drain must block on it.
            worker.start()
            assert entered.wait(5), "dispatch never entered the handler"
            assert transport.drain(timeout=0.1) is False
            release.set()
            assert transport.drain(timeout=5) is True
            worker.join(timeout=5)
        finally:
            transport.close()


class TestBackendSeamOutcome:
    def test_memory_backend_outcome_checksum_unchanged(self, monkeypatch):
        """The committed serve/differential checksums hold with the
        default backend explicitly installed on every store."""
        from repro.core.network import PastNetwork
        from repro.store import MemoryBackend

        orig_init = PastNetwork.__init__

        def init_with_backend(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            self.store_backend_factory = lambda node_id, plan: MemoryBackend()

        monkeypatch.setattr(PastNetwork, "__init__", init_with_backend)
        net, transport = build_cluster(10, seed=7, engine="sim")
        workload = run_workload(net, 8, seed=8)
        checksum, _view = outcome_checksum(net, workload)
        assert checksum == PINNED_CHECKSUM
