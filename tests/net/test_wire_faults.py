"""Unit and parity tests for the wire-level fault plan.

The contract under test: a :class:`WireFaultPlan` and a sim
:class:`FaultPlan` built from the same :class:`FaultSpec` make identical
loss/partition decisions — same RNG stream, same draw order — and every
wire-only feature (mid-frame resets, slow peers) draws from a separate
stream so enabling it cannot shift the shared verdicts.
"""

import random

import pytest

from repro.net import WireFaultPlan, WireStats, decision_parity
from repro.net.faults import parity_script, verdict_sequence
from repro.netsim import FaultSpec
from repro.netsim.faults import CrashEvent, FaultPlan

IDS = tuple(range(1, 11))

ADVERSE = FaultSpec(
    seed=42,
    loss=0.15,
    delay_mean=0.002,
    duplicate=0.05,
    gray_loss=0.5,
    gray_nodes=(3,),
    link_loss=((1, 2, 0.9),),
    partitions=((2.0, 6.0, (1, 2, 3)),),
    crashes=((1.0, 4, 3.0, False), (2.0, 5, None, True)),
)


class TestDecisionParity:
    def test_engines_agree_under_full_adversity(self):
        report = decision_parity(ADVERSE, IDS, length=512, reset=0.5)
        assert report["ok"] is True
        assert report["first_divergence"] is None
        assert report["legs"] == 512
        assert report["losses"] > 0
        assert report["partition_drops"] > 0

    def test_resets_do_not_perturb_the_shared_stream(self):
        """Wire-only reset draws come from their own RNG: the verdict
        kind sequence is identical with resets off and cranked to 1.0."""
        script = parity_script(ADVERSE, IDS, length=512)
        quiet = verdict_sequence(WireFaultPlan(ADVERSE, reset=0.0), script)
        noisy = verdict_sequence(WireFaultPlan(ADVERSE, reset=1.0), script)
        assert quiet == noisy

    def test_slow_peers_do_not_perturb_the_shared_stream(self):
        script = parity_script(ADVERSE, IDS, length=512)
        plain = verdict_sequence(WireFaultPlan(ADVERSE), script)
        slowed = verdict_sequence(
            WireFaultPlan(ADVERSE, slow_peers=(1, 2), slow_delay=0.2), script
        )
        assert plain == slowed

    def test_spec_build_plan_is_from_spec(self):
        script = parity_script(ADVERSE, IDS, length=256)
        assert verdict_sequence(ADVERSE.build_plan(), script) == verdict_sequence(
            FaultPlan.from_spec(ADVERSE), script
        )

    def test_quiet_plan_draws_nothing(self):
        """A plan injecting nothing consumes no randomness per decision
        (the zero-cost invariant the sim plane already pins)."""
        plan = WireFaultPlan(FaultSpec(seed=9))
        plan.bind_clock(lambda: 0.0)
        link_state = plan.link.rng.getstate()
        wire_state = plan.wire_rng.getstate()
        for src in IDS[:4]:
            verdict = plan.decide(src, src + 1)
            assert verdict.kind == "ok"
            assert not verdict.reset and verdict.delay == 0.0
        assert plan.link.rng.getstate() == link_state
        assert plan.wire_rng.getstate() == wire_state


class TestWireFaultPlan:
    def test_slow_peer_delay_is_deterministic(self):
        plan = WireFaultPlan(
            FaultSpec(seed=9), slow_peers=(7,), slow_delay=0.08
        )
        plan.bind_clock(lambda: 0.0)
        assert plan.decide(7, 1).delay == pytest.approx(0.08)
        assert plan.decide(1, 7).delay == pytest.approx(0.08)
        assert plan.decide(1, 2).delay == 0.0

    def test_reset_counter_and_kind(self):
        plan = WireFaultPlan(FaultSpec(seed=9), reset=1.0)
        plan.bind_clock(lambda: 0.0)
        verdict = plan.decide(1, 2)
        assert verdict.reset is True
        # Resets are wire-only; the parity-relevant kind stays "ok".
        assert verdict.kind == "ok"
        assert plan.resets_injected == 1
        assert plan.injected_snapshot()["resets"] == 1

    def test_partition_verdict_kind(self):
        spec = FaultSpec(seed=9, partitions=((0.0, 5.0, (1, 2)),))
        plan = WireFaultPlan(spec)
        clock = {"now": 1.0}
        plan.bind_clock(lambda: clock["now"])
        assert plan.decide(1, 5).kind == "partition"
        assert plan.decide(1, 2).kind == "ok"  # same side of the cut
        clock["now"] = 6.0
        assert plan.decide(1, 5).kind == "ok"  # healed

    def test_due_crashes_and_restarts_fire_once(self):
        plan = WireFaultPlan(ADVERSE)
        assert plan.due_crashes(0.5) == []
        first = plan.due_crashes(1.5)
        assert first == [CrashEvent(1.0, 4, 3.0, False)]
        assert plan.due_crashes(1.5) == []  # fire-once
        second = plan.due_crashes(10.0)
        assert second == [CrashEvent(2.0, 5, None, True)]
        assert plan.due_restarts(2.5) == []
        # The infinite horizon sweeps stragglers; no-restart events never fire.
        assert plan.due_restarts(float("inf")) == [CrashEvent(1.0, 4, 3.0, False)]
        assert plan.due_restarts(float("inf")) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            WireFaultPlan(FaultSpec(seed=1), reset=1.5)
        with pytest.raises(ValueError):
            WireFaultPlan(FaultSpec(seed=1), slow_delay=-0.1)

    def test_injected_snapshot_shape(self):
        plan = WireFaultPlan(ADVERSE, reset=0.2)
        plan.bind_clock(lambda: 0.0)
        rng = random.Random(1)
        for _ in range(200):
            src, dst = rng.sample(IDS, 2)
            plan.decide(src, dst)
        snap = plan.injected_snapshot()
        assert sorted(snap) == [
            "delays", "drops", "duplicates", "partition_drops", "resets",
        ]
        assert snap["drops"] > 0
        assert snap["delays"] > 0


class TestWireStats:
    def test_snapshot_is_ordered_and_complete(self):
        stats = WireStats()
        stats.timeouts = 2
        stats.resets = 1
        stats.reconnects = 3
        snap = stats.snapshot()
        assert list(snap) == [
            "timeouts", "resets", "refused", "reconnects", "rejected",
        ]
        assert snap == {
            "timeouts": 2, "resets": 1, "refused": 0,
            "reconnects": 3, "rejected": 0,
        }
