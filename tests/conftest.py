"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import PastConfig, PastNetwork, audit
from repro.pastry import PastryNetwork


def build_pastry(n: int, b: int = 4, l: int = 16, seed: int = 1) -> PastryNetwork:
    """A Pastry overlay of ``n`` nodes grown via the join protocol."""
    net = PastryNetwork(b=b, l=l, seed=seed)
    net.build(n)
    return net


def build_past(
    n: int = 24,
    capacity: int = 2_000_000,
    k: int = 3,
    l: int = 16,
    seed: int = 1,
    **config_kwargs,
) -> PastNetwork:
    """A PAST deployment of ``n`` uniform-capacity nodes."""
    config = PastConfig(l=l, k=k, seed=seed, **config_kwargs)
    net = PastNetwork(config)
    net.build([capacity] * n)
    return net


def fill_network(net: PastNetwork, rng: random.Random, target_util: float,
                 owner=None, max_size: int = 400_000, name_prefix: str = "fill"):
    """Insert lognormal-sized files until the target utilization is reached.

    Returns the list of successfully inserted fileIds.
    """
    owner = owner or net.create_client(f"{name_prefix}-owner")
    node_ids = [node.node_id for node in net.nodes()]
    fids = []
    i = 0
    while net.utilization() < target_util and i < 100_000:
        size = min(int(rng.lognormvariate(7.2, 2.0)) + 1, max_size)
        origin = node_ids[rng.randrange(len(node_ids))]
        result = net.insert(f"{name_prefix}-{i}", owner, size, origin)
        if result.success:
            fids.append(result.file_id)
        i += 1
    return fids


@pytest.fixture
def small_pastry() -> PastryNetwork:
    return build_pastry(40, l=8, seed=3)


@pytest.fixture
def small_past() -> PastNetwork:
    return build_past(n=24, seed=3)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def audited():
    """Register PAST networks for an invariant audit at test teardown.

    Usage: ``audited(net)`` after building a network; once the test body
    finishes, every registered network's final state is audited and any
    ``Violation`` fails the test.  This wires the runtime half of the
    determinism/invariant story (``repro.core.invariants``) into the
    integration suite without each test re-implementing the check.
    """
    registered = []
    yield registered.append
    for net in registered:
        report = audit(net)
        assert report.ok, (
            "invariant violations in final network state: "
            f"{[str(v) for v in report.violations[:5]]}"
        )
