"""Tests for the Reed-Solomon striping client (§3.6 integrated with PAST)."""

import os

import pytest

from repro.client import StripingClient
from repro.pastry import idspace
from tests.conftest import build_past


@pytest.fixture
def net():
    return build_past(n=30, capacity=3_000_000, k=3, seed=140)


@pytest.fixture
def owner(net):
    return net.create_client("stripe-owner")


def gw(net):
    return net.nodes()[0].node_id


class TestInsert:
    def test_stores_all_shards(self, net, owner):
        client = StripingClient(net, owner, n_data=4, n_parity=2)
        manifest = client.insert("file", os.urandom(60_000), gw(net))
        assert manifest.n_shards == 6
        for fid in manifest.shard_file_ids:
            assert net.is_file_registered(fid)

    def test_shards_use_k_1(self, net, owner):
        client = StripingClient(net, owner, n_data=4, n_parity=2)
        manifest = client.insert("file", os.urandom(60_000), gw(net))
        for fid in manifest.shard_file_ids:
            assert net.certificate_of(fid).k == 1

    def test_storage_cheaper_than_replication(self, net, owner):
        client = StripingClient(net, owner, n_data=8, n_parity=4)
        payload = os.urandom(240_000)
        before = net.bytes_stored
        client.insert("file", payload, gw(net))
        stored = net.bytes_stored - before
        # (8+4)/8 = 1.5x versus k=3 -> 3x for whole-file replication.
        assert stored < 2 * len(payload)
        assert client.storage_overhead() == pytest.approx(1.5)

    def test_invalid_params(self, net, owner):
        with pytest.raises(ValueError):
            StripingClient(net, owner, n_data=0)


class TestLookup:
    def test_roundtrip(self, net, owner):
        client = StripingClient(net, owner, n_data=4, n_parity=2)
        payload = os.urandom(50_000)
        manifest = client.insert("file", payload, gw(net))
        result = client.lookup(manifest, net.nodes()[-1].node_id)
        assert result.success
        assert result.content == payload
        assert result.shards_fetched == 4  # stops after n_data shards

    def test_survives_n_parity_losses(self, net, owner):
        client = StripingClient(net, owner, n_data=4, n_parity=2)
        payload = os.urandom(50_000)
        manifest = client.insert("file", payload, gw(net))
        # Destroy the (single) replicas of two shards.
        lost = 0
        for fid in manifest.shard_file_ids:
            if lost >= 2:
                break
            holder = net.pastry.k_closest_live(idspace.routing_key(fid), 1)[0]
            node = net.past_node(holder)
            if node.store.holds_file(fid):
                node.store.drop_replica(fid)
                net._contents.pop(fid, None)
                lost += 1
        assert lost == 2
        result = client.lookup(manifest, net.nodes()[-1].node_id)
        assert result.success
        assert result.content == payload

    def test_fails_beyond_tolerance(self, net, owner):
        client = StripingClient(net, owner, n_data=4, n_parity=1)
        payload = os.urandom(50_000)
        manifest = client.insert("file", payload, gw(net))
        lost = 0
        for fid in manifest.shard_file_ids:
            if lost >= 2:
                break
            holder = net.pastry.k_closest_live(idspace.routing_key(fid), 1)[0]
            node = net.past_node(holder)
            if node.store.holds_file(fid):
                node.store.drop_replica(fid)
                net._contents.pop(fid, None)
                lost += 1
        result = client.lookup(manifest, net.nodes()[-1].node_id)
        assert not result.success
        assert result.content is None


class TestReclaim:
    def test_reclaim_frees_all_shards(self, net, owner):
        client = StripingClient(net, owner, n_data=4, n_parity=2)
        before = net.bytes_stored
        manifest = client.insert("file", os.urandom(60_000), gw(net))
        assert client.reclaim(manifest, gw(net))
        assert net.bytes_stored == before


class TestDistinctPlacement:
    def test_shards_on_distinct_nodes(self, net, owner):
        """§3.6: losing one node must cost at most one shard."""
        from repro.pastry import idspace

        client = StripingClient(net, owner, n_data=8, n_parity=4)
        manifest = client.insert("wide", os.urandom(120_000), gw(net))
        holders = []
        for fid in manifest.shard_file_ids:
            holder = net.pastry.k_closest_live(idspace.routing_key(fid), 1)[0]
            assert net.past_node(holder).store.holds_file(fid)
            holders.append(holder)
        assert len(set(holders)) == len(holders)

    def test_single_node_loss_costs_one_shard(self, net, owner):
        from repro.pastry import idspace

        client = StripingClient(net, owner, n_data=6, n_parity=3)
        payload = os.urandom(90_000)
        manifest = client.insert("single-loss", payload, gw(net))
        fid = manifest.shard_file_ids[0]
        holder = net.pastry.k_closest_live(idspace.routing_key(fid), 1)[0]
        net.fail_simultaneously([holder])
        result = client.lookup(manifest, gw(net))
        assert result.success
        assert result.content == payload
