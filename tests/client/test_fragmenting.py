"""Tests for the fragmenting client (§3.4's fragment-and-retry)."""

import os

import pytest

from repro.client import FragmentingClient
from repro.core.errors import InsertFailedError
from tests.conftest import build_past


@pytest.fixture
def net():
    # 3 MB nodes with t_pri=0.1: whole files above ~300 kB will not place.
    return build_past(n=30, capacity=3_000_000, k=3, seed=130)


@pytest.fixture
def owner(net):
    return net.create_client("frag-owner")


def gw(net):
    return net.nodes()[0].node_id


class TestInsert:
    def test_small_file_not_fragmented(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        manifest = client.insert("small", gw(net), size=50_000)
        assert not manifest.fragmented
        assert manifest.n_fragments == 1

    def test_oversized_file_fragments(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        manifest = client.insert("big", gw(net), size=950_000)
        assert manifest.fragmented
        assert manifest.n_fragments == 10  # ceil(950k / 100k)
        assert manifest.total_size == 950_000

    def test_fragment_ids_distinct(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        manifest = client.insert("big", gw(net), size=500_000)
        assert len(set(manifest.file_ids)) == manifest.n_fragments

    def test_impossible_file_raises_and_rolls_back(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=50_000_000)
        before = net.bytes_stored
        with pytest.raises(InsertFailedError):
            client.insert("hopeless", gw(net), size=100_000_000)
        assert net.bytes_stored == before

    def test_requires_size_or_content(self, net, owner):
        client = FragmentingClient(net, owner)
        with pytest.raises(ValueError):
            client.insert("nothing", gw(net))

    def test_invalid_fragment_size(self, net, owner):
        with pytest.raises(ValueError):
            FragmentingClient(net, owner, fragment_size=0)


class TestLookup:
    def test_fetch_all_fragments(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        manifest = client.insert("big", gw(net), size=500_000)
        result = client.lookup(manifest, net.nodes()[-1].node_id)
        assert result.success
        assert result.fetched_fragments == manifest.n_fragments

    def test_content_reassembled(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        payload = os.urandom(450_000)
        manifest = client.insert("blob", gw(net), content=payload)
        result = client.lookup(manifest, net.nodes()[-1].node_id)
        assert result.success
        assert result.content == payload

    def test_lookup_fails_if_fragment_lost(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        manifest = client.insert("big", gw(net), size=500_000)
        net.reclaim(manifest.file_ids[2], owner, gw(net))  # lose one fragment
        result = client.lookup(manifest, net.nodes()[-1].node_id)
        assert not result.success


class TestReclaim:
    def test_reclaim_frees_everything(self, net, owner):
        client = FragmentingClient(net, owner, fragment_size=100_000)
        before = net.bytes_stored
        manifest = client.insert("big", gw(net), size=500_000)
        assert client.reclaim(manifest, gw(net))
        assert net.bytes_stored == before

    def test_reclaim_credits_quota(self, net):
        owner = net.create_client("capped", quota=3_000_000)
        client = FragmentingClient(net, owner, fragment_size=100_000)
        manifest = client.insert("big", gw(net), size=500_000)
        assert owner.quota_used == 3 * 500_000
        client.reclaim(manifest, gw(net))
        assert owner.quota_used == 0
