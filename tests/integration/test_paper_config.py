"""End-to-end runs under the exact §5 configuration (b=4, l=32, k=5)."""

import random

import pytest

from repro import PAPER_CONFIG, PastNetwork, audit
from repro.workloads import D1, WebProxyWorkload


@pytest.fixture(scope="module")
def paper_net():
    net = PastNetwork(PAPER_CONFIG.with_overrides(seed=210))
    rng = random.Random(210)
    net.build(D1.sample(64, rng, scale=0.1))
    return net


class TestPaperConfiguration:
    def test_k5_replication(self, paper_net):
        owner = paper_net.create_client("p")
        res = paper_net.insert("five", owner, 10_000, paper_net.nodes()[0].node_id)
        assert res.success
        assert len(res.receipts) == 5

    def test_leafset_32_everywhere(self, paper_net):
        for node in paper_net.nodes():
            assert node.leafset.l == 32

    def test_trace_to_high_utilization(self, paper_net):
        rng = random.Random(211)
        workload = WebProxyWorkload(
            total_content_bytes=int(paper_net.total_capacity * 1.5 / 5),
            max_bytes=int(138_000_000 * 0.1),
            seed=211,
        )
        owner = paper_net.create_client("trace")
        node_ids = [n.node_id for n in paper_net.nodes()]
        for event in workload.storage_trace():
            paper_net.insert(
                event.name, owner, event.size,
                node_ids[rng.randrange(len(node_ids))],
            )
        assert paper_net.utilization() > 0.75
        assert paper_net.stats.success_ratio() > 0.85
        report = audit(paper_net)
        assert report.ok, report.violations[:3]

    def test_survives_quintuple_failure(self, paper_net):
        """k=5 means even 4 simultaneous holder failures keep a file alive."""
        from repro.pastry import idspace

        owner = paper_net.create_client("resilient")
        res = paper_net.insert("tough", owner, 8_000, paper_net.nodes()[0].node_id)
        key = idspace.routing_key(res.file_id)
        holders = [
            m for m in paper_net.pastry.k_closest_live(key, 5)
            if paper_net.past_node(m).store.holds_file(res.file_id)
        ]
        paper_net.fail_simultaneously(holders[:4])
        lookup = paper_net.lookup(res.file_id, paper_net.nodes()[0].node_id)
        assert lookup.success
        paper_net.repair_all()
        for victim in holders[:4]:
            paper_net.recover_node(victim)
        assert audit(paper_net).ok


class TestCachingDeterminism:
    def test_same_seed_same_caching_outcome(self):
        from repro.experiments import caching

        cfg = caching.CachingRunConfig(
            n_nodes=25, capacity_scale=0.05, n_files=150, seed=212
        )
        a = caching.run_caching_trace(cfg)
        b = caching.run_caching_trace(cfg)
        assert a.hit_ratio == b.hit_ratio
        assert a.mean_hops == b.mean_hops
        assert a.utilization == b.utilization
