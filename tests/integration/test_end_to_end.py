"""End-to-end integration: full trace playback, churn, invariants, caching.

These tests exercise the whole stack — Pastry routing, PAST storage
management, caching, certificates, quotas — the way the paper's own
emulator runs do, just at test scale.
"""

import random

import pytest

from repro import PastConfig, PastNetwork, audit
from repro.pastry import idspace
from repro.workloads import D1, WebProxyWorkload
from tests.conftest import build_past, fill_network


class TestTracePlayback:
    def test_web_trace_to_saturation_with_invariants(self, audited):
        config = PastConfig(l=16, k=3, seed=200, cache_policy="none")
        net = PastNetwork(config)
        audited(net)
        rng = random.Random(200)
        net.build(D1.sample(50, rng, scale=0.05))
        workload = WebProxyWorkload(
            total_content_bytes=int(net.total_capacity * 1.6 / 3),
            max_bytes=int(138_000_000 * 0.05),
            seed=200,
        )
        owner = net.create_client("o")
        node_ids = [n.node_id for n in net.nodes()]
        for event in workload.storage_trace():
            net.insert(event.name, owner, event.size, node_ids[rng.randrange(len(node_ids))])
        # At this tiny scale the heavy tail (files up to 5x a node's whole
        # disk) carries a large share of the bytes, capping utilization
        # below the paper's 2250-node runs; the invariant audit and the
        # high success ratio are the load-bearing checks here.
        assert net.utilization() > 0.70
        assert net.stats.success_ratio() > 0.90
        report = audit(net)
        assert report.ok, report.violations[:5]

    def test_every_successful_insert_is_retrievable(self, audited):
        net = build_past(n=30, capacity=1_000_000, k=3, seed=201)
        audited(net)
        rng = random.Random(201)
        fids = fill_network(net, rng, target_util=0.90, max_size=200_000)
        misses = [
            fid for fid in fids
            if not net.lookup(fid, net.nodes()[rng.randrange(len(net))].node_id).success
        ]
        assert not misses

    def test_mixed_operations_interleaved(self, audited):
        net = build_past(n=30, capacity=2_000_000, k=3, seed=202, cache_policy="gds")
        audited(net)
        rng = random.Random(202)
        owner = net.create_client("o")
        live_fids = []
        node_ids = [n.node_id for n in net.nodes()]
        for i in range(800):
            origin = node_ids[rng.randrange(len(node_ids))]
            roll = rng.random()
            if roll < 0.5 or not live_fids:
                size = min(int(rng.lognormvariate(7.2, 2.0)) + 1, 300_000)
                res = net.insert(f"x{i}", owner, size, origin)
                if res.success:
                    live_fids.append(res.file_id)
            elif roll < 0.9:
                fid = live_fids[rng.randrange(len(live_fids))]
                assert net.lookup(fid, origin).success
            else:
                fid = live_fids.pop(rng.randrange(len(live_fids)))
                assert net.reclaim(fid, owner, origin).success
        assert audit(net).ok

    def test_storage_invariants_under_random_churn(self, audited):
        """The paper's own verification: invariants hold despite random
        node failures and recoveries (§5)."""
        net = build_past(n=40, capacity=2_000_000, k=3, l=16, seed=203)
        audited(net)
        rng = random.Random(203)
        fids = fill_network(net, rng, target_util=0.5, max_size=150_000)
        failed = []
        for round_ in range(30):
            roll = rng.random()
            if roll < 0.35 and len(net) > 25:
                victim = rng.choice(net.pastry.node_ids)
                net.fail_node(victim)
                failed.append(victim)
            elif roll < 0.55 and failed:
                net.recover_node(failed.pop(rng.randrange(len(failed))))
            elif roll < 0.75:
                net.add_node(2_000_000)
            else:
                size = min(int(rng.lognormvariate(7.2, 2.0)) + 1, 150_000)
                res = net.insert(
                    f"churn{round_}", net.create_client(f"c{round_}"), size,
                    net.nodes()[0].node_id,
                )
                if res.success:
                    fids.append(res.file_id)
            report = audit(net)
            assert report.ok, (round_, report.violations[:3])
        found = sum(
            net.lookup(fid, net.nodes()[0].node_id).success for fid in fids
        )
        assert found >= len(fids) - 1  # allow a k-failure coincidence


class TestQuotaEndToEnd:
    def test_quota_limits_aggregate_demand(self, audited):
        net = build_past(n=20, capacity=5_000_000, k=3, seed=204)
        audited(net)
        owner = net.create_client("capped", quota=300_000)
        inserted = 0
        for i in range(20):
            res = net.insert(f"q{i}", owner, 10_000, net.nodes()[0].node_id)
            if res.success:
                inserted += 1
        assert inserted == 10  # 10 x 10_000 x 3 = 300_000
        # Reclaim frees quota for more inserts.
        fid = net.live_file_ids()[0]
        net.reclaim(fid, owner, net.nodes()[0].node_id)
        res = net.insert("extra", owner, 10_000, net.nodes()[0].node_id)
        assert res.success


class TestLocality:
    def test_lookup_hops_bounded_by_log(self, audited):
        import math

        net = build_past(n=60, capacity=2_000_000, k=3, l=16, seed=205)
        audited(net)
        rng = random.Random(205)
        fids = fill_network(net, rng, target_util=0.3, max_size=100_000)
        bound = math.ceil(math.log(60, 16)) + 1
        hops = []
        for fid in fids[:100]:
            res = net.lookup(fid, net.nodes()[rng.randrange(len(net))].node_id)
            hops.append(res.hops)
        assert sum(hops) / len(hops) <= bound

    def test_replica_set_spread_over_distinct_nodes(self, audited):
        net = build_past(n=40, capacity=2_000_000, k=5, l=16, seed=206)
        audited(net)
        owner = net.create_client("o")
        res = net.insert("spread", owner, 10_000, net.nodes()[0].node_id)
        key = idspace.routing_key(res.file_id)
        kset = net.pastry.k_closest_live(key, 5)
        physical = set()
        for m in kset:
            store = net.past_node(m).store
            if store.holds_file(res.file_id):
                physical.add(m)
            elif res.file_id in store.pointers:
                physical.add(store.pointers[res.file_id].target_id)
        assert len(physical) == 5
