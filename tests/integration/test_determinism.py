"""Determinism regression: same seed, same trajectory — byte for byte.

The static rules in ``repro.devtools`` ban the *sources* of
nondeterminism; this test pins the *outcome*: two runs with the same
master seed must serialize to identical bytes (wall-clock timings
excluded — they are reporting metadata, not simulation state), and a
different seed must actually change the trajectory.
"""

from __future__ import annotations

import dataclasses
import json

from repro.core import audit
from repro.experiments.churn import run_churn_experiment
from repro.experiments.harness import StorageRunConfig, run_storage_trace


def churn_payload(seed: int) -> bytes:
    """Canonical bytes of a small churn run (excluding wall-clock fields)."""
    result = run_churn_experiment(
        n_nodes=30, n_files=120, rounds=20, k=3, seed=seed, audit_every=5
    )
    payload = dataclasses.asdict(result)
    payload.pop("elapsed_s")
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def storage_payload(seed: int) -> bytes:
    """Canonical bytes of a trace run plus its final audit report."""
    cfg = StorageRunConfig(n_nodes=30, capacity_scale=0.05, n_files=250, k=3, l=16, seed=seed)
    result = run_storage_trace(cfg, keep_network=True)
    report = audit(result.network)
    payload = {
        "succeeded": result.succeeded,
        "failed": result.failed,
        "utilization": result.utilization,
        "file_diversion_ratio": result.file_diversion_ratio,
        "replica_diversion_ratio": result.replica_diversion_ratio,
        "n_files": result.n_files,
        "total_capacity": result.total_capacity,
        "insert_events": [dataclasses.asdict(e) for e in result.stats.inserts],
        "audit": {
            "ok": report.ok,
            "violations": [dataclasses.asdict(v) for v in report.violations],
            "files_checked": report.files_checked,
            "nodes_checked": report.nodes_checked,
            "lost_files": report.lost_files,
        },
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class TestSameSeedSameBytes:
    def test_churn_experiment_replays_identically(self):
        assert churn_payload(11) == churn_payload(11)

    def test_storage_trace_and_audit_replay_identically(self):
        assert storage_payload(17) == storage_payload(17)


class TestDifferentSeedDiverges:
    def test_churn_experiment_diverges(self):
        assert churn_payload(11) != churn_payload(12)

    def test_storage_trace_diverges(self):
        assert storage_payload(17) != storage_payload(18)
