"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in COMMANDS:
            args = parser.parse_args([command])
            assert args.command == command

    def test_defaults(self):
        args = build_parser().parse_args(["baseline"])
        assert args.nodes == 100
        assert args.scale == 0.25
        assert args.seed == 42

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableau"])

    def test_scale_flags(self):
        args = build_parser().parse_args(
            ["table2", "--nodes", "50", "--scale", "0.1", "--seed", "7"]
        )
        assert (args.nodes, args.scale, args.seed) == (50, 0.1, 7)


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "figure8" in out

    def test_baseline_tiny(self, capsys):
        rc = main(["baseline", "--nodes", "25", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "insert failures %" in out
        assert "paper" in out

    def test_figure5_tiny(self, capsys):
        rc = main(["figure5", "--nodes", "25", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diverted replica ratio" in out

    def test_availability_tiny(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.experiments import churn

        original = churn.run_availability_sweep

        def tiny_sweep(n_nodes, capacity_scale, seed):
            return original(
                k_values=[1], fail_fractions=[0.2],
                n_nodes=20, capacity_scale=0.1, n_files=40, seed=seed,
            )

        monkeypatch.setattr(churn, "run_availability_sweep", tiny_sweep)
        rc = main(["availability", "--nodes", "20", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "available %" in out


class TestFigureCommands:
    """Exercise the remaining figure commands at miniature scale."""

    def test_figure4_tiny(self, capsys):
        from repro.cli import main

        rc = main(["figure4", "--nodes", "25", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        assert "redirect" in capsys.readouterr().out

    def test_figure6_tiny(self, capsys):
        from repro.cli import main

        rc = main(["figure6", "--nodes", "25", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        assert "failed" in capsys.readouterr().out

    def test_table3_tiny(self, capsys):
        from repro.cli import main

        rc = main(["table3", "--nodes", "25", "--scale", "0.05", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t_pri" in out and "Figure 2" in out
