"""Field-axiom and matrix tests for GF(256) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.erasure import GF256

elems = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elems, elems)
    def test_add_commutes_and_is_xor(self, a, b):
        assert GF256.add(a, b) == (a ^ b) == GF256.add(b, a)

    @given(elems)
    def test_add_self_inverse(self, a):
        assert GF256.add(a, a) == 0

    @given(elems, elems)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elems, elems, elems)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elems, elems, elems)
    def test_distributive(self, a, b, c):
        assert GF256.mul(a, GF256.add(b, c)) == GF256.add(
            GF256.mul(a, b), GF256.mul(a, c)
        )

    @given(elems)
    def test_multiplicative_identity(self, a):
        assert GF256.mul(a, 1) == a

    @given(elems)
    def test_mul_by_zero(self, a):
        assert GF256.mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(nonzero, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    @given(nonzero, st.integers(0, 600))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n % 255):
            expected = GF256.mul(expected, a)
        # a^n = a^(n mod 255) for nonzero a (multiplicative group order 255)
        assert GF256.pow(a, n % 255) == expected

    @given(elems)
    def test_closure(self, a):
        assert 0 <= GF256.mul(a, 0x53) < 256


class TestMatrices:
    def test_identity_inverts_to_identity(self):
        eye = [[int(i == j) for j in range(4)] for i in range(4)]
        assert GF256.mat_invert(eye) == eye

    @given(st.integers(0, 10_000))
    def test_random_matrix_inverse_roundtrip(self, seed):
        import random

        rng = random.Random(seed)
        n = 4
        m = [[rng.randrange(256) for _ in range(n)] for _ in range(n)]
        try:
            inv = GF256.mat_invert([row[:] for row in m])
        except ValueError:
            return  # singular, acceptable
        eye = GF256.mat_mul(m, inv)
        assert eye == [[int(i == j) for j in range(n)] for i in range(n)]

    def test_singular_matrix_raises(self):
        m = [[1, 2], [1, 2]]
        with pytest.raises(ValueError):
            GF256.mat_invert(m)

    def test_mat_vec(self):
        m = [[1, 0], [0, 1]]
        assert GF256.mat_vec(m, [7, 9]) == [7, 9]

    def test_vandermonde_shape_and_values(self):
        v = GF256.vandermonde(4, 3)
        assert len(v) == 4 and all(len(r) == 3 for r in v)
        assert v[0] == [1, 0, 0]  # 0^0 = 1, 0^1 = 0, ...
        assert v[1] == [1, 1, 1]
        assert v[2][1] == 2

    def test_vandermonde_top_square_invertible(self):
        for n in (2, 4, 8):
            v = GF256.vandermonde(n, n)
            GF256.mat_invert(v)  # must not raise
