"""Tests for the systematic Reed-Solomon code and file striping (§3.6)."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.erasure import FileStripe, ReedSolomonCode, decode_file, encode_file, storage_overhead


class TestCodeConstruction:
    def test_systematic_prefix(self):
        """The first n_data shards are the data itself."""
        code = ReedSolomonCode(4, 2)
        data = [bytes([i] * 8) for i in range(4)]
        shards = code.encode(data)
        assert shards[:4] == data
        assert len(shards) == 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 100)  # > 256 total

    def test_zero_parity_identity(self):
        code = ReedSolomonCode(3, 0)
        data = [b"ab", b"cd", b"ef"]
        assert code.encode(data) == data

    def test_shard_length_mismatch_rejected(self):
        code = ReedSolomonCode(2, 1)
        with pytest.raises(ValueError):
            code.encode([b"abc", b"de"])

    def test_wrong_shard_count_rejected(self):
        code = ReedSolomonCode(2, 1)
        with pytest.raises(ValueError):
            code.encode([b"ab"])

    def test_overhead_formula(self):
        assert ReedSolomonCode(8, 4).overhead() == pytest.approx(1.5)


class TestDecoding:
    def test_decode_from_data_shards_only(self):
        code = ReedSolomonCode(3, 2)
        data = [os.urandom(16) for _ in range(3)]
        shards = code.encode(data)
        assert code.decode({0: shards[0], 1: shards[1], 2: shards[2]}) == data

    def test_decode_from_parity_only_combinations(self):
        code = ReedSolomonCode(2, 3)
        data = [os.urandom(8), os.urandom(8)]
        shards = code.encode(data)
        assert code.decode({2: shards[2], 3: shards[3]}) == data
        assert code.decode({3: shards[3], 4: shards[4]}) == data

    def test_too_few_shards_raises(self):
        code = ReedSolomonCode(3, 2)
        shards = code.encode([b"aa", b"bb", b"cc"])
        with pytest.raises(ValueError):
            code.decode({0: shards[0], 4: shards[4]})

    def test_unequal_survivor_lengths_rejected(self):
        code = ReedSolomonCode(2, 1)
        with pytest.raises(ValueError):
            code.decode({0: b"ab", 1: b"c"})

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.binary(min_size=1, max_size=400),
        n_data=st.integers(2, 8),
        n_parity=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_property_roundtrip_any_loss_pattern(self, data, n_data, n_parity, seed):
        import random

        stripe = encode_file(data, n_data, n_parity)
        rng = random.Random(seed)
        lose = set(rng.sample(range(n_data + n_parity), n_parity))
        surviving = {
            i: s for i, s in enumerate(stripe.shards) if i not in lose
        }
        assert decode_file(stripe, surviving) == data


class TestStriping:
    def test_padding_removed_on_decode(self):
        data = b"x" * 10  # not divisible by 4
        stripe = encode_file(data, 4, 2)
        surviving = dict(enumerate(stripe.shards))
        assert decode_file(stripe, surviving) == data

    def test_shard_sizes_equal(self):
        stripe = encode_file(os.urandom(1000), 7, 3)
        sizes = {len(s) for s in stripe.shards}
        assert len(sizes) == 1

    def test_stored_bytes_matches_overhead(self):
        data = os.urandom(4000)
        stripe = encode_file(data, 8, 4)
        assert stripe.stored_bytes() == pytest.approx(len(data) * 1.5, rel=0.01)

    def test_invalid_n_data(self):
        with pytest.raises(ValueError):
            encode_file(b"abc", 0, 1)

    def test_empty_file(self):
        stripe = encode_file(b"", 3, 2)
        assert decode_file(stripe, dict(enumerate(stripe.shards))) == b""

    def test_overhead_comparison_favors_rs(self):
        cmp = storage_overhead(k_replicas=5, n_data=8, n_parity=4)
        assert cmp["rs_tolerates"] == cmp["replication_tolerates"] == 4
        assert cmp["rs_overhead"] < cmp["replication_overhead"]
        assert cmp["savings_factor"] == pytest.approx(5 / 1.5)
