"""Tests for the query-load-balance metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import load_balance


class TestLoadBalance:
    def test_empty(self):
        stats = load_balance({})
        assert stats.total_requests == 0
        assert stats.gini == 0.0

    def test_perfectly_flat(self):
        stats = load_balance({i: 10 for i in range(20)})
        assert stats.max_to_mean == pytest.approx(1.0)
        assert stats.gini == pytest.approx(0.0, abs=1e-9)
        assert stats.responders == 20

    def test_single_hotspot(self):
        stats = load_balance({1: 100}, population=100)
        assert stats.gini == pytest.approx(0.99, abs=0.01)
        assert stats.max_to_mean == pytest.approx(100.0)
        assert stats.top5_share == 1.0

    def test_top5_share(self):
        served = {i: 1 for i in range(10)}
        served[99] = 90
        stats = load_balance(served)
        assert stats.top5_share == pytest.approx(94 / 100)

    def test_population_padding_increases_gini(self):
        served = {i: 10 for i in range(10)}
        dense = load_balance(served)
        sparse = load_balance(served, population=100)
        assert sparse.gini > dense.gini

    def test_zero_counts_ignored(self):
        stats = load_balance({1: 5, 2: 0, 3: 5})
        assert stats.responders == 2
        assert stats.total_requests == 10

    @given(st.dictionaries(st.integers(0, 50), st.integers(1, 1000),
                           min_size=1, max_size=40))
    def test_property_gini_bounds(self, served):
        stats = load_balance(served)
        assert 0.0 <= stats.gini < 1.0
        assert stats.max_to_mean >= 1.0 - 1e-9
        assert 0.0 < stats.top5_share <= 1.0

    @given(st.lists(st.integers(1, 100), min_size=2, max_size=30))
    def test_property_scaling_invariant(self, counts):
        """Gini is invariant to multiplying every load by a constant."""
        a = load_balance(dict(enumerate(counts)))
        b = load_balance({i: c * 7 for i, c in enumerate(counts)})
        assert a.gini == pytest.approx(b.gini)
        assert a.max_to_mean == pytest.approx(b.max_to_mean)


class TestServedPerNode:
    def test_network_tallies_responders(self):
        from tests.conftest import build_past

        net = build_past(n=20, capacity=3_000_000, k=3, seed=160)
        owner = net.create_client("o")
        res = net.insert("f", owner, 5_000, net.nodes()[0].node_id)
        for node in net.nodes()[:5]:
            net.lookup(res.file_id, node.node_id)
        served = net.stats.served_per_node()
        assert sum(served.values()) == 5
        assert all(count > 0 for count in served.values())
