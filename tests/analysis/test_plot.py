"""Tests for the ASCII plot renderer."""

import pytest

from repro.analysis import ascii_plot


class TestAsciiPlot:
    def test_renders_title_and_axes(self):
        out = ascii_plot({"a": [(0, 0), (1, 1)]}, title="T", x_label="x", y_label="y")
        assert out.startswith("T\n")
        assert "x: x" in out and "y: y" in out

    def test_markers_present(self):
        out = ascii_plot({"a": [(0, 0), (1, 1)]})
        assert "o" in out

    def test_legend_for_multiple_series(self):
        out = ascii_plot({"a": [(0, 0)], "b": [(1, 1)]})
        assert "o=a" in out and "x=b" in out

    def test_no_legend_for_single_series(self):
        out = ascii_plot({"only": [(0, 0), (1, 1)]}, x_label="x")
        assert "o=only" not in out

    def test_empty_series(self):
        out = ascii_plot({}, title="empty")
        assert "(no data)" in out

    def test_constant_series_does_not_crash(self):
        out = ascii_plot({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "o" in out

    def test_single_point(self):
        out = ascii_plot({"p": [(3, 7)]})
        assert "o" in out

    def test_logy_clamps_nonpositive(self):
        out = ascii_plot({"a": [(0, 0.0), (1, 0.1)]}, logy=True, y_label="r")
        assert "log10" in out

    def test_dimensions_respected(self):
        out = ascii_plot({"a": [(0, 0), (1, 1)]}, width=30, height=8)
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 8
        assert all(len(l.split("|", 1)[1]) == 30 for l in body)

    def test_extremes_on_canvas(self):
        """Min and max of both axes map inside the canvas (no IndexError)."""
        pts = [(-5, -2), (10, 99), (3, 40)]
        out = ascii_plot({"a": pts})
        assert out.count("o") == 3
