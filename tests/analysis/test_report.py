"""Tests for the plain-text report renderers."""

from repro.analysis import format_curve, format_sweep_table, format_table
from repro.experiments.storage import SweepResult


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_floats_formatted(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.23" in out

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out and "y" in out


class TestFormatSweep:
    def test_includes_paper_columns(self):
        sweep = SweepResult(
            rows=[
                {
                    "dist": "d1",
                    "l": 32,
                    "t_pri": 0.1,
                    "t_div": 0.05,
                    "succeed_pct": 99.0,
                    "fail_pct": 1.0,
                    "file_diversion_pct": 3.0,
                    "replica_diversion_pct": 15.0,
                    "util_pct": 97.5,
                }
            ],
            paper={("d1", 32): (99.3, 0.7, 3.5, 16.1, 98.2)},
        )
        out = format_sweep_table(
            sweep, "dist", "Dist", "Table 2", paper_key=lambda r: (r["dist"], r["l"])
        )
        assert "99.00" in out
        assert "99.30" in out  # the paper value
        assert "98.20" in out

    def test_missing_paper_row_dashes(self):
        sweep = SweepResult(
            rows=[
                {
                    "dist": "dX",
                    "l": 8,
                    "t_pri": 0.1,
                    "t_div": 0.05,
                    "succeed_pct": 90.0,
                    "fail_pct": 10.0,
                    "file_diversion_pct": 1.0,
                    "replica_diversion_pct": 2.0,
                    "util_pct": 88.0,
                }
            ],
            paper={},
        )
        out = format_sweep_table(
            sweep, "dist", "Dist", "T", paper_key=lambda r: (r["dist"], r["l"])
        )
        assert "-" in out


class TestFormatCurve:
    def test_downsamples(self):
        curve = [(i / 100, i) for i in range(100)]
        out = format_curve(curve, ["u", "v"], max_points=5)
        lines = out.splitlines()
        assert len(lines) <= 9

    def test_keeps_short_series(self):
        curve = [(0.1, 1), (0.2, 2)]
        out = format_curve(curve, ["u", "v"])
        assert out.count("\n") == 3


class TestCachingSummary:
    def test_format_caching_summary(self):
        from types import SimpleNamespace

        from repro.analysis import format_caching_summary

        results = {
            "gds": SimpleNamespace(hit_ratio=0.4, mean_hops=1.1,
                                   lookup_success_ratio=1.0, utilization=0.97),
            "none": SimpleNamespace(hit_ratio=0.0, mean_hops=1.5,
                                    lookup_success_ratio=1.0, utilization=0.97),
        }
        out = format_caching_summary(results, title="F8")
        assert out.startswith("F8")
        assert "gds" in out and "none" in out
        assert "0.40" in out


class TestSummarizeRun:
    def test_one_line_summary(self):
        from repro.analysis import summarize_run
        from repro.experiments import StorageRunConfig, run_storage_trace

        run = run_storage_trace(
            StorageRunConfig(n_nodes=15, capacity_scale=0.05, n_files=60, seed=1)
        )
        line = summarize_run(run)
        assert "success=" in line and "util=" in line and "\n" not in line
