"""Smartcards and the card issuer (§2.3).

Each PAST node and each user holds a smartcard with a private/public key
pair; the card's public key is signed by the issuer for certification.
Cards generate and verify certificates and maintain the user's storage
quota, ensuring demand for storage cannot exceed supply.  Read-only
clients need no card.
"""

from __future__ import annotations

from typing import Optional

from .certificates import (
    CertificateError,
    FileCertificate,
    ReclaimCertificate,
    ReclaimReceipt,
    StoreReceipt,
)
from .keys import KeyPair


class QuotaExceededError(RuntimeError):
    """An insert would exceed the owner's storage quota."""


class Smartcard:
    """One smartcard: keys, certificate generation, quota ledger.

    The quota is debited by ``size * k`` at insert time and credited back
    when verified reclaim receipts are presented, as described in §2.2.
    """

    def __init__(self, label: str, issuer: "SmartcardIssuer", quota: Optional[int] = None):
        self.label = label
        self.keypair = KeyPair(label, seed=issuer.seed)
        self.issuer_signature = issuer.certify(self.keypair.public)
        self.issuer_public = issuer.keypair.public
        self.quota = quota  # None = unmetered (used by infrastructure tests)
        self.quota_used = 0

    @property
    def public_key(self) -> bytes:
        return self.keypair.public

    def verify_issuer(self) -> None:
        """Check that this card was certified by its claimed issuer."""
        if not KeyPair.verify(self.issuer_public, self.keypair.public, self.issuer_signature):
            raise CertificateError("smartcard not certified by issuer")

    # ----------------------------------------------------------- quota side

    def quota_remaining(self) -> Optional[int]:
        if self.quota is None:
            return None
        return self.quota - self.quota_used

    def debit(self, size: int, k: int) -> None:
        """Debit ``size * k`` against the quota (raises if insufficient)."""
        need = size * k
        if self.quota is not None and self.quota_used + need > self.quota:
            raise QuotaExceededError(
                f"quota exceeded: need {need}, remaining {self.quota - self.quota_used}"
            )
        self.quota_used += need

    def credit(self, size: int, k: int) -> None:
        """Credit the quota back (on failed insert or verified reclaim)."""
        self.quota_used = max(0, self.quota_used - size * k)

    def redeem_reclaim_receipts(self, receipts, k: int) -> None:
        """Verify reclaim receipts and credit the quota accordingly."""
        for receipt in receipts:
            receipt.verify()
        if receipts:
            self.credit(receipts[0].freed_bytes, len(receipts))

    # ---------------------------------------------------- certificate side

    def issue_file_certificate(
        self,
        file_id: int,
        size: int,
        k: int,
        salt: int,
        creation_date: int,
        content: bytes = None,
    ) -> FileCertificate:
        return FileCertificate.issue(
            file_id, size, k, salt, creation_date, self.keypair, content=content
        )

    def issue_store_receipt(self, file_id: int, node_id: int, diverted: bool) -> StoreReceipt:
        return StoreReceipt.issue(file_id, node_id, diverted, self.keypair)

    def issue_reclaim_certificate(self, file_id: int) -> ReclaimCertificate:
        return ReclaimCertificate.issue(file_id, self.keypair)

    def issue_reclaim_receipt(self, file_id: int, node_id: int, freed: int) -> ReclaimReceipt:
        return ReclaimReceipt.issue(file_id, node_id, freed, self.keypair)


class SmartcardIssuer:
    """The card issuer whose private key certifies all smartcards."""

    def __init__(self, label: str = "issuer", seed: bytes = b"past"):
        self.seed = seed
        self.keypair = KeyPair(f"issuer:{label}", seed=seed)

    def certify(self, card_public: bytes) -> bytes:
        return self.keypair.sign(card_public)

    def issue_card(self, label: str, quota: Optional[int] = None) -> Smartcard:
        return Smartcard(label, self, quota=quota)
