"""File certificates, store receipts and reclaim certificates (§2.2).

* A **file certificate** is issued (and signed) by the owner's smartcard
  at insert time.  It binds the fileId to the content hash, the
  replication factor ``k``, the salt and a creation date, letting storage
  nodes verify what they are asked to store and letting readers verify
  what they fetched.
* A **store receipt** is returned by each node that accepted a replica;
  the client checks that it collected ``k`` distinct receipts.
* A **reclaim certificate** proves to replica holders that the party
  requesting reclamation owns the file; **reclaim receipts** flow back and
  are redeemed against the owner's storage quota.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .keys import KeyPair, SignatureError


class CertificateError(ValueError):
    """A certificate failed verification."""


def simulated_content_hash(file_id: int, size: int) -> bytes:
    """Stand-in for SHA-1 over file content.

    The simulator usually does not materialize file bytes; the hash is
    derived from the (quasi-unique) fileId and size, preserving the
    protocol property that a mismatch between certificate and received
    content is detectable.  When real bytes are supplied (small demo
    files, erasure-coded shards) :func:`content_hash` is used instead.
    """
    return hashlib.sha1(b"content|%d|%d" % (file_id, size)).digest()


def content_hash(content: bytes) -> bytes:
    """SHA-1 over actual file content (used when bytes are materialized)."""
    return hashlib.sha1(content).digest()


def corrupted_content_hash(file_id: int, size: int) -> bytes:
    """The hash a reader computes over rotted or torn on-disk bytes.

    The simulator flags corruption instead of flipping real bytes; this
    is the digest such a read observes — deterministically distinct from
    both :func:`simulated_content_hash` and any real content hash, so a
    verified read (recompute + compare against the certificate) detects
    the damage exactly as it would with materialized bytes.
    """
    return hashlib.sha1(b"corrupt|%d|%d" % (file_id, size)).digest()


@dataclass(frozen=True)
class FileCertificate:
    """Signed metadata accompanying every inserted file."""

    file_id: int
    content_hash: bytes
    size: int
    k: int
    salt: int
    creation_date: int
    owner_public: bytes
    signature: bytes = field(repr=False, default=b"")

    @staticmethod
    def issue(
        file_id: int,
        size: int,
        k: int,
        salt: int,
        creation_date: int,
        owner_key: KeyPair,
        content: bytes = None,
    ) -> "FileCertificate":
        if content is not None:
            digest = content_hash(content)
        else:
            digest = simulated_content_hash(file_id, size)
        message = FileCertificate._message(
            file_id, digest, size, k, salt, creation_date, owner_key.public
        )
        return FileCertificate(
            file_id=file_id,
            content_hash=digest,
            size=size,
            k=k,
            salt=salt,
            creation_date=creation_date,
            owner_public=owner_key.public,
            signature=owner_key.sign(message),
        )

    @staticmethod
    def _message(file_id, content_hash, size, k, salt, creation_date, owner_public) -> bytes:
        return b"|".join(
            [
                b"filecert",
                b"%d" % file_id,
                content_hash,
                b"%d" % size,
                b"%d" % k,
                b"%d" % salt,
                b"%d" % creation_date,
                owner_public,
            ]
        )

    def verify(self) -> None:
        """Check the owner signature and internal consistency.

        Storage nodes run this before accepting a replica; they also
        recompute the content hash of the received file and compare it to
        the certified one, which :meth:`verify_content` models.
        """
        message = self._message(
            self.file_id,
            self.content_hash,
            self.size,
            self.k,
            self.salt,
            self.creation_date,
            self.owner_public,
        )
        if not KeyPair.verify(self.owner_public, message, self.signature):
            raise CertificateError("file certificate signature invalid")
        if self.k < 1:
            raise CertificateError("file certificate has non-positive k")
        if self.size < 0:
            raise CertificateError("file certificate has negative size")

    def verify_content(self, received_size: int, content: bytes = None) -> None:
        """Recompute the content hashcode and compare with the certificate."""
        if content is not None:
            if content_hash(content) != self.content_hash:
                raise CertificateError("content hash mismatch")
            return
        if simulated_content_hash(self.file_id, received_size) != self.content_hash:
            raise CertificateError("content hash mismatch")


@dataclass(frozen=True)
class StoreReceipt:
    """Issued by a node that accepted responsibility for a replica."""

    file_id: int
    node_id: int
    diverted: bool
    node_public: bytes
    signature: bytes = field(repr=False, default=b"")

    @staticmethod
    def issue(file_id: int, node_id: int, diverted: bool, node_key: KeyPair) -> "StoreReceipt":
        message = StoreReceipt._message(file_id, node_id, diverted, node_key.public)
        return StoreReceipt(file_id, node_id, diverted, node_key.public, node_key.sign(message))

    @staticmethod
    def _message(file_id, node_id, diverted, node_public) -> bytes:
        return b"receipt|%d|%d|%d|" % (file_id, node_id, int(diverted)) + node_public

    def verify(self) -> None:
        message = self._message(self.file_id, self.node_id, self.diverted, self.node_public)
        if not KeyPair.verify(self.node_public, message, self.signature):
            raise CertificateError("store receipt signature invalid")


@dataclass(frozen=True)
class ReclaimCertificate:
    """Proves the legitimate owner is requesting storage reclamation."""

    file_id: int
    owner_public: bytes
    signature: bytes = field(repr=False, default=b"")

    @staticmethod
    def issue(file_id: int, owner_key: KeyPair) -> "ReclaimCertificate":
        message = ReclaimCertificate._message(file_id, owner_key.public)
        return ReclaimCertificate(file_id, owner_key.public, owner_key.sign(message))

    @staticmethod
    def _message(file_id, owner_public) -> bytes:
        return b"reclaim|%d|" % file_id + owner_public

    def verify(self, expected_owner_public: bytes) -> None:
        """Replica holders check both signature and ownership."""
        if self.owner_public != expected_owner_public:
            raise CertificateError("reclaim requested by non-owner")
        message = self._message(self.file_id, self.owner_public)
        if not KeyPair.verify(self.owner_public, message, self.signature):
            raise CertificateError("reclaim certificate signature invalid")


@dataclass(frozen=True)
class ReclaimReceipt:
    """Issued by a replica holder after freeing the storage."""

    file_id: int
    node_id: int
    freed_bytes: int
    node_public: bytes
    signature: bytes = field(repr=False, default=b"")

    @staticmethod
    def issue(file_id: int, node_id: int, freed_bytes: int, node_key: KeyPair) -> "ReclaimReceipt":
        message = ReclaimReceipt._message(file_id, node_id, freed_bytes, node_key.public)
        return ReclaimReceipt(
            file_id, node_id, freed_bytes, node_key.public, node_key.sign(message)
        )

    @staticmethod
    def _message(file_id, node_id, freed_bytes, node_public) -> bytes:
        return b"reclaimed|%d|%d|%d|" % (file_id, node_id, freed_bytes) + node_public

    def verify(self) -> None:
        message = self._message(self.file_id, self.node_id, self.freed_bytes, self.node_public)
        if not KeyPair.verify(self.node_public, message, self.signature):
            raise CertificateError("reclaim receipt signature invalid")
