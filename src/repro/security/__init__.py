"""Simulated security substrate for PAST (§2.3 of the paper).

PAST's security rests on smartcards held by nodes and users: the cards
hold key pairs, generate and verify file/store/reclaim certificates, and
maintain storage quotas.  The simulator has no wire-level adversary, so
signatures are implemented with HMAC over a per-key secret — structurally
identical to public-key signatures from the protocol's point of view
(unforgeable without the key, verifiable by anyone holding the public
part) while staying cheap enough for million-file traces.
"""

from .keys import KeyPair, SignedBlob, SignatureError
from .smartcard import Smartcard, SmartcardIssuer
from .identity import NodeIdentity
from .certificates import (
    FileCertificate,
    ReclaimCertificate,
    ReclaimReceipt,
    StoreReceipt,
    CertificateError,
)

__all__ = [
    "KeyPair",
    "SignedBlob",
    "SignatureError",
    "Smartcard",
    "SmartcardIssuer",
    "NodeIdentity",
    "FileCertificate",
    "ReclaimCertificate",
    "ReclaimReceipt",
    "StoreReceipt",
    "CertificateError",
]
