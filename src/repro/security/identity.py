"""Signed node identities: verifiable nodeId-to-address bindings (§2.3).

"All routing table entries (i.e. nodeId to IP address mappings) are
signed by the associated node and can be verified by other nodes.
Therefore, a malicious node may at worst suppress valid entries, but it
cannot forge entries."

A :class:`NodeIdentity` is the announcement a node distributes about
itself: its nodeId, its network address, its public key (certified by the
smartcard issuer) and a self-signature over the binding.  Verification
checks both the issuer certification of the key and the self-signature,
so no party can announce a binding for a nodeId whose key it does not
hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .certificates import CertificateError
from .keys import KeyPair
from .smartcard import Smartcard


@dataclass(frozen=True)
class NodeIdentity:
    """A self-signed, issuer-certified (nodeId, address) binding."""

    node_id: int
    address: str
    public_key: bytes
    issuer_public: bytes
    issuer_signature: bytes = field(repr=False)
    signature: bytes = field(repr=False)

    @staticmethod
    def issue(card: Smartcard, node_id: int, address: str) -> "NodeIdentity":
        """Create the identity record a node announces about itself."""
        message = NodeIdentity._message(node_id, address, card.public_key)
        return NodeIdentity(
            node_id=node_id,
            address=address,
            public_key=card.public_key,
            issuer_public=card.issuer_public,
            issuer_signature=card.issuer_signature,
            signature=card.keypair.sign(message),
        )

    @staticmethod
    def _message(node_id: int, address: str, public_key: bytes) -> bytes:
        return b"identity|%d|" % node_id + address.encode("utf-8") + b"|" + public_key

    def verify(self) -> None:
        """Raise :class:`CertificateError` unless the binding is genuine.

        Checks (1) the issuer certified the public key (the smartcard
        chain) and (2) the key's holder signed this exact
        (nodeId, address) binding.
        """
        if not KeyPair.verify(self.issuer_public, self.public_key, self.issuer_signature):
            raise CertificateError("identity key not certified by issuer")
        message = self._message(self.node_id, self.address, self.public_key)
        if not KeyPair.verify(self.public_key, message, self.signature):
            raise CertificateError("identity binding signature invalid")
