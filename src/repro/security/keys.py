"""Simulated public-key cryptography.

A :class:`KeyPair` mimics an asymmetric key pair: ``public`` is a byte
string safe to hand out (it seeds nodeId assignment and fileId hashing,
exactly as in the paper); ``sign`` produces a tag over a message that
``verify`` checks.  The tag is an HMAC keyed by the private secret, with
the verifier resolving the secret through a process-local key registry.
That registry stands in for the mathematics of signature verification: a
forger without the private secret cannot mint valid tags, and any party
can check one — the two properties PAST's certificate flow relies on.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict


class SignatureError(ValueError):
    """A signature failed verification."""


#: Process-local registry mapping public keys to signing secrets.  This is
#: the simulation stand-in for asymmetric verification; see module docstring.
_KEY_REGISTRY: Dict[bytes, bytes] = {}


class KeyPair:
    """A simulated private/public key pair."""

    __slots__ = ("public", "_secret")

    def __init__(self, owner_label: str, seed: bytes = b""):
        material = owner_label.encode("utf-8") + b"|" + seed
        self._secret = hashlib.sha256(b"secret|" + material).digest()
        self.public = hashlib.sha256(b"public|" + material).digest()
        _KEY_REGISTRY[self.public] = self._secret

    def sign(self, message: bytes) -> bytes:
        """Produce a signature tag over ``message``."""
        return hmac.new(self._secret, message, hashlib.sha256).digest()

    @staticmethod
    def verify(public: bytes, message: bytes, tag: bytes) -> bool:
        """Check a signature allegedly produced by the holder of ``public``."""
        secret = _KEY_REGISTRY.get(public)
        if secret is None:
            return False
        expected = hmac.new(secret, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KeyPair(public={self.public.hex()[:12]}...)"


class SignedBlob:
    """A message plus a signature and the signer's public key."""

    __slots__ = ("message", "tag", "public")

    def __init__(self, message: bytes, keypair: KeyPair):
        self.message = message
        self.tag = keypair.sign(message)
        self.public = keypair.public

    def check(self) -> None:
        """Raise :class:`SignatureError` if the signature does not verify."""
        if not KeyPair.verify(self.public, self.message, self.tag):
            raise SignatureError("signature verification failed")
