"""Stable seed derivation for sub-streams of randomness.

All randomness in a deployment flows from ``PastConfig.seed`` (§5 setup:
one seed, one trajectory).  Components that need independent streams —
capacity sampling, insert origins, the network's own RNG — must not
derive them with ad-hoc arithmetic: ``seed ^ hash((k, fraction)) & 0xFFFF``
is both precedence-surprising (``&`` binds tighter than ``^``) and
process-dependent (builtin ``hash`` is salted by PYTHONHASHSEED), and
``seed ^ 0xCAFE``-style constants collide whenever two call sites pick
the same constant.

:func:`derive_seed` maps the master seed plus any repr-stable labels
(ints, floats, strings, tuples thereof) to a 63-bit sub-seed through
SHA-256, so distinct component labels give independent streams and the
same inputs give the same stream on every platform and process.
"""

from __future__ import annotations

import hashlib


def derive_seed(master: int, *components: object) -> int:
    """A stable 63-bit sub-seed from the master seed and component labels.

    ``repr`` is the serialization: for ints, floats (shortest round-trip
    repr), strings, bools and nested tuples of those it is identical
    across processes and platforms, unlike builtin ``hash``.
    """
    payload = repr((int(master),) + components).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") >> 1
