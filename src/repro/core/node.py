"""A PAST storage node: the application layered over a Pastry node.

Implements the storage-management behaviour of §3 (replica acceptance,
replica diversion with pointer bookkeeping on nodes *A*, *B* and *C*,
replica maintenance across joins and failures) and the per-node half of
the caching behaviour of §4 (cache lookup and population hooks).

Terminology from the paper, used throughout:

* node **A** — a node among the k numerically closest to a fileId that
  cannot accommodate the replica locally and *diverts* it.  A keeps a
  *primary diversion pointer* in its file table.
* node **B** — the leaf-set node chosen to hold the diverted replica.
* node **C** — the node with the k+1-th closest nodeId, which holds a
  *backup pointer* so that A's failure does not orphan B's replica.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Set

from ..netsim.faults import READ_CORRUPT, READ_OK
from ..pastry import idspace
from ..pastry.node import PastryApplication, PastryNode
from ..security import CertificateError, FileCertificate, Smartcard, StoreReceipt
from .config import PastConfig
from .messages import InsertRequest, LookupRequest, ReclaimRequest
from .storage import LocalStore

if TYPE_CHECKING:  # pragma: no cover
    from .network import PastNetwork


class PastNode(PastryApplication):
    """Storage layer of one PAST node."""

    def __init__(
        self,
        pastry_node: PastryNode,
        store: LocalStore,
        smartcard: Smartcard,
        config: PastConfig,
        network: "PastNetwork",
    ):
        self.pastry = pastry_node
        self.store = store
        self.smartcard = smartcard
        self.config = config
        self.network = network
        pastry_node.app = self

    # ------------------------------------------------------------ identity

    @property
    def node_id(self) -> int:
        return self.pastry.node_id

    @property
    def leafset(self):
        return self.pastry.leafset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PastNode({idspace.format_id(self.node_id, self.config.b, 8)}...)"

    # ----------------------------------------------------- replica-set math

    def is_replica_root_for(self, key: int) -> bool:
        """Am I among the k nodes numerically closest to ``key``?

        A node can only answer this authoritatively when the key falls
        within its leaf set's span (it then knows every node near the
        key); outside that span the answer is no.
        """
        ls = self.leafset
        if not ls.covers(key):
            return False
        return self.node_id in ls.closest_nodes(key, self.config.k)

    def replica_set_for(self, key: int) -> List[int]:
        """The k nodes numerically closest to ``key``, from my leaf set."""
        return self.leafset.closest_nodes(key, self.config.k)

    # --------------------------------------------------------- Pastry hooks

    def forward(self, node, message, key: int, next_id: Optional[int]) -> bool:
        if isinstance(message, LookupRequest):
            return not self._try_satisfy_lookup(message)
        if isinstance(message, (InsertRequest, ReclaimRequest)):
            if self.is_replica_root_for(key):
                message.coordinator_id = self.node_id
                return False  # stop routing; network layer coordinates here
        return True

    def deliver(self, node, message, key: int) -> None:
        if isinstance(message, (InsertRequest, ReclaimRequest)):
            # We are the numerically closest node; coordinate even if the
            # leaf-set heuristic in forward() did not fire (tiny networks).
            message.coordinator_id = self.node_id

    def on_node_joined(self, node, new_id: int) -> None:
        if self.network.maintenance_enabled:
            self._maintain_after_join(new_id)

    def on_node_failed(self, node, failed_id: int) -> None:
        if self.network.maintenance_enabled:
            self._maintain_after_failure(failed_id)

    # --------------------------------------------------------------- lookup

    def _try_satisfy_lookup(self, msg: LookupRequest) -> bool:
        """Serve a lookup locally if possible (replica, cache or pointer).

        Every serve is a *verified read* (§2.2): the content hash of the
        copy about to be returned is recomputed and compared against the
        file certificate.  A corrupt or unreadable copy is never served —
        the attempt fails over to the next holder (via the client's
        hedging) after read-repair has been triggered on the bad copy.
        """
        fid = msg.file_id
        replica = self.store.primaries.get(fid)
        source = "primary"
        if replica is None:
            replica = self.store.diverted_in.get(fid)
            source = "diverted"
        if replica is not None:
            verdict = self.store.verify_replica(fid)
            if verdict == READ_OK:
                return self._respond(msg, source, replica.certificate)
            self._note_failed_read(msg, fid, verdict)
        if self.store.cache.enabled and self.store.verified_cache_hit(fid):
            size = self.store.cache.size_of(fid)
            cert = self.network.certificate_of(fid)
            if cert is not None and cert.size == size:
                return self._respond(msg, "cache", cert)
        pointer = self.store.pointers.get(fid)
        if pointer is not None and pointer.primary:
            target = self.network.past_node_or_none(pointer.target_id)
            if target is not None and target.store.holds_file(fid):
                # One additional RPC to fetch the diverted replica (§3.3).
                msg.extra_hops += 1
                _, verdict = self.network.transport.send(
                    self.node_id, pointer.target_id,
                    target.store.verify_replica, fid, reliable=True,
                )
                if verdict == READ_OK:
                    return self._respond(msg, "pointer", pointer.certificate)
                target._note_failed_read(msg, fid, verdict)
        return False

    def _note_failed_read(self, msg: LookupRequest, fid: int, verdict: str) -> None:
        """A local copy failed its verified read: count the failover and,
        for sticky corruption, start read-repair before the lookup moves
        on to the next holder (transient errors just retry later)."""
        msg.integrity_failures += 1
        self.network.integrity.failed_reads += 1
        if verdict == READ_CORRUPT:
            self.read_repair(fid)

    def _respond(self, msg: LookupRequest, source: str, cert: FileCertificate) -> bool:
        msg.source = source
        msg.responder_id = self.node_id
        msg.certificate = cert
        return True

    def cache_routed_file(self, cert: FileCertificate) -> bool:
        """Cache a file routed through this node (insert or lookup, §4)."""
        if self.store.holds_file(cert.file_id):
            return False
        if self.store.cache.consider(cert.file_id, cert.size):
            self.store.note_cached(cert.file_id)
            return True
        return False

    # --------------------------------------------------------------- insert

    def coordinate_insert(self, request: InsertRequest) -> bool:
        """Run the insert protocol as the first of the k closest nodes.

        Verifies the certificate, forwards store requests to the full
        replica set, and rolls everything back if any member can neither
        store nor divert its replica (triggering file diversion at the
        client, §3.4).
        """
        cert = request.certificate
        try:
            cert.verify()
            cert.verify_content(cert.size, request.content)
        except CertificateError as exc:
            request.failure_reason = f"certificate: {exc}"
            return False
        if self.network.is_file_registered(cert.file_id):
            request.failure_reason = "fileId collision"
            return False

        key = idspace.routing_key(cert.file_id)
        # The replication factor is per-file (clients choose k per insert,
        # §2); the certificate carries it.
        replica_set = self.leafset.closest_nodes(key, cert.k)
        if len(replica_set) < cert.k:
            request.failure_reason = "insufficient nodes for k replicas"
            return False

        placed: List[int] = []
        for member_id in replica_set:
            # The leaf set can name a member that crashed but has not
            # been detected yet (the store RPC goes out and times out:
            # ``call=None``), and the RPC itself can be lost in flight;
            # either way this member cannot acknowledge its replica, so
            # the insert must roll back (and the client re-salts or
            # retries) rather than crash the coordinator.
            member = self.network.past_node_or_none(member_id)
            delivered, stored = self.network.transport.send(
                self.node_id, member_id,
                None if member is None else member.accept_replica,
                request, replica_set,
            )
            if delivered and stored:
                placed.append(member_id)
            else:
                for placed_id in placed:
                    holder = self.network.past_node_or_none(placed_id)
                    if holder is not None:
                        holder.abort_replica(cert.file_id)
                request.receipts.clear()
                request.replica_diversions = 0
                if not delivered and request.failure_reason is None:
                    request.failure_reason = "replica-set member unreachable"
                if request.failure_reason is None:
                    request.failure_reason = "no storage within leaf set"
                return False
        request.accepted = True
        return True

    def accept_replica(self, request: InsertRequest, replica_set: List[int]) -> bool:
        """Store a primary replica, or divert it within the leaf set (§3.3)."""
        cert = request.certificate
        try:
            cert.verify()
            cert.verify_content(cert.size, request.content)
        except CertificateError as exc:
            request.failure_reason = f"certificate: {exc}"
            return False

        if self.store.can_accept(cert.size, self.config.t_pri):
            self.store.store_replica(cert, diverted=False)
            request.receipts.append(
                self.smartcard.issue_store_receipt(cert.file_id, self.node_id, False)
            )
            return True

        # Replica diversion: pick node B, install pointers on A (self) and C.
        diverted_to = self._divert_replica(cert, replica_set)
        if diverted_to is None:
            return False
        request.replica_diversions += 1
        request.receipts.append(
            self.smartcard.issue_store_receipt(cert.file_id, self.node_id, True)
        )
        return True

    def _divert_replica(self, cert: FileCertificate, replica_set: List[int]) -> Optional[int]:
        """Divert one replica; returns B's nodeId or None if diversion failed."""
        key = idspace.routing_key(cert.file_id)
        b_id = self._choose_diversion_target(cert.file_id, replica_set)
        if b_id is None:
            return None
        b_node = self.network.past_node(b_id)
        _, accepted = self.network.transport.send(
            self.node_id, b_id, b_node.accept_diverted_replica, cert,
            reliable=True, referrer_id=self.node_id,
        )
        if not accepted:
            return None
        self.store.add_pointer(cert, b_id, primary=True)
        self._install_backup_pointer(cert, b_id, key, exclude=set(replica_set))
        return b_id

    def _choose_diversion_target(
        self, file_id: int, replica_set: Iterable[int]
    ) -> Optional[int]:
        """Pick node B per §3.3.1: in my leaf set, not among the k closest,
        not already holding a diverted replica of this file; maximal free
        space (or uniform-random, as an ablation)."""
        exclude = set(replica_set)
        exclude.add(self.node_id)
        candidates = []
        # Sorted: the candidate order feeds rng.choice under the "random"
        # ablation policy, so it must be hashseed-independent.
        for member_id in self.leafset.sorted_members():
            if member_id in exclude:
                continue
            member = self.network.past_node_or_none(member_id)
            if member is None:
                continue
            if member.store.holds_file(file_id):
                continue
            candidates.append(member)
        if not candidates:
            return None
        if self.config.divert_target_policy == "random":
            return self.network.rng.choice(candidates).node_id
        best = max(candidates, key=lambda n: (n.store.free, -n.node_id))
        return best.node_id

    def _install_backup_pointer(
        self, cert: FileCertificate, b_id: int, key: int, exclude: Set[int]
    ) -> None:
        """Install C's backup pointer on the k+1-th closest node (§3.3).

        If B itself is the k+1-th closest the replica already sits there
        and no backup pointer is needed.
        """
        ordered = self.leafset.closest_nodes(key, cert.k + 1)
        extra = [n for n in ordered if n not in exclude]
        if not extra:
            return
        c_id = extra[0]
        if c_id == b_id:
            return
        c_node = self.network.past_node_or_none(c_id)
        b_node = self.network.past_node_or_none(b_id)
        if c_node is None or b_node is None:
            return
        if c_node.store.references_file(cert.file_id):
            # C already has an entry of its own for this file; never
            # clobber it with a backup pointer.
            return
        self.network.transport.send(
            self.node_id, c_id, c_node.store.install_pointer, cert, b_id,
            reliable=True, primary=False,
        )
        replica = b_node.store.diverted_in.get(cert.file_id)
        if replica is not None:
            replica.referrers.add(c_id)

    def accept_diverted_replica(self, cert: FileCertificate, referrer_id: int) -> bool:
        """Node B's half of replica diversion: the stricter t_div policy."""
        try:
            cert.verify()
        except CertificateError:
            return False
        if self.store.holds_file(cert.file_id):
            return False
        if not self.store.can_accept(cert.size, self.config.t_div):
            return False
        replica = self.store.store_replica(cert, diverted=True)
        replica.referrers.add(referrer_id)
        return True

    def abort_replica(self, file_id: int) -> None:
        """Roll back this node's contribution to a failed insert."""
        pointer = self.store.drop_pointer(file_id)
        if pointer is not None and pointer.primary:
            target = self.network.past_node_or_none(pointer.target_id)
            if target is not None:
                replica = target.store.drop_replica(file_id)
                if replica is not None:
                    for ref in sorted(replica.referrers):
                        if ref != self.node_id:
                            ref_node = self.network.past_node_or_none(ref)
                            if ref_node is not None:
                                ref_node.store.drop_pointer(file_id)
            return
        self.store.drop_replica(file_id)

    # -------------------------------------------------------------- reclaim

    def coordinate_reclaim(self, request: ReclaimRequest) -> bool:
        """Run the reclaim protocol within the fileId's neighborhood (§2.2)."""
        fid = request.certificate.file_id
        owner_public = self.network.owner_of(fid)
        if owner_public is None:
            request.failure_reason = "unknown file"
            return False
        try:
            request.certificate.verify(owner_public)
        except CertificateError as exc:
            request.failure_reason = str(exc)
            return False

        neighborhood = set(self.leafset.members())
        neighborhood.add(self.node_id)
        reclaimed_any = False
        for member_id in sorted(neighborhood):
            member = self.network.past_node_or_none(member_id)
            if member is None:
                continue
            receipt = member.reclaim_local(fid)
            if receipt is not None:
                request.receipts.append(receipt)
                reclaimed_any = True
        if not reclaimed_any:
            request.failure_reason = "no replicas found"
        return reclaimed_any

    def reclaim_local(self, file_id: int):
        """Free local storage for a reclaimed file; returns a receipt or None.

        Primary-pointer holders also tear down the diverted replica at B
        and B's other referrer bookkeeping.  Cached copies are *not*
        touched: reclaim has weaker-than-delete semantics (§2.2), and
        caches age out naturally.
        """
        freed = 0
        acted = False
        pointer = self.store.drop_pointer(file_id)
        if pointer is not None:
            acted = True
            if pointer.primary:
                target = self.network.past_node_or_none(pointer.target_id)
                if target is not None:
                    replica = target.store.drop_replica(file_id)
                    if replica is not None:
                        freed += replica.size
        replica = self.store.drop_replica(file_id)
        if replica is not None:
            acted = True
            freed += replica.size
        if not acted:
            return None
        return self.smartcard.issue_reclaim_receipt(file_id, self.node_id, freed)

    # ---------------------------------------------------------- maintenance

    def _responsible_file_ids(self) -> List[int]:
        """Files whose invariant this node may need to initiate repairs for.

        Any local entry qualifies — primary or diverted replica, primary or
        backup pointer — because after churn the designated repair actor
        (the closest kset member with a valid distinct entry) can be
        holding any of these.  The actor rule inside
        :meth:`_restore_file_invariant` still guarantees each repair runs
        exactly once.
        """
        return list(self.store.file_ids())

    def _maintain_after_join(self, new_id: int) -> None:
        """Restore the storage invariant after ``new_id`` joined my leaf set.

        For every file I am responsible for, if the newcomer is now among
        the k closest it must acquire the file (replica or §3.5 pointer to
        the displaced former k-th node); the displaced node may then
        discard its replica.
        """
        for fid in self._responsible_file_ids():
            cert = self.store.certificate_for(fid)
            if cert is None:  # pragma: no cover - entry implies certificate
                continue
            key = idspace.routing_key(fid)
            kset = self.leafset.closest_nodes(key, cert.k)
            if new_id not in kset or self.node_id not in kset:
                continue
            self._restore_file_invariant(fid, newcomer_id=new_id)
            displaced = self._displaced_member(key, kset, new_id, cert.k)
            if displaced is not None:
                displaced_node = self.network.past_node_or_none(displaced)
                if displaced_node is None:
                    continue
                # Confirm-reread: _restore_file_invariant suspends at
                # its repair RPCs; only prompt a discard if the
                # displaced holder still has the primary replica
                # (maybe_discard's own first check, re-read here so the
                # decision is post-suspension).
                if fid not in displaced_node.store.primaries:
                    continue
                displaced_node.maybe_discard(fid)

    def _maintain_after_failure(self, failed_id: int) -> None:
        """Re-create replicas lost to a failed leaf-set member (§3.5)."""
        for fid in self._responsible_file_ids():
            self._restore_file_invariant(fid)

    def _displaced_member(
        self, key: int, kset: List[int], new_id: int, k: int
    ) -> Optional[int]:
        """The node pushed out of the k closest by the newcomer, if any."""
        old_members = [m for m in self.leafset.members() | {self.node_id} if m != new_id]
        old_kset = idspace.sort_by_distance(old_members, key)[:k]
        displaced = [m for m in old_kset if m not in kset]
        return displaced[0] if displaced else None

    def _member_references(self, member_id: int, fid: int) -> bool:
        member = self.network.past_node_or_none(member_id)
        return member is not None and member.store.references_file(fid)

    def _resolve_entries(self, fid: int, kset: List[int]) -> dict:
        """Map each kset member to the physical replica its entry resolves
        to (itself for a stored replica, the pointer target for a valid
        diversion pointer, None for a missing or dangling entry)."""
        out = {}
        for member_id in kset:
            member = self.network.past_node_or_none(member_id)
            if member is None:
                out[member_id] = None
                continue
            if member.store.holds_file(fid):
                out[member_id] = member_id
                continue
            pointer = member.store.pointers.get(fid)
            if pointer is not None:
                target = self.network.past_node_or_none(pointer.target_id)
                if target is not None and target.store.holds_file(fid):
                    out[member_id] = pointer.target_id
                    continue
            out[member_id] = None
        return out

    def _restore_file_invariant(self, fid: int, newcomer_id: Optional[int] = None) -> None:
        """Ensure each of the k closest nodes holds a replica or a pointer
        to a *distinct* diverted replica.

        Entries are resolved to physical replicas; members whose entry is
        missing, dangling, or a duplicate of a closer member's replica
        must (re-)acquire the file.  Only the numerically closest member
        with a valid distinct entry acts, so the repair runs exactly once
        even though every witness of a membership change calls in.
        """
        cert = self.store.certificate_for(fid)
        if cert is None:  # pragma: no cover - callers hold an entry
            return
        key = idspace.routing_key(fid)
        kset = self.leafset.closest_nodes(key, cert.k)
        entries = self._resolve_entries(fid, kset)
        seen: Set[int] = set()
        needs: List[int] = []
        valid: List[int] = []
        for member_id in kset:  # closest_nodes returns distance order
            target = entries[member_id]
            if target is None or target in seen:
                needs.append(member_id)
                continue
            seen.add(target)
            valid.append(member_id)
            member = self.network.past_node_or_none(member_id)
            pointer = member.store.pointers.get(fid) if member else None
            if pointer is not None and not pointer.primary:
                # A pointer now serving as a kset entry must answer lookups.
                member.store.set_pointer_primary(fid, True)
        if not needs:
            self.network.degraded_files.discard(fid)
            return
        if valid:
            if valid[0] != self.node_id:
                return  # a closer valid holder is responsible
        else:
            # No kset member has a usable entry, but the file may survive
            # on an outside holder (e.g. a diverted replica whose referrers
            # all failed at once).  The closest physical holder in the
            # neighborhood takes responsibility.
            if not self.store.holds_file(fid):
                return
            holders = [
                m
                for m in self.leafset.members() | {self.node_id}
                if (node := self.network.past_node_or_none(m)) is not None
                and node.store.holds_file(fid)
            ]
            if idspace.sort_by_distance(holders, key)[0] != self.node_id:
                return
        all_ok = True
        for member_id in needs:
            member = self.network.past_node_or_none(member_id)
            if member is None:
                all_ok = False
                continue
            # A lost repair RPC leaves this member with its stale entry
            # for now; the file is flagged degraded so a later
            # maintenance pass (or repair_all at quiescence) finishes
            # the job.  The join-time shortcut target is resolved on the
            # coordinator (it is a pure read of the coordinator's leaf
            # set) so only wire-safe values cross the seam.
            is_newcomer = member_id == newcomer_id
            displaced_id = (
                self._displaced_member(key, kset, member_id, cert.k)
                if is_newcomer else None
            )
            delivered, repaired = self.network.transport.send(
                self.node_id, member_id, member.apply_member_repair,
                fid, cert, displaced_id, is_newcomer, seen,
            )
            if not delivered or not repaired:
                all_ok = False
        # Confirm-reread: the member repairs above suspend at their RPCs;
        # re-test the flag after them rather than acting on the value the
        # pass started from (both edits are idempotent, so the guards are
        # behavior-neutral today and atomicity-safe under a concurrent
        # transport).
        if all_ok:
            if fid in self.network.degraded_files:
                self.network.degraded_files.discard(fid)
        elif fid not in self.network.degraded_files:
            self.network.note_degraded_file(fid)

    def apply_member_repair(
        self,
        fid: int,
        cert: FileCertificate,
        displaced_id: Optional[int],
        is_newcomer: bool,
        seen: Set[int],
    ) -> bool:
        """The member-side body of one §3.5 repair RPC.

        Drops this node's stale entry, takes the join-time pointer
        shortcut when the coordinator offers one (it names the displaced
        holder directly), and otherwise re-acquires a real replica.
        ``seen`` is the coordinator's set of already-resolved physical
        replicas, extended in place so later repairs in the same pass
        avoid the same target.  Returns True when this node ends up
        with a usable entry.
        """
        self.drop_pointer_and_deref(fid)
        if is_newcomer:
            if self.receive_join_offer(cert, displaced_id, forbidden_targets=seen):
                seen.add(self.store.pointers[fid].target_id
                         if fid in self.store.pointers else self.node_id)
                return True
        return self.replicate_file(cert)

    def request_repair(self, fid: int) -> None:
        """Ask every current kset member to re-check the file's invariant.

        Each member runs :meth:`_restore_file_invariant`; only the closest
        member with a valid distinct entry will actually act, so this is
        idempotent.  Used after node recovery, when stale on-disk state may
        have created duplicate entries.
        """
        cert = self.store.certificate_for(fid)
        k = cert.k if cert is not None else self.config.k
        key = idspace.routing_key(fid)
        for member_id in self.leafset.closest_nodes(key, k):
            member = self.network.past_node_or_none(member_id)
            if member is None:
                continue
            # Confirm-reread: the previous member's repair suspends at
            # its RPCs; re-fetch before driving this member's pass so a
            # node swapped out in the meantime is not acted on.
            if member is not self.network.past_node_or_none(member_id):
                continue
            member._restore_file_invariant(fid)

    # ------------------------------------------------------------ integrity

    def read_repair(self, fid: int) -> bool:
        """Overwrite a corrupt local replica with a verified copy.

        A donor with a verified-clean copy is located among the file's
        current replica set (one direct RPC per candidate, subject to the
        fault plane).  The rewrite happens in place, so diversion
        pointers and referrer bookkeeping stay valid.  When the local
        disk refuses the rewrite (``readonly``/``failing``), the bad
        copy is shed instead and the §3.5 machinery re-replicates onto a
        writable disk — feeding replica diversion exactly like a full
        disk.  Returns True iff the local copy is verified-clean after.
        """
        replica = self.store.get_replica(fid)
        if replica is None:
            return False
        donor = self._find_verified_donor(fid, replica.certificate)
        if donor is None:
            return False  # no verified copy reachable; a later pass retries
        if self.store.get_replica(fid) is None:
            # Confirm-reread: the donor search suspends at every
            # candidate RPC, and a reclaim or migration interleaved
            # there can remove the local copy — repairing a replica we
            # no longer hold would resurrect freed storage.
            return False
        plan = self.store.fault_plan
        if plan is not None and not plan.writable(self.node_id):
            self.shed_corrupt_replica(fid)
            return False
        if self.store.repair_replica(fid):
            self.network.integrity.read_repairs += 1
            self.network.integrity.healed_file_ids.add(fid)
            return True
        return False  # the rewrite itself tore; a later scrub retries

    def _find_verified_donor(self, fid: int, cert: FileCertificate) -> Optional[int]:
        """Locate another holder with a verified-clean copy of ``fid``.

        Walks the current replica set in distance order, resolving
        diversion pointers to their targets; each candidate costs one
        direct RPC that the fault plane may lose.
        """
        key = idspace.routing_key(fid)
        for member_id in self.leafset.closest_nodes(key, cert.k + 1):
            if member_id == self.node_id:
                continue
            member = self.network.past_node_or_none(member_id)
            if member is None:
                continue
            holder, holder_id = member, member_id
            if not member.store.holds_file(fid):
                pointer = member.store.pointers.get(fid)
                if pointer is None or pointer.target_id == self.node_id:
                    continue
                target = self.network.past_node_or_none(pointer.target_id)
                if target is None or not target.store.holds_file(fid):
                    continue
                holder, holder_id = target, pointer.target_id
            delivered, verdict = self.network.transport.send(
                self.node_id, holder_id, holder.store.verify_replica, fid
            )
            if delivered and verdict == READ_OK:
                return holder_id
        return None

    def shed_corrupt_replica(self, fid: int) -> None:
        """Drop a corrupt copy this disk cannot rewrite and re-replicate.

        Referrer pointers to the shed copy are torn down first so the
        §3.5 repair sees the entries as missing rather than dangling;
        :meth:`request_repair` then lets the closest valid holder
        re-create the replica on a disk that accepts writes.
        """
        dropped = self.store.drop_replica(fid)
        if dropped is None:
            return
        for ref in sorted(dropped.referrers):
            ref_node = self.network.past_node_or_none(ref)
            if ref_node is not None:
                ref_node.store.drop_pointer(fid)
        self.network.integrity.re_replications += 1
        self.network.integrity.healed_file_ids.add(fid)
        self.request_repair(fid)

    def integrity_digest(self, fid: int) -> Optional[bytes]:
        """The content hash this node's copy of ``fid`` produces, or None.

        The compact per-fileId summary exchanged during anti-entropy
        scrubbing: holders compare digests instead of shipping replica
        bytes, so a mismatch pinpoints the corrupt copy in one round.
        """
        replica = self.store.get_replica(fid)
        if replica is None:
            return None
        return replica.observed_content_hash()

    def drop_pointer_and_deref(self, fid: int) -> None:
        """Drop a local diversion pointer and its referrer bookkeeping."""
        pointer = self.store.drop_pointer(fid)
        if pointer is None:
            return
        target = self.network.past_node_or_none(pointer.target_id)
        if target is not None:
            replica = target.store.get_replica(fid)
            if replica is not None:
                replica.referrers.discard(self.node_id)

    def receive_join_offer(
        self,
        cert: FileCertificate,
        displaced_id: Optional[int],
        forbidden_targets: Set[int] = frozenset(),
    ) -> bool:
        """Handle a file offer as a freshly joined node (§3.5).

        Given the disk/bandwidth ratio, immediately copying every file is
        inefficient; the joining node may instead install a pointer to the
        node that just ceased to be among the k closest, requiring it to
        keep the replica.  Migration happens later in the background
        (:meth:`migrate_pointers`).  Returns True if the node now has an
        entry for the file.
        """
        fid = cert.file_id
        if self.store.references_file(fid):
            return True
        if displaced_id is not None and displaced_id not in forbidden_targets:
            displaced = self.network.past_node_or_none(displaced_id)
            if displaced is not None and displaced.store.holds_file(fid):
                self.store.add_pointer(cert, displaced_id, primary=True)
                displaced.store.get_replica(fid).referrers.add(self.node_id)
                return True
        if self.store.can_accept(cert.size, self.config.t_pri):
            self.store.store_replica(cert, diverted=False)
            return True
        return False

    def maybe_discard(self, fid: int) -> bool:
        """Discard a replica this node is no longer responsible for.

        Safe only when (a) the node is outside the current k closest,
        (b) no pointer refers to the replica, and (c) every member of the
        current k closest set references the file.
        """
        replica = self.store.primaries.get(fid)
        if replica is None or replica.referrers:
            return False
        key = idspace.routing_key(fid)
        kset = self.leafset.closest_nodes(key, replica.certificate.k)
        if self.node_id in kset:
            return False
        if not all(self._member_references(m, fid) for m in kset):
            return False
        self.store.drop_replica(fid)
        return True

    def replicate_file(self, cert: FileCertificate) -> bool:
        """Acquire a real replica during failure recovery.

        Tries the local disk first (t_pri), then replica diversion within
        the leaf set (t_div), then the §3.5 long-reach fallback: ask the
        two most distant leaf-set members to locate space in *their* leaf
        sets, reaching 2l nodes in total.  Returns False if no space was
        found anywhere — the replica count temporarily drops below k.
        """
        fid = cert.file_id
        if self.store.references_file(fid):
            return True
        if self.store.can_accept(cert.size, self.config.t_pri):
            self.store.store_replica(cert, diverted=False)
            return True
        key = idspace.routing_key(fid)
        replica_set = self.leafset.closest_nodes(key, cert.k)
        if self._divert_replica(cert, replica_set) is not None:
            return True
        return self._long_reach_divert(cert, replica_set)

    def _long_reach_divert(self, cert: FileCertificate, replica_set: List[int]) -> bool:
        """§3.5 fallback: search the leaf sets of my two extreme members."""
        fid = cert.file_id
        exclude = set(replica_set) | {self.node_id} | set(self.leafset.members())
        candidates = []
        for extreme_id in self.leafset.extremes():
            if extreme_id is None:
                continue
            extreme = self.network.past_node_or_none(extreme_id)
            if extreme is None:
                continue
            _, extreme_members = self.network.transport.send(
                self.node_id, extreme_id, extreme.leafset.members, reliable=True
            )
            for member_id in extreme_members:
                if member_id in exclude:
                    continue
                member = self.network.past_node_or_none(member_id)
                if member is None or member.store.holds_file(fid):
                    continue
                candidates.append(member)
        if not candidates:
            return False
        best = max(candidates, key=lambda n: (n.store.free, -n.node_id))
        if not best.accept_diverted_replica(cert, referrer_id=self.node_id):
            return False
        self.store.add_pointer(cert, best.node_id, primary=True)
        key = idspace.routing_key(fid)
        self._install_backup_pointer(cert, best.node_id, key, exclude=set(replica_set))
        return True

    # -------------------------------------------- diverted-replica liveness

    def on_diverted_target_failed(self, fid: int) -> None:
        """The host of a replica I point to failed; re-create it (§3.3)."""
        pointer = self.store.pointers.get(fid)
        if pointer is None:
            return
        cert = pointer.certificate
        was_primary = pointer.primary
        self.store.drop_pointer(fid)
        if not was_primary:
            return  # node A will re-create and refresh the backup pointer
        key = idspace.routing_key(fid)
        replica_set = self.leafset.closest_nodes(key, cert.k)
        if self.node_id not in replica_set:
            # The ring has shifted this node out of the file's replica set;
            # its entry is no longer load-bearing, so just drop the pointer
            # (the current k closest handle re-replication themselves).
            return
        if self.store.can_accept(cert.size, self.config.t_pri):
            self.store.store_replica(cert, diverted=False)
            return
        if self._divert_replica(cert, replica_set) is not None:
            return
        if not self._long_reach_divert(cert, replica_set):
            self.network.note_degraded_file(fid)

    def on_referrer_failed(self, fid: int, failed_id: int, failed_was_primary: bool) -> None:
        """A referrer (node A or C) of a replica I host failed.

        If A failed, its backup C — which by the failure has moved into
        the k closest — promotes its pointer to primary and installs a
        fresh backup on the new k+1-th node.  If C failed, A installs a
        replacement backup pointer.
        """
        replica = self.store.get_replica(fid)
        if replica is None:
            return
        replica.referrers.discard(failed_id)
        survivors = [
            self.network.past_node_or_none(r) for r in sorted(replica.referrers)
        ]
        survivors = [s for s in survivors if s is not None]
        if failed_was_primary:
            for s in survivors:
                pointer = s.store.pointers.get(fid)
                if pointer is not None and not pointer.primary:
                    s.store.set_pointer_primary(fid, True)
                    key = idspace.routing_key(fid)
                    s._install_backup_pointer(
                        pointer.certificate,
                        self.node_id,
                        key,
                        exclude=set(
                            s.leafset.closest_nodes(key, pointer.certificate.k)
                        ),
                    )
                    return
            # No surviving referrer: the k-closest maintenance flow will
            # re-create a replica; this copy is now orphaned and may be
            # reclaimed by migration.
        else:
            for s in survivors:
                pointer = s.store.pointers.get(fid)
                if pointer is not None and pointer.primary:
                    key = idspace.routing_key(fid)
                    s._install_backup_pointer(
                        pointer.certificate,
                        self.node_id,
                        key,
                        exclude=set(
                            s.leafset.closest_nodes(key, pointer.certificate.k)
                        ),
                    )
                    return

    # ------------------------------------------------------------ migration

    def migrate_pointers(self, limit: Optional[int] = None) -> int:
        """Background migration (§3.5): pull pointed-to replicas onto this
        node when space has become available, and collapse pointers whose
        target drifted outside the leaf set.  Returns replicas migrated."""
        migrated = 0
        for fid in list(self.store.pointers):
            if limit is not None and migrated >= limit:
                break
            pointer = self.store.pointers.get(fid)
            if pointer is None or not pointer.primary:
                continue
            cert = pointer.certificate
            if not self.store.can_accept(cert.size, self.config.t_pri):
                continue
            target = self.network.past_node_or_none(pointer.target_id)
            if target is None or not target.store.holds_file(fid):
                continue  # dangling; the maintenance flow repairs these
            key = idspace.routing_key(fid)
            kset = set(self.leafset.closest_nodes(key, cert.k))
            if pointer.target_id in kset:
                # The target's copy is itself a kset entry; taking it away
                # would break the invariant for the target.
                continue
            replica = target.store.get_replica(fid)
            if any(r != self.node_id and r in kset for r in replica.referrers):
                # Another kset member's entry resolves through this copy.
                continue
            self.store.drop_pointer(fid)
            self.store.store_replica(cert, diverted=False)
            _, dropped_referrers = self.network.transport.send(
                self.node_id, pointer.target_id,
                target.store.drop_replica_referrers, fid, reliable=True,
            )
            if dropped_referrers is not None:
                for ref in dropped_referrers:
                    if ref == self.node_id:
                        continue
                    ref_node = self.network.past_node_or_none(ref)
                    if ref_node is None:
                        continue
                    # Confirm-reread: the drop-referrers RPC above
                    # suspended; an interleaved repair may already have
                    # retired this referrer's backup pointer.
                    if fid not in ref_node.store.pointers:
                        continue
                    ref_node.store.drop_pointer(fid)
            migrated += 1
        return migrated
