"""Anti-entropy scrubbing: background replica verification and repair.

PAST's durability argument (§3.5) assumes the k replicas a file has on
disk are actually readable; silent bit rot, torn writes and failing
disks violate that assumption without any node ever *dying*, so the
keep-alive/maintenance machinery never notices.  The scrubber closes the
gap the way robust replicated object stores do:

* each node runs a periodic, jittered virtual-time task that walks its
  local replicas performing *verified reads* (recompute the content
  hash, compare against the file certificate) and read-repairing any
  copy that fails;
* for every file the node is a replica-set member of, it exchanges a
  compact per-fileId digest summary with the other members.  The digest
  is the content hash each holder's copy produced at its last verified
  read (checksum-database semantics, as in ZFS scrub or Merkle-tree
  anti-entropy), so the exchange ships hashes, not replica bytes.  A
  mismatching digest pinpoints the corrupt copy; a live member with no
  entry at all (or a dangling diversion pointer) marks the file for the
  §3.5 repair flow — re-replication happens without waiting for a
  lookup to trip over the damage;
* stale entries for reclaimed files are garbage-collected.

Dead or unreachable nodes are *not* the scrubber's business: keep-alive
failure detection owns those, which keeps the two repair planes from
double-replicating.  Determinism follows the flow-rng-discipline rule:
one dedicated RNG, constructed in ``__init__`` and seeded via
:func:`~repro.core.seeding.derive_seed`, supplies the per-node phase
spread and the per-fire jitter, so scrub schedules never perturb any
other random stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Set

from ..netsim.faults import READ_CORRUPT, READ_ERROR
from ..netsim.transport import as_transport
from ..pastry import idspace
from .seeding import derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.eventsim import PeriodicTimer
    from .network import PastNetwork
    from .node import PastNode
    from ..security import FileCertificate


@dataclass
class IntegrityStats:
    """Counters for the integrity plane's detections and repairs."""

    #: Verified reads during lookups that returned corrupt/error.
    failed_reads: int = 0
    #: Corrupt copies overwritten in place with a verified donor copy.
    read_repairs: int = 0
    #: Corrupt copies shed from an unwritable disk and re-replicated.
    re_replications: int = 0
    scrub_rounds: int = 0
    scrub_corrupt_found: int = 0
    scrub_missing_found: int = 0
    scrub_stale_dropped: int = 0
    #: Files that went through any heal action (repair or re-replication).
    healed_file_ids: Set[int] = field(default_factory=set)

    def snapshot(self) -> dict:
        """JSON-friendly summary (healed fids sorted for stable output)."""
        return {
            "failed_reads": self.failed_reads,
            "read_repairs": self.read_repairs,
            "re_replications": self.re_replications,
            "scrub_rounds": self.scrub_rounds,
            "scrub_corrupt_found": self.scrub_corrupt_found,
            "scrub_missing_found": self.scrub_missing_found,
            "scrub_stale_dropped": self.scrub_stale_dropped,
            "healed_file_ids": sorted(self.healed_file_ids),
        }


class AntiEntropyScrubber:
    """Per-node periodic scrub tasks over a :class:`PastNetwork`.

    ``interval`` is the virtual-time scrub period; each node's timer is
    phase-spread uniformly over one interval at :meth:`watch` time and
    jittered by up to ``jitter`` per fire, so a fleet of scrubbers never
    synchronizes into a thundering herd.  All draws come from one RNG
    seeded with ``derive_seed(seed, "anti-entropy-scrub")``.
    """

    def __init__(
        self,
        sim,
        network: "PastNetwork",
        interval: float = 5.0,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 <= jitter < interval:
            raise ValueError("jitter must be in [0, interval)")
        # ``sim`` may be a raw EventSimulator (the historical signature)
        # or any Transport; timers go through the seam either way.
        self.transport = as_transport(sim, network.pastry)
        self.network = network
        self.interval = interval
        self.jitter = jitter
        self.rng = random.Random(derive_seed(seed, "anti-entropy-scrub"))
        self._timers: Dict[int, "PeriodicTimer"] = {}
        network.pastry.add_recovery_listener(self._on_recover)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Watch every currently-live node (sorted: hashseed-independent)."""
        for node_id in sorted(self.network.pastry.node_ids):
            self.watch(node_id)

    def watch(self, node_id: int) -> None:
        """Start (or keep) the periodic scrub task for one node."""
        if node_id in self._timers:
            return
        spread = self.rng.random() * self.interval
        jitter_fn = None
        if self.jitter > 0.0:
            jitter_fn = lambda: self.rng.uniform(-self.jitter, self.jitter)
        self._timers[node_id] = self.transport.every(
            self.interval,
            lambda: self.scrub_node(node_id),
            jitter_fn=jitter_fn,
            first_delay=spread,
        )

    def forget(self, node_id: int) -> None:
        """Stop scrubbing a node (e.g. permanently removed)."""
        timer = self._timers.pop(node_id, None)
        if timer is not None:
            timer.stop()

    def stop(self) -> None:
        for node_id in sorted(self._timers):
            self.forget(node_id)

    def _on_recover(self, node_id: int) -> None:
        """Overlay recovery hook: a returning node resumes scrubbing."""
        self.watch(node_id)

    # ------------------------------------------------------------- scrubbing

    def scrub_node(self, node_id: int) -> None:
        """One scrub round: verify local replicas, exchange digests.

        A crashed node is skipped — repairing around dead nodes is the
        keep-alive plane's job, and acting on unreachable peers here
        would double-replicate.
        """
        net = self.network
        node = net.past_node_or_none(node_id)
        if node is None:
            return
        net.integrity.scrub_rounds += 1
        for fid in node.store.file_ids():  # sorted by contract
            if not net.is_file_registered(fid):
                self._drop_stale(node, fid)
                continue
            if node.store.holds_file(fid):
                verdict = node.store.verify_replica(fid)
                if verdict == READ_CORRUPT:
                    net.integrity.scrub_corrupt_found += 1
                    node.read_repair(fid)
                elif verdict == READ_ERROR:
                    continue  # transient; retry next round
            cert = node.store.certificate_for(fid)
            if cert is not None:
                self._exchange_digests(node, fid, cert)

    def scrub_all(self) -> None:
        """One synchronous scrub round over every live node.

        Harness-facing: equivalent to every timer firing once, used to
        reach an integrity fixpoint at quiescence without running the
        event loop.
        """
        for node_id in sorted(self.network.pastry.node_ids):
            self.scrub_node(node_id)

    # --------------------------------------------------------------- helpers

    def _drop_stale(self, node: "PastNode", fid: int) -> None:
        """Garbage-collect entries for a reclaimed/unregistered file."""
        node.drop_pointer_and_deref(fid)
        dropped = node.store.drop_replica(fid)
        if dropped is not None:
            for ref in sorted(dropped.referrers):
                ref_node = self.network.past_node_or_none(ref)
                if ref_node is not None:
                    ref_node.store.drop_pointer(fid)
        self.network.integrity.scrub_stale_dropped += 1

    def _exchange_digests(self, node: "PastNode", fid: int, cert: "FileCertificate") -> None:
        """Compare per-fileId digests with the other replica-set members.

        One direct RPC per member (the fault plane may lose it; the next
        round retries).  A member whose copy's digest mismatches the
        certificate is asked to read-repair; a live member with no entry
        or a dangling pointer marks the file for the §3.5 repair flow.
        """
        net = self.network
        key = idspace.routing_key(fid)
        kset = node.leafset.closest_nodes(key, cert.k)
        if node.node_id not in kset:
            return
        needs_repair = False
        for member_id in kset:  # closest_nodes: deterministic distance order
            if member_id == node.node_id:
                continue
            member = net.past_node_or_none(member_id)
            if member is None:
                continue  # unreachable: keep-alive's problem, not ours
            delivered, digest = net.transport.send(
                node.node_id, member_id, member.integrity_digest, fid
            )
            if not delivered:
                continue
            holder = member
            if digest is None:
                pointer = member.store.pointers.get(fid)
                if pointer is None:
                    needs_repair = True  # live member without any entry
                    continue
                target = net.past_node_or_none(pointer.target_id)
                if target is None or not target.store.holds_file(fid):
                    needs_repair = True  # dangling diversion pointer
                    continue
                holder = target
                digest = target.integrity_digest(fid)
            if digest != cert.content_hash:
                net.integrity.scrub_corrupt_found += 1
                holder.read_repair(fid)
        if needs_repair and node.store.references_file(fid):
            # Confirm-reread before acting: every member RPC above is a
            # suspension point under a concurrent transport, and a
            # reclaim or shed interleaved there can retire this node's
            # own entry — at which point the repair duty belongs to the
            # file's current replica set, not to us.
            net.integrity.scrub_missing_found += 1
            node.request_repair(fid)
