"""Whole-system invariant auditing.

The paper verifies "that the storage invariants are maintained properly
despite random node failures and recoveries".  This module implements that
audit for tests and examples:

* **k-replica invariant** — for every live file, each of the k live nodes
  numerically closest to the fileId holds either a replica or a pointer to
  a distinct diverted replica (files the network has flagged as degraded
  under extreme utilization are exempt, per §3.5).
* **pointer integrity** — every diversion pointer targets a live node that
  actually holds the replica, and the replica's referrer bookkeeping
  matches.
* **integrity** — every held replica's content hash matches its
  certificate, and every live file's replica set retains at least one
  verified copy.  The audit reads the ``corrupted`` flags replicas carry
  from their last *verified read* — it never consults the fault plan
  itself, so auditing stays free of RNG draws and cannot perturb a
  deterministic schedule.  Soundness caveat: rot is evaluated lazily at
  read time, so run :meth:`~repro.core.network.PastNetwork.verify_all_replicas`
  first when you need latent (never-read) damage materialized.  A file
  whose *every* surviving copy is corrupt is unrecoverable — reported
  like ``lost_files`` (an availability outcome), while an unhealed
  corrupt copy alongside a verified one is a genuine violation: repair
  machinery had a donor and did not converge.
* **capacity** — no node stores more replica bytes than its capacity, and
  replica + cache bytes also fit.
* **accounting** — the network's global byte counters equal the per-node
  sums.
* **overlay** (opt-in, ``check_overlay=True``) — leaf-set symmetry and
  leaf-set/routing-table entry liveness at failure-detection fixpoint;
  used by the schedule explorer (``repro.devtools.explore``) as a
  quiescence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..pastry import idspace
from .network import PastNetwork


@dataclass
class Violation:
    """One invariant violation found by the auditor."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"[{self.kind}] {self.detail}"


@dataclass
class AuditReport:
    """Result of a full audit."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    nodes_checked: int = 0
    degraded_exempt: int = 0
    #: Files with no live physical replica at all.  A file is lost exactly
    #: when all k replicas fail within one recovery period (§2.1) — a
    #: documented availability limit, not an invariant violation.
    lost_files: int = 0
    #: The fileIds behind ``lost_files``, so a durability oracle can say
    #: exactly which files died, not just how many.
    lost_file_ids: List[int] = field(default_factory=list)
    #: Live files with at least one copy whose last verified read found
    #: corruption (includes the unrecoverable ones below).
    corrupt_files: int = 0
    corrupt_file_ids: List[int] = field(default_factory=list)
    #: Live files whose *every* surviving copy is corrupt — the bytes are
    #: gone even though replicas exist.  Like ``lost_files``, this is an
    #: availability outcome (all copies damaged before repair could run),
    #: not a bookkeeping violation.
    unrecoverable_files: int = 0
    unrecoverable_file_ids: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail))


def audit(
    network: PastNetwork,
    check_replicas: bool = True,
    check_overlay: bool = False,
) -> AuditReport:
    """Audit every invariant; returns a report listing all violations.

    ``check_overlay`` additionally audits the Pastry overlay itself —
    leaf-set symmetry and routing-state liveness.  Those properties only
    hold at a failure-detection *fixpoint* (every crash either detected
    and propagated, or the node recovered and re-announced), so the flag
    is opt-in: enable it at quiescence, not mid-churn.
    """
    report = AuditReport()
    _audit_nodes(network, report)
    if check_replicas:
        _audit_files(network, report)
    if check_overlay:
        _audit_overlay(network, report)
    _audit_accounting(network, report)
    return report


def _audit_nodes(network: PastNetwork, report: AuditReport) -> None:
    for node in network.nodes():
        report.nodes_checked += 1
        store = node.store
        replica_bytes = sum(r.size for r in store.primaries.values()) + sum(
            r.size for r in store.diverted_in.values()
        )
        if replica_bytes != store.used:
            report.add(
                "accounting",
                f"node {node.node_id:#x}: used={store.used} but replicas sum to {replica_bytes}",
            )
        if store.used > store.capacity:
            report.add(
                "capacity",
                f"node {node.node_id:#x}: replicas {store.used} exceed capacity {store.capacity}",
            )
        if store.used + store.cache.bytes_used > store.capacity:
            report.add(
                "capacity",
                f"node {node.node_id:#x}: replicas+cache exceed capacity",
            )
        for fid, pointer in store.pointers.items():
            target = network.past_node_or_none(pointer.target_id)
            if target is None:
                report.add(
                    "pointer", f"pointer for {fid:#x} targets dead node {pointer.target_id:#x}"
                )
                continue
            if not target.store.holds_file(fid):
                report.add(
                    "pointer",
                    f"pointer for {fid:#x} targets node without the replica",
                )
                continue
            replica = target.store.get_replica(fid)
            if replica.diverted and node.node_id not in replica.referrers:
                report.add(
                    "pointer",
                    f"replica of {fid:#x} on {target.node_id:#x} missing referrer "
                    f"{node.node_id:#x}",
                )


def _audit_files(network: PastNetwork, report: AuditReport) -> None:
    # Index of live physical replicas: fid -> [(node_id, replica), ...].
    held = {}
    for node in network.nodes():
        for fid, replica in node.store.primaries.items():
            held.setdefault(fid, []).append((node.node_id, replica))
        for fid, replica in node.store.diverted_in.items():
            held.setdefault(fid, []).append((node.node_id, replica))
    for fid in network.live_file_ids():
        report.files_checked += 1
        copies = held.get(fid)
        if not copies:
            report.lost_files += 1
            report.lost_file_ids.append(fid)
            continue
        corrupt_holders = sorted(nid for nid, replica in copies if replica.corrupted)
        if corrupt_holders:
            report.corrupt_files += 1
            report.corrupt_file_ids.append(fid)
            if len(corrupt_holders) == len(copies):
                report.unrecoverable_files += 1
                report.unrecoverable_file_ids.append(fid)
            elif fid not in network.degraded_files:
                # A verified donor exists, so read-repair/scrub had
                # everything it needed and still left damage behind.
                for nid in corrupt_holders:
                    report.add(
                        "integrity",
                        f"file {fid:#x}: unhealed corrupt replica on node {nid:#x}",
                    )
        if fid in network.degraded_files:
            report.degraded_exempt += 1
            continue
        cert = network.certificate_of(fid)
        k = cert.k if cert is not None else network.config.k
        key = idspace.routing_key(fid)
        kset = network.pastry.k_closest_live(key, k)
        targets_seen = set()
        for member_id in kset:
            member = network.past_node_or_none(member_id)
            if member is None:
                report.add("replicas", f"kset member of {fid:#x} missing from storage layer")
                continue
            if member.store.holds_file(fid):
                targets_seen.add(member_id)
                continue
            pointer = member.store.pointers.get(fid)
            if pointer is None:
                report.add(
                    "replicas",
                    f"file {fid:#x}: kset member {member_id:#x} has neither replica nor pointer",
                )
                continue
            if pointer.target_id in targets_seen:
                report.add(
                    "replicas",
                    f"file {fid:#x}: two kset entries resolve to the same replica",
                )
            targets_seen.add(pointer.target_id)


def _audit_overlay(network: PastNetwork, report: AuditReport) -> None:
    """Overlay fixpoint checks: leaf-set symmetry and entry liveness.

    * every leaf-set member is a live node — a dead entry means a
      keep-alive expiry was never processed;
    * leaf-set membership is symmetric: the j-th clockwise successor
      relationship is mirrored as the j-th counterclockwise predecessor,
      so if A lists a live B then B must list A once both have converged
      on the same live ring;
    * every routing-table entry refers to a live node — witnesses purge
      failed entries eagerly and recovered nodes re-announce, so at
      fixpoint (all crashed nodes recovered or their failure propagated)
      no stale entry should survive.
    """
    pastry = network.pastry
    for node in pastry.nodes():
        for peer_id in node.leafset.sorted_members():
            peer = pastry.get_live(peer_id)
            if peer is None:
                report.add(
                    "overlay",
                    f"node {node.node_id:#x} leaf set lists dead node {peer_id:#x}",
                )
                continue
            if node.node_id not in peer.leafset.members():
                report.add(
                    "overlay",
                    f"leaf-set asymmetry: {node.node_id:#x} lists {peer_id:#x} "
                    f"but not vice versa",
                )
        for entry in sorted(node.routing_table.entries()):
            if not pastry.is_live(entry):
                report.add(
                    "overlay",
                    f"node {node.node_id:#x} routing table entry {entry:#x} is dead",
                )


def _audit_accounting(network: PastNetwork, report: AuditReport) -> None:
    total_used = sum(n.store.used for n in network.nodes())
    if total_used != network.bytes_stored:
        report.add(
            "accounting",
            f"global bytes_stored={network.bytes_stored} but per-node sum is {total_used}",
        )
    total_capacity = sum(n.store.capacity for n in network.nodes())
    if total_capacity != network.total_capacity:
        report.add(
            "accounting",
            f"global capacity={network.total_capacity} but per-node sum is {total_capacity}",
        )
