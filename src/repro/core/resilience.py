"""Client-side resilience: retry, backoff, and hedged replica fallback.

The paper assumes an unreliable transport and pushes recovery to the
client: "the client must retry" when a request is silently lost (§2.3),
and randomized routing makes each retry likely to take a different path
around the node that swallowed the last one.  :class:`RetryPolicy`
packages that behaviour for :meth:`repro.core.network.PastNetwork.lookup`
and :meth:`~repro.core.network.PastNetwork.insert`:

* a per-attempt timeout charged in *virtual* time — a lost message is
  only discovered by the client's timer expiring;
* exponential backoff between attempts with seeded jitter (all draws
  come from the network's dedicated client-retry RNG, so runs replay);
* randomized routing on retries (§2.3) so a retry is not doomed to
  repeat a bad path;
* hedged lookups: when a request *is* delivered but finds no replica en
  route (holders crashed or degraded mid-repair), the client falls back
  to asking each of the k replica holders directly, in replica-set
  order, until one answers.

The same failover machinery doubles as the *integrity* escape hatch:
every serve is a verified read (§2.2), so a holder whose copy turns out
corrupt or unreadable refuses to answer and the retry/hedge loop moves
on to the next holder — ``LookupResult.integrity_failovers`` counts how
often a lookup succeeded only because of that (see
:mod:`repro.core.integrity` for the repair side).

A ``policy=None`` call (the default everywhere) takes the exact
pre-existing code path — no retry state, no RNG draws — so fault-free
runs stay byte-identical with or without this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How a client recovers from lost or unanswered requests.

    All durations are virtual-clock seconds.  ``max_attempts`` counts
    route attempts (1 = no retries); ``op_deadline`` caps the total
    virtual time a client will spend on one operation, backoffs and
    timeouts included.
    """

    max_attempts: int = 5
    #: Time a client waits before concluding an attempt's request or
    #: reply was lost (the paper's transport gives no failure signal).
    attempt_timeout: float = 1.0
    base_backoff: float = 0.25
    backoff_factor: float = 2.0
    #: Jitter fraction: each backoff is scaled by 1 + jitter*U(0,1).
    jitter: float = 0.5
    op_deadline: float = 60.0
    #: Fall back to direct fetches from the k replica holders when a
    #: delivered lookup found no replica along the route.
    hedge: bool = True
    #: Enable randomized routing (§2.3) for attempts after the first.
    randomize_retries: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.attempt_timeout < 0 or self.base_backoff < 0 or self.jitter < 0:
            raise ValueError("timeouts, backoffs and jitter must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, retry_index: int, rng: random.Random) -> float:
        """Backoff before the ``retry_index``-th retry (1-based), jittered."""
        delay = self.base_backoff * self.backoff_factor ** (retry_index - 1)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def rpc_deadline(self, legs: int = 1) -> float:
        """Wall-clock deadline for one RPC spanning ``legs`` network legs.

        Real transports (``AsyncioTransport``) derive their per-request
        deadline from the client's attempt timeout instead of a flat
        transport-wide constant, so a policy tuned for fast failover
        also fails its wire RPCs over fast.  Floored so a zero-timeout
        policy (virtual-time semantics) still gives sockets a beat.
        """
        return max(0.05, self.attempt_timeout) * max(1, legs)


#: Policy used by the chaos harness's resilient clients.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: A policy that issues exactly one attempt and never hedges — useful as
#: an explicit "no resilience" baseline that still reports elapsed time.
NO_RETRY_POLICY = RetryPolicy(
    max_attempts=1, base_backoff=0.0, jitter=0.0, hedge=False,
    randomize_retries=False,
)
