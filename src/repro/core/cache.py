"""Cache management (§4 of the paper).

PAST nodes use the *unused* portion of their advertised disk space to
cache files that are routed through them during lookups and inserts.
Cached copies may be evicted at any time — in particular when a primary or
diverted replica needs the space.

The paper's replacement policy is **GreedyDual-Size** (Cao & Irani,
USITS'97) with cost ``c(d) = 1``, which maximizes hit rate; plain **LRU**
is implemented for the Figure 8 comparison, plus a disabled policy for the
no-caching baseline.

GreedyDual-Size is implemented with the standard "inflation" optimization:
instead of subtracting the evicted victim's weight ``H_v`` from every
remaining file, a global offset ``L`` is raised to ``H_v`` and new/hit
files enter with ``H = L + c(d)/s(d)``.  The relative order of weights is
identical to the textbook formulation.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional, Tuple


class EvictionPolicy:
    """Interface for cache replacement policies."""

    def on_insert(self, file_id: int, size: int) -> None:
        raise NotImplementedError

    def on_hit(self, file_id: int) -> None:
        raise NotImplementedError

    def on_remove(self, file_id: int) -> None:
        raise NotImplementedError

    def victim(self) -> Optional[int]:
        """The fileId to evict next (None if the policy tracks nothing)."""
        raise NotImplementedError

    def on_evict(self, file_id: int) -> None:
        """Notification that ``file_id`` was evicted (after ``victim``)."""
        self.on_remove(file_id)


class GreedyDualSizePolicy(EvictionPolicy):
    """GreedyDual-Size with cost function ``cost_fn`` (default: constant 1).

    Maintains ``H(d) = L + cost(d)/size(d)``; evicts the minimal-``H`` file
    and inflates ``L`` to the victim's ``H``.  A lazy heap holds
    ``(H, seq, file_id)`` entries; stale entries are skipped on pop.
    """

    def __init__(self, cost_fn: Callable[[int, int], float] = None):
        self._cost_fn = cost_fn if cost_fn is not None else (lambda fid, size: 1.0)
        self._heap: list = []
        self._weights: Dict[int, Tuple[float, int]] = {}  # fid -> (H, seq)
        self._sizes: Dict[int, int] = {}
        self._inflation = 0.0
        self._seq = 0

    @property
    def inflation(self) -> float:
        """Current value of the global offset L."""
        return self._inflation

    def weight(self, file_id: int) -> Optional[float]:
        """Current H value of a cached file (None if absent)."""
        entry = self._weights.get(file_id)
        return entry[0] if entry else None

    def _set_weight(self, file_id: int, size: int) -> None:
        cost = self._cost_fn(file_id, size)
        h = self._inflation + (cost / size if size > 0 else float("inf"))
        self._seq += 1
        self._weights[file_id] = (h, self._seq)
        self._sizes[file_id] = size
        heapq.heappush(self._heap, (h, self._seq, file_id))

    def on_insert(self, file_id: int, size: int) -> None:
        self._set_weight(file_id, size)

    def on_hit(self, file_id: int) -> None:
        size = self._sizes.get(file_id)
        if size is not None:
            self._set_weight(file_id, size)

    def on_remove(self, file_id: int) -> None:
        self._weights.pop(file_id, None)
        self._sizes.pop(file_id, None)

    def victim(self) -> Optional[int]:
        while self._heap:
            h, seq, fid = self._heap[0]
            current = self._weights.get(fid)
            if current is None or current != (h, seq):
                heapq.heappop(self._heap)  # stale entry
                continue
            return fid
        return None

    def on_evict(self, file_id: int) -> None:
        entry = self._weights.get(file_id)
        if entry is not None:
            # Inflate L to the victim's H — equivalent to subtracting H_v
            # from every remaining cached file.
            self._inflation = max(self._inflation, entry[0])
        self.on_remove(file_id)


class LRUPolicy(EvictionPolicy):
    """Least-recently-used replacement (the Figure 8 comparison point)."""

    def __init__(self):
        self._order: "OrderedDict[int, int]" = OrderedDict()

    def on_insert(self, file_id: int, size: int) -> None:
        self._order[file_id] = size
        self._order.move_to_end(file_id)

    def on_hit(self, file_id: int) -> None:
        if file_id in self._order:
            self._order.move_to_end(file_id)

    def on_remove(self, file_id: int) -> None:
        self._order.pop(file_id, None)

    def victim(self) -> Optional[int]:
        return next(iter(self._order), None)


def make_policy(name: str) -> Optional[EvictionPolicy]:
    """Instantiate an eviction policy by config name (None = caching off)."""
    if name == "gds":
        return GreedyDualSizePolicy()
    if name == "lru":
        return LRUPolicy()
    if name == "none":
        return None
    raise ValueError(f"unknown cache policy {name!r}")


class CacheManager:
    """The per-node file cache.

    The cache's capacity is *elastic*: it may use whatever portion of the
    node's disk is not occupied by primary/diverted replicas, a figure the
    owning :class:`~repro.core.storage.LocalStore` supplies through
    ``available_fn``.  When replicas grow, the store calls
    :meth:`shrink_to` and cached files are discarded.
    """

    __slots__ = (
        "_policy", "_available_fn", "_insert_fraction", "_entries",
        "bytes_used", "insertions", "evictions", "hits", "misses",
    )

    def __init__(
        self,
        policy: Optional[EvictionPolicy],
        available_fn: Callable[[], int],
        insert_fraction: float = 1.0,
    ):
        self._policy = policy
        self._available_fn = available_fn
        self._insert_fraction = insert_fraction
        self._entries: Dict[int, int] = {}  # fid -> size
        self.bytes_used = 0
        self.insertions = 0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self._policy is not None

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def files(self) -> Iterable[int]:
        return self._entries.keys()

    def size_of(self, file_id: int) -> Optional[int]:
        return self._entries.get(file_id)

    # ---------------------------------------------------------------- reads

    def lookup(self, file_id: int) -> bool:
        """Check the cache; a hit refreshes the policy's weight."""
        if file_id in self._entries:
            self.hits += 1
            self._policy.on_hit(file_id)
            return True
        self.misses += 1
        return False

    # --------------------------------------------------------------- writes

    def consider(self, file_id: int, size: int) -> bool:
        """Apply the cache-insertion policy to a routed-through file.

        The file is cached iff its size is less than the fraction *c* of
        the node's current cache size (the portion of storage not holding
        replicas).  Returns True if the file was cached.
        """
        if self._policy is None or file_id in self._entries:
            return False
        cache_size = self._available_fn()
        if size <= 0 or size >= self._insert_fraction * cache_size:
            return False
        if not self._make_room(size, cache_size):
            return False
        self._entries[file_id] = size
        self.bytes_used += size
        self._policy.on_insert(file_id, size)
        self.insertions += 1
        return True

    def _make_room(self, needed: int, cache_size: int) -> bool:
        """Evict victims until ``needed`` bytes fit within ``cache_size``."""
        while self.bytes_used + needed > cache_size:
            victim = self._policy.victim()
            if victim is None:
                return False
            self._evict(victim)
        return True

    def _evict(self, file_id: int) -> None:
        size = self._entries.pop(file_id)
        self.bytes_used -= size
        self._policy.on_evict(file_id)
        self.evictions += 1

    def shrink_to(self, cache_size: int) -> None:
        """Discard cached files until the cache fits in ``cache_size`` bytes.

        Called by the store when a new replica claims disk space.
        """
        if self._policy is None:
            return
        while self.bytes_used > cache_size:
            victim = self._policy.victim()
            if victim is None:  # pragma: no cover - bytes_used>0 implies entries
                break
            self._evict(victim)

    def remove(self, file_id: int) -> bool:
        """Explicitly drop a cached file (e.g. local invalidation)."""
        if file_id not in self._entries:
            return False
        size = self._entries.pop(file_id)
        self.bytes_used -= size
        self._policy.on_remove(file_id)
        return True

    def clear(self) -> None:
        for fid in list(self._entries):
            self.remove(fid)
