"""Per-node storage: replicas, diversion pointers and the acceptance policy.

Every PAST node contributes an advertised storage capacity.  The store
tracks three kinds of entries:

* **primary replicas** — the node is one of the k numerically closest to
  the fileId and holds the file itself;
* **diverted replicas** — the node holds the file on behalf of a leaf-set
  neighbor that could not accommodate it (§3.3);
* **diversion pointers** — file-table entries referencing a diverted
  replica stored elsewhere.  Node *A* (the primary that diverted) and node
  *C* (the k+1-th closest) both hold one, so a single node failure never
  makes the diverted replica unreachable.

Replica bytes are charged against capacity; pointers are metadata and are
not charged.  Cached files live in whatever space is left and are evicted
on demand (see :mod:`repro.core.cache`).

The acceptance policy is the paper's ``SD/FN`` rule: node ``N`` rejects
file ``D`` iff ``size(D)/free(N) > t``, with ``t = t_pri`` for primary
replicas and the stricter ``t = t_div`` for diverted ones.  The rule
accepts all but oversized files while utilization is low, discriminates
against large files as free space shrinks, and keeps head-room for
primaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..security import FileCertificate
from .cache import CacheManager, make_policy
from .errors import CapacityError


@dataclass
class StoredReplica:
    """A replica held on this node's disk."""

    certificate: FileCertificate
    diverted: bool = False
    #: Nodes holding a diversion pointer to this replica (for diverted
    #: replicas: the diverting primary A and the backup C).  These pairs
    #: exchange explicit keep-alives when leaf sets drift apart (§3.5).
    referrers: Set[int] = field(default_factory=set)

    @property
    def file_id(self) -> int:
        return self.certificate.file_id

    @property
    def size(self) -> int:
        return self.certificate.size


@dataclass
class DiversionPointer:
    """A file-table entry referencing a replica diverted to another node."""

    certificate: FileCertificate
    target_id: int
    #: True for the diverting primary node A (the pointer that serves
    #: lookups); False for the backup pointer on node C.
    primary: bool = True

    @property
    def file_id(self) -> int:
        return self.certificate.file_id

    @property
    def size(self) -> int:
        return self.certificate.size


class LocalStore:
    """Storage contributed by one PAST node.

    ``accounting`` (optional) is called with a byte delta whenever replica
    usage changes, letting the network maintain global utilization
    counters in O(1).
    """

    def __init__(
        self,
        capacity: int,
        cache_policy: str = "gds",
        cache_fraction: float = 1.0,
        accounting: Optional[Callable[[int], None]] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.used = 0  # bytes held by primary + diverted replicas
        self._accounting = accounting
        self.primaries: Dict[int, StoredReplica] = {}
        self.diverted_in: Dict[int, StoredReplica] = {}
        self.pointers: Dict[int, DiversionPointer] = {}
        self.cache = CacheManager(
            make_policy(cache_policy),
            available_fn=self.cache_space,
            insert_fraction=cache_fraction,
        )

    # ------------------------------------------------------------ capacity

    @property
    def free(self) -> int:
        """Remaining free space ``F_N`` (cached files do not count as used)."""
        return self.capacity - self.used

    def cache_space(self) -> int:
        """The 'unused portion of advertised disk space' available to cache."""
        return self.capacity - self.used

    def utilization(self) -> float:
        return self.used / self.capacity if self.capacity else 1.0

    def can_accept(self, size: int, threshold: float) -> bool:
        """The paper's acceptance rule: reject iff ``size/free > threshold``."""
        free = self.free
        if size > free:
            return False
        if free <= 0:
            return size == 0
        return size / free <= threshold

    # ------------------------------------------------------------- replicas

    def _charge(self, delta: int) -> None:
        self.used += delta
        if self._accounting is not None:
            self._accounting(delta)
        if delta > 0:
            # New replica bytes may displace cached files.
            self.cache.shrink_to(self.cache_space())

    def store_replica(self, certificate: FileCertificate, diverted: bool) -> StoredReplica:
        """Store a replica unconditionally (policy checks happen before).

        Raises :class:`CapacityError` if the bytes genuinely do not fit;
        callers are expected to have applied :meth:`can_accept` first.
        """
        fid = certificate.file_id
        if fid in self.primaries or fid in self.diverted_in:
            raise CapacityError(f"replica of {fid:#x} already stored here")
        if certificate.size > self.free:
            raise CapacityError("replica exceeds free space")
        replica = StoredReplica(certificate, diverted=diverted)
        if diverted:
            self.diverted_in[fid] = replica
        else:
            self.primaries[fid] = replica
        # A replica supersedes any cached copy of the same file.
        self.cache.remove(fid)
        self._charge(certificate.size)
        return replica

    def drop_replica(self, file_id: int) -> Optional[StoredReplica]:
        """Remove a replica (either kind); returns it if present."""
        replica = self.primaries.pop(file_id, None)
        if replica is None:
            replica = self.diverted_in.pop(file_id, None)
        if replica is not None:
            self._charge(-replica.size)
        return replica

    def get_replica(self, file_id: int) -> Optional[StoredReplica]:
        return self.primaries.get(file_id) or self.diverted_in.get(file_id)

    # ------------------------------------------------------------- pointers

    def add_pointer(
        self, certificate: FileCertificate, target_id: int, primary: bool
    ) -> DiversionPointer:
        pointer = DiversionPointer(certificate, target_id, primary=primary)
        self.pointers[certificate.file_id] = pointer
        return pointer

    def drop_pointer(self, file_id: int) -> Optional[DiversionPointer]:
        return self.pointers.pop(file_id, None)

    # -------------------------------------------------------------- queries

    def holds_file(self, file_id: int) -> bool:
        """Replica (either kind) present locally — satisfies a lookup."""
        return file_id in self.primaries or file_id in self.diverted_in

    def references_file(self, file_id: int) -> bool:
        """Replica or diversion pointer present — satisfies the k-invariant."""
        return self.holds_file(file_id) or file_id in self.pointers

    def file_ids(self) -> List[int]:
        """All fileIds this node is responsible for (replicas + pointers).

        Returned sorted: callers iterate this to drive repairs, so the
        order must not depend on set iteration order.
        """
        seen = set(self.primaries)
        seen.update(self.diverted_in)
        seen.update(self.pointers)
        return sorted(seen)

    def certificate_for(self, file_id: int) -> Optional[FileCertificate]:
        replica = self.get_replica(file_id)
        if replica is not None:
            return replica.certificate
        pointer = self.pointers.get(file_id)
        return pointer.certificate if pointer is not None else None

    def snapshot(self) -> dict:
        """Summary counters for stats and debugging."""
        return {
            "capacity": self.capacity,
            "used": self.used,
            "free": self.free,
            "primaries": len(self.primaries),
            "diverted_in": len(self.diverted_in),
            "pointers": len(self.pointers),
            "cached": len(self.cache),
            "cache_bytes": self.cache.bytes_used,
        }
