"""Per-node storage: replicas, diversion pointers and the acceptance policy.

Every PAST node contributes an advertised storage capacity.  The store
tracks three kinds of entries:

* **primary replicas** — the node is one of the k numerically closest to
  the fileId and holds the file itself;
* **diverted replicas** — the node holds the file on behalf of a leaf-set
  neighbor that could not accommodate it (§3.3);
* **diversion pointers** — file-table entries referencing a diverted
  replica stored elsewhere.  Node *A* (the primary that diverted) and node
  *C* (the k+1-th closest) both hold one, so a single node failure never
  makes the diverted replica unreachable.

Replica bytes are charged against capacity; pointers are metadata and are
not charged.  Cached files live in whatever space is left and are evicted
on demand (see :mod:`repro.core.cache`).

The acceptance policy is the paper's ``SD/FN`` rule: node ``N`` rejects
file ``D`` iff ``size(D)/free(N) > t``, with ``t = t_pri`` for primary
replicas and the stricter ``t = t_div`` for diverted ones.  The rule
accepts all but oversized files while utilization is low, discriminates
against large files as free space shrinks, and keeps head-room for
primaries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Set

from ..netsim.faults import READ_CORRUPT, READ_ERROR, READ_OK
from ..security import FileCertificate
from ..security.certificates import corrupted_content_hash
from .cache import CacheManager, make_policy
from .errors import CapacityError

if TYPE_CHECKING:  # pragma: no cover
    from ..netsim.faults import StorageFaultPlan

#: Extra :meth:`LocalStore.verify_replica` verdict beyond the plan's
#: READ_OK/READ_CORRUPT/READ_ERROR: the replica is not on this disk.
REPLICA_MISSING = "missing"


class StoredReplica:
    """A replica held on this node's disk.

    A plain ``__slots__`` class rather than a dataclass: one instance
    exists per (file, holder) pair across the whole deployment, so at
    experiment scale the per-instance ``__dict__`` a default-bearing
    dataclass would carry dominates the record's own footprint.
    """

    __slots__ = (
        "certificate", "diverted", "referrers", "corrupted",
        "stored_at", "last_checked",
    )

    def __init__(
        self,
        certificate: FileCertificate,
        diverted: bool = False,
        referrers: Optional[Set[int]] = None,
        corrupted: bool = False,
        stored_at: float = 0.0,
        last_checked: float = 0.0,
    ):
        self.certificate = certificate
        self.diverted = diverted
        #: Nodes holding a diversion pointer to this replica (for diverted
        #: replicas: the diverting primary A and the backup C).  These pairs
        #: exchange explicit keep-alives when leaf sets drift apart (§3.5).
        self.referrers: Set[int] = referrers if referrers is not None else set()
        #: The on-disk bytes no longer match the certificate (torn write or
        #: bit rot).  Maintained by :meth:`LocalStore.verify_replica`; the
        #: invariant audit reads this flag instead of re-consulting the
        #: fault plan so auditing stays free of RNG draws.
        self.corrupted = corrupted
        #: Virtual times bracketing the bit-rot exposure window: rot accrues
        #: over ``now - max(stored_at, last_checked)``.
        self.stored_at = stored_at
        self.last_checked = last_checked

    @property
    def file_id(self) -> int:
        return self.certificate.file_id

    @property
    def size(self) -> int:
        return self.certificate.size

    def observed_content_hash(self) -> bytes:
        """The hash a reader recomputes over this copy's on-disk bytes.

        Matches the certificate for a healthy copy and deterministically
        diverges for a corrupt one — the flag-based stand-in for hashing
        real bytes (see :func:`repro.security.certificates.corrupted_content_hash`).
        """
        if self.corrupted:
            return corrupted_content_hash(self.file_id, self.size)
        return self.certificate.content_hash


class DiversionPointer:
    """A file-table entry referencing a replica diverted to another node."""

    __slots__ = ("certificate", "target_id", "primary")

    def __init__(
        self,
        certificate: FileCertificate,
        target_id: int,
        primary: bool = True,
    ):
        self.certificate = certificate
        self.target_id = target_id
        #: True for the diverting primary node A (the pointer that serves
        #: lookups); False for the backup pointer on node C.
        self.primary = primary

    @property
    def file_id(self) -> int:
        return self.certificate.file_id

    @property
    def size(self) -> int:
        return self.certificate.size


class LocalStore:
    """Storage contributed by one PAST node.

    ``accounting`` (optional) is called with a byte delta whenever replica
    usage changes, letting the network maintain global utilization
    counters in O(1).
    """

    __slots__ = (
        "capacity", "used", "_accounting", "node_id", "fault_plan", "now",
        "_cache_checked", "primaries", "diverted_in", "pointers", "cache",
        "backend",
    )

    def __init__(
        self,
        capacity: int,
        cache_policy: str = "gds",
        cache_fraction: float = 1.0,
        accounting: Optional[Callable[[int], None]] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.used = 0  # bytes held by primary + diverted replicas
        self._accounting = accounting
        #: Disk-fault wiring, set by the network at admit time.  With no
        #: plan installed every integrity hook below is a single
        #: attribute check — the zero-cost bar the digest pins enforce.
        self.node_id: int = -1
        self.fault_plan: Optional["StorageFaultPlan"] = None
        self.now: Callable[[], float] = lambda: 0.0
        #: Optional replica-store backend (see :mod:`repro.store`): an
        #: observer of logical mutations via duck-typed ``note_*`` hooks.
        #: None (the default) is byte-identical to :class:`MemoryBackend`
        #: — a single attribute check per mutation, zero RNG draws.
        self.backend: Optional["ReplicaStoreBackend"] = None
        #: fid -> virtual time the cached copy was inserted/last verified.
        self._cache_checked: Dict[int, float] = {}
        self.primaries: Dict[int, StoredReplica] = {}
        self.diverted_in: Dict[int, StoredReplica] = {}
        self.pointers: Dict[int, DiversionPointer] = {}
        self.cache = CacheManager(
            make_policy(cache_policy),
            available_fn=self.cache_space,
            insert_fraction=cache_fraction,
        )

    # ------------------------------------------------------------ capacity

    @property
    def free(self) -> int:
        """Remaining free space ``F_N`` (cached files do not count as used)."""
        return self.capacity - self.used

    def cache_space(self) -> int:
        """The 'unused portion of advertised disk space' available to cache."""
        return self.capacity - self.used

    def utilization(self) -> float:
        return self.used / self.capacity if self.capacity else 1.0

    def can_accept(self, size: int, threshold: float) -> bool:
        """The paper's acceptance rule: reject iff ``size/free > threshold``.

        A disk in ``readonly``/``failing`` mode additionally refuses all
        new replicas, feeding the §3.3 diversion machinery exactly as a
        full disk would, while existing replicas keep serving reads.
        """
        if self.fault_plan is not None and not self.fault_plan.writable(self.node_id):
            return False
        free = self.free
        if size > free:
            return False
        if free <= 0:
            return size == 0
        return size / free <= threshold

    # ------------------------------------------------------------- replicas

    def _charge(self, delta: int) -> None:
        self.used += delta
        if self._accounting is not None:
            self._accounting(delta)
        if delta > 0:
            # New replica bytes may displace cached files.
            self.cache.shrink_to(self.cache_space())

    def store_replica(self, certificate: FileCertificate, diverted: bool) -> StoredReplica:
        """Store a replica unconditionally (policy checks happen before).

        Raises :class:`CapacityError` if the bytes genuinely do not fit;
        callers are expected to have applied :meth:`can_accept` first.
        """
        fid = certificate.file_id
        plan = self.fault_plan
        if plan is not None and not plan.writable(self.node_id):
            plan.refuse_write(self.node_id)
            raise CapacityError(f"disk is {plan.disk_mode(self.node_id)}; refusing new replica")
        if fid in self.primaries or fid in self.diverted_in:
            raise CapacityError(f"replica of {fid:#x} already stored here")
        if certificate.size > self.free:
            raise CapacityError("replica exceeds free space")
        replica = StoredReplica(certificate, diverted=diverted)
        if plan is not None:
            now = self.now()
            replica.stored_at = now
            replica.last_checked = now
            # Clear any corruption record left by a prior copy of this
            # fid on this disk (e.g. a rotted cached copy), then let the
            # plan decide whether this write lands torn.
            plan.forget(self.node_id, fid)
            replica.corrupted = plan.store_written(self.node_id, fid, certificate.size)
        if diverted:
            self.diverted_in[fid] = replica
        else:
            self.primaries[fid] = replica
        # A replica supersedes any cached copy of the same file.
        self.cache.remove(fid)
        self._charge(certificate.size)
        if self.backend is not None:
            self.backend.note_store(certificate, diverted)
        return replica

    def drop_replica(self, file_id: int) -> Optional[StoredReplica]:
        """Remove a replica (either kind); returns it if present."""
        replica = self.primaries.pop(file_id, None)
        if replica is None:
            replica = self.diverted_in.pop(file_id, None)
        if replica is not None:
            if self.fault_plan is not None:
                self.fault_plan.forget(self.node_id, file_id)
            self._charge(-replica.size)
            if self.backend is not None:
                self.backend.note_drop(file_id)
        return replica

    def drop_replica_referrers(self, file_id: int) -> Optional[List[int]]:
        """Wire-safe form of :meth:`drop_replica` for remote callers.

        Returns the dropped replica's referrers as a sorted list — the
        only piece a remote caller needs for pointer teardown — or None
        when no replica was present.  A live :class:`StoredReplica`
        must never cross the seam.
        """
        replica = self.drop_replica(file_id)
        if replica is None:
            return None
        return sorted(replica.referrers)

    def get_replica(self, file_id: int) -> Optional[StoredReplica]:
        return self.primaries.get(file_id) or self.diverted_in.get(file_id)

    # ------------------------------------------------------ verified reads

    def verify_replica(self, file_id: int) -> str:
        """One verified read of a local replica (§2.2 hash recomputation).

        Consults the storage fault plan first — bit rot accrues over the
        virtual time since this copy was stored or last verified — then
        recomputes the hash the on-disk bytes produce and compares it
        against the certificate, exactly as a client with real bytes
        would.  Returns ``READ_OK``, ``READ_CORRUPT`` (sticky until
        :meth:`repair_replica`), ``READ_ERROR`` (transient; retrying may
        succeed) or :data:`REPLICA_MISSING`.
        """
        replica = self.get_replica(file_id)
        if replica is None:
            return REPLICA_MISSING
        plan = self.fault_plan
        if plan is not None:
            now = self.now()
            elapsed = now - max(replica.stored_at, replica.last_checked)
            verdict = plan.read(self.node_id, file_id, replica.size, max(0.0, elapsed))
            if verdict == READ_ERROR:
                return READ_ERROR
            replica.last_checked = now
            replica.corrupted = verdict == READ_CORRUPT
        if replica.observed_content_hash() != replica.certificate.content_hash:
            return READ_CORRUPT
        return READ_OK

    def repair_replica(self, file_id: int) -> bool:
        """Overwrite a corrupt replica with a verified copy (read-repair).

        The rewrite goes through the same disk, so it is refused on a
        ``readonly``/``failing`` disk (the caller must then re-replicate
        elsewhere) and can itself land torn.  Returns True iff the local
        copy is verified-clean afterwards.
        """
        replica = self.get_replica(file_id)
        if replica is None:
            return False
        plan = self.fault_plan
        if plan is None:
            replica.corrupted = False
            return True
        if not plan.writable(self.node_id):
            plan.refuse_write(self.node_id)
            return False
        now = self.now()
        plan.mark_repaired(self.node_id, file_id)
        replica.stored_at = now
        replica.last_checked = now
        replica.corrupted = plan.store_written(self.node_id, file_id, replica.size)
        return not replica.corrupted

    def note_cached(self, file_id: int) -> None:
        """Stamp a fresh cache insertion; rot accrues from this instant."""
        if self.fault_plan is not None:
            self._cache_checked[file_id] = self.now()

    def verified_cache_hit(self, file_id: int) -> bool:
        """Cache lookup plus verified read.

        Cached copies are disposable — a corrupt one is simply evicted
        (no read-repair) and the lookup falls through to the replica
        holders; a transient read error also misses without evicting.
        """
        if not self.cache.lookup(file_id):
            return False
        plan = self.fault_plan
        if plan is None:
            return True
        now = self.now()
        size = self.cache.size_of(file_id) or 0
        last = self._cache_checked.get(file_id, now)
        verdict = plan.read(self.node_id, file_id, size, max(0.0, now - last))
        if verdict == READ_OK:
            self._cache_checked[file_id] = now
            return True
        if verdict == READ_CORRUPT:
            self.cache.remove(file_id)
            self._cache_checked.pop(file_id, None)
            plan.forget(self.node_id, file_id)
        return False

    # ------------------------------------------------------------- pointers

    def add_pointer(
        self, certificate: FileCertificate, target_id: int, primary: bool
    ) -> DiversionPointer:
        pointer = DiversionPointer(certificate, target_id, primary=primary)
        self.pointers[certificate.file_id] = pointer
        if self.backend is not None:
            self.backend.note_pointer(certificate, target_id, primary)
        return pointer

    def install_pointer(
        self, certificate: FileCertificate, target_id: int, primary: bool
    ) -> None:
        """Wire-safe form of :meth:`add_pointer` for remote callers.

        Remote nodes install backup pointers over the transport; a live
        :class:`DiversionPointer` must never cross the seam, so this
        wrapper installs the entry and returns nothing.
        """
        self.add_pointer(certificate, target_id, primary=primary)

    def drop_pointer(self, file_id: int) -> Optional[DiversionPointer]:
        pointer = self.pointers.pop(file_id, None)
        if pointer is not None and self.backend is not None:
            self.backend.note_drop_pointer(file_id)
        return pointer

    def set_pointer_primary(self, file_id: int, primary: bool) -> bool:
        """Flip a pointer's primary flag (pointer promotion, §3.5).

        The flag decides which pointer answers lookups, so it is part of
        the durable logical state — all writers must come through here
        rather than poking :attr:`DiversionPointer.primary` directly.
        Returns False if no pointer for ``file_id`` exists.
        """
        pointer = self.pointers.get(file_id)
        if pointer is None:
            return False
        if pointer.primary != primary:
            pointer.primary = primary
            if self.backend is not None:
                self.backend.note_primary_flag(file_id, primary)
        return True

    # ----------------------------------------------------------- durability

    def wipe_disk(self) -> None:
        """Destroy this disk's contents (crash = media loss).

        Empties every table without going through ``_charge`` — the
        caller owns the global byte accounting (a crashed node's bytes
        were already subtracted at crash time).  A durable backend loses
        its journal too: the media is gone, not just the process.
        """
        self.primaries.clear()
        self.diverted_in.clear()
        self.pointers.clear()
        self.cache.clear()
        self.used = 0
        self._cache_checked.clear()
        if self.backend is not None:
            self.backend.note_wipe()

    def restore_state(self, state: "StoreState") -> int:
        """Rebuild the replica/pointer tables from recovered durable state.

        Used when a killed node restarts from its WAL: the backend has
        already replayed the journal into ``state``; this re-materializes
        the live tables from it.  Deliberately does *not* call the
        backend hooks — these records are already in the journal, and
        re-appending them would double them on every restart.  Like
        :meth:`wipe_disk`, it also skips the global accounting hook:
        the node is failed while this runs, and recovery re-adds
        ``used`` wholesale when it rejoins.  Referrer sets and the
        cache are soft state the keep-alive machinery rebuilds after
        rejoin.  Returns the number of entries restored.
        """
        now = self.now() if self.fault_plan is not None else 0.0
        for fid, (cert, diverted) in sorted(state.replicas.items()):
            replica = StoredReplica(cert, diverted=diverted)
            replica.stored_at = now
            replica.last_checked = now
            if diverted:
                self.diverted_in[fid] = replica
            else:
                self.primaries[fid] = replica
            self.used += cert.size
        for fid, (cert, target, primary) in sorted(state.pointers.items()):
            self.pointers[fid] = DiversionPointer(cert, target, primary=primary)
        return len(state.replicas) + len(state.pointers)

    # -------------------------------------------------------------- queries

    def holds_file(self, file_id: int) -> bool:
        """Replica (either kind) present locally — satisfies a lookup."""
        return file_id in self.primaries or file_id in self.diverted_in

    def references_file(self, file_id: int) -> bool:
        """Replica or diversion pointer present — satisfies the k-invariant."""
        return self.holds_file(file_id) or file_id in self.pointers

    def file_ids(self) -> List[int]:
        """All fileIds this node is responsible for (replicas + pointers).

        Returned sorted: callers iterate this to drive repairs, so the
        order must not depend on set iteration order.
        """
        seen = set(self.primaries)
        seen.update(self.diverted_in)
        seen.update(self.pointers)
        return sorted(seen)

    def certificate_for(self, file_id: int) -> Optional[FileCertificate]:
        replica = self.get_replica(file_id)
        if replica is not None:
            return replica.certificate
        pointer = self.pointers.get(file_id)
        return pointer.certificate if pointer is not None else None

    def snapshot(self) -> dict:
        """Summary counters for stats and debugging."""
        return {
            "capacity": self.capacity,
            "used": self.used,
            "free": self.free,
            "primaries": len(self.primaries),
            "diverted_in": len(self.diverted_in),
            "pointers": len(self.pointers),
            "cached": len(self.cache),
            "cache_bytes": self.cache.bytes_used,
        }
