"""The PAST network: client operations and system-wide orchestration.

`PastNetwork` composes the Pastry overlay, the emulated topology and the
per-node storage layers, and exports the three client operations of §2:

* ``fileId = Insert(name, owner-credentials, k, file)``
* ``file   = Lookup(fileId)``
* ``Reclaim(fileId, owner-credentials)``

It also performs node admission control (§3.2), drives file diversion by
re-salting failed inserts (§3.4), orchestrates failure/recovery events,
and maintains the O(1) global utilization counters the experiments sample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..netsim.faults import READ_CORRUPT, READ_ERROR, StorageFaultPlan
from ..netsim.topology import Topology
from ..pastry import PastryNetwork, idspace
from ..pastry.network import RouteResult
from ..security import (
    FileCertificate,
    NodeIdentity,
    ReclaimReceipt,
    Smartcard,
    SmartcardIssuer,
    StoreReceipt,
)
from ..security.certificates import CertificateError
from ..security.smartcard import QuotaExceededError
from .config import PastConfig
from .errors import AdmissionError
from .integrity import IntegrityStats
from .messages import InsertRequest, LookupRequest, ReclaimRequest
from .resilience import RetryPolicy
from .seeding import derive_seed
from .node import PastNode
from .stats import InsertEvent, LookupEvent, PastStats
from .storage import LocalStore
from .transport import SimTransport


@dataclass
class InsertResult:
    """Client-visible outcome of an Insert operation."""

    success: bool
    name: str
    file_id: Optional[int] = None
    size: int = 0
    attempts: int = 1
    receipts: List[StoreReceipt] = field(default_factory=list)
    replica_diversions: int = 0
    failure_reason: Optional[str] = None
    hops: int = 0

    @property
    def file_diversions(self) -> int:
        """Number of re-salts performed (0 = first fileId was placed)."""
        return self.attempts - 1


@dataclass
class LookupResult:
    """Client-visible outcome of a Lookup operation."""

    success: bool
    file_id: int
    source: Optional[str] = None
    responder_id: Optional[int] = None
    certificate: Optional[FileCertificate] = None
    hops: int = 0
    #: File bytes, when the insert materialized them (None otherwise).
    content: Optional[bytes] = None
    #: Proximity-metric length of the route taken.
    distance: float = 0.0
    #: Route attempts issued (always 1 without a RetryPolicy).
    attempts: int = 1
    #: Virtual time the client spent, timeouts and backoffs included
    #: (only accounted when a RetryPolicy is in effect).
    elapsed: float = 0.0
    #: The answer came from a hedged direct fetch, not the routed request.
    hedged: bool = False
    #: Local copies that failed their verified read (corrupt or disk
    #: error) before a clean replica was served.
    integrity_failovers: int = 0


@dataclass
class ReclaimResult:
    """Client-visible outcome of a Reclaim operation."""

    success: bool
    file_id: int
    receipts: List[ReclaimReceipt] = field(default_factory=list)
    failure_reason: Optional[str] = None


class PastNetwork:
    """A complete PAST deployment inside the network emulator."""

    def __init__(
        self,
        config: Optional[PastConfig] = None,
        topology: Optional[Topology] = None,
        issuer: Optional[SmartcardIssuer] = None,
    ):
        self.config = config if config is not None else PastConfig()
        self.pastry = PastryNetwork(
            b=self.config.b,
            l=self.config.l,
            topology=topology,
            seed=self.config.seed,
            randomize_routing=self.config.randomize_routing,
        )
        #: The transport seam (messaging half): every routed message and
        #: direct RPC the storage layer issues goes through this object,
        #: so an AsyncioTransport can replace the emulated plane wholesale.
        self.transport = SimTransport(None, self.pastry)
        self.rng = random.Random(derive_seed(self.config.seed, "past-network"))
        #: Dedicated stream for client retry jitter: keeps RetryPolicy
        #: draws off ``self.rng`` so enabling retries cannot shift the
        #: salts/placements of unrelated operations.
        self.retry_rng = random.Random(derive_seed(self.config.seed, "client-retry"))
        self.issuer = issuer if issuer is not None else SmartcardIssuer()
        self.stats = PastStats()
        self._past: Dict[int, PastNode] = {}
        self._failed_past: Dict[int, PastNode] = {}
        #: Signed nodeId-to-address bindings (§2.3): every admitted node
        #: publishes one, and Pastry refuses to learn ids whose binding
        #: does not verify — forged routing entries are impossible.
        self.identities: Dict[int, NodeIdentity] = {}
        self._verified_ids: set = set()
        self.pastry.identity_verifier = self._identity_verifies
        self._registry: Dict[int, FileCertificate] = {}
        self._contents: Dict[int, bytes] = {}
        self._reclaimed: set = set()
        self.degraded_files: set = set()
        #: Storage-integrity plane: counters plus the (optional) disk
        #: fault plan and the virtual clock its bit rot accrues against.
        self.integrity = IntegrityStats()
        self.storage_faults: Optional[StorageFaultPlan] = None
        self._storage_clock: Callable[[], float] = lambda: 0.0
        #: Durable-store seam: when set, every admitted node's store gets
        #: ``factory(node_id, fault_plan) -> backend`` attached (see
        #: :mod:`repro.store`).  None — the default — leaves stores
        #: purely in-memory, byte-identical to the pre-seam behavior.
        self.store_backend_factory: Optional[Callable] = None
        self.total_capacity = 0
        self.bytes_stored = 0
        self.clock = 0
        #: When False, membership changes do not trigger replica
        #: maintenance — used to model *simultaneous* failures (the paper's
        #: availability model counts a file lost when all k replicas fail
        #: within one recovery period, i.e. before maintenance runs).
        self.maintenance_enabled = True

    # ------------------------------------------------------------- topology

    def __len__(self) -> int:
        return len(self._past)

    def past_node(self, node_id: int) -> PastNode:
        return self._past[node_id]

    def past_node_or_none(self, node_id: int) -> Optional[PastNode]:
        return self._past.get(node_id)

    def nodes(self) -> List[PastNode]:
        return [self._past[i] for i in self.pastry.node_ids]

    def utilization(self) -> float:
        """Global storage utilization: replica bytes over total capacity."""
        return self.bytes_stored / self.total_capacity if self.total_capacity else 0.0

    def _account(self, delta: int) -> None:
        self.bytes_stored += delta

    # ------------------------------------------------------------ node adds

    def add_node(
        self,
        capacity: int,
        node_id: Optional[int] = None,
        cluster=None,
        allow_split: bool = True,
    ) -> List[PastNode]:
        """Admit one storage node (§3.2).

        The advertised capacity is compared against the average capacity
        of the nodes around the would-be nodeId.  A node more than
        ``admission_ratio`` times larger is asked to split and join under
        multiple nodeIds (done here automatically when ``allow_split``); a
        node smaller than ``1/admission_ratio`` of the average is rejected.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        avg = self._neighborhood_average_capacity(node_id)
        if avg is not None and avg > 0:
            ratio = self.config.admission_ratio
            if capacity * ratio < avg:
                raise AdmissionError(
                    f"node capacity {capacity} below 1/{ratio:g} of leaf-set average {avg:.0f}"
                )
            if capacity > avg * ratio:
                if not allow_split:
                    raise AdmissionError(
                        f"node capacity {capacity} exceeds {ratio:g}x leaf-set "
                        "average; must split and join under multiple nodeIds"
                    )
                parts = int(capacity // (avg * ratio)) + 1
                out: List[PastNode] = []
                share = capacity // parts
                for i in range(parts):
                    cap_i = share if i < parts - 1 else capacity - share * (parts - 1)
                    out.extend(self.add_node(cap_i, cluster=cluster, allow_split=False))
                return out
        return [self._admit(capacity, node_id, cluster)]

    def _neighborhood_average_capacity(self, node_id: Optional[int]) -> Optional[float]:
        if not self._past:
            return None
        probe = node_id if node_id is not None else self.rng.getrandbits(idspace.ID_BITS)
        around = self.pastry.k_closest_live(probe, self.config.l)
        caps = [self._past[i].store.capacity for i in around if i in self._past]
        return sum(caps) / len(caps) if caps else None

    def _identity_verifies(self, node_id: int) -> bool:
        """Pastry's hook: accept routing state only for verified bindings."""
        if node_id in self._verified_ids:
            return True
        identity = self.identities.get(node_id)
        if identity is None or identity.node_id != node_id:
            return False
        try:
            identity.verify()
        except CertificateError:
            return False
        self._verified_ids.add(node_id)
        return True

    def _admit(self, capacity: int, node_id: Optional[int], cluster) -> PastNode:
        store = LocalStore(
            capacity,
            cache_policy=self.config.cache_policy,
            cache_fraction=self.config.cache_fraction,
            accounting=self._account,
        )
        pastry_node = self.pastry._make_node(node_id, cluster=cluster, register=False)
        card = self.issuer.issue_card(f"node-{pastry_node.node_id:032x}")
        self.identities[pastry_node.node_id] = NodeIdentity.issue(
            card, pastry_node.node_id, f"{pastry_node.node_id:032x}.past.example:4160"
        )
        store.node_id = pastry_node.node_id
        if self.storage_faults is not None:
            store.fault_plan = self.storage_faults
            store.now = self._storage_clock
        if self.store_backend_factory is not None:
            store.backend = self.store_backend_factory(
                pastry_node.node_id, self.storage_faults
            )
        node = PastNode(pastry_node, store, card, self.config, self)
        # Register the storage layer before the overlay announces the node,
        # so join-time maintenance hooks can reach it.
        self._past[pastry_node.node_id] = node
        self.total_capacity += capacity
        if len(self.pastry) == 0:
            self.pastry._register(pastry_node)
        else:
            self._join_existing(pastry_node)
        return node

    def _join_existing(self, pastry_node) -> None:
        """Run the Pastry join protocol for a pre-built node object."""
        net = self.pastry
        seed = net._nearest_by_proximity(pastry_node.coord)
        result = net.route(seed.node_id, pastry_node.node_id, message=None)
        path_nodes = [net.node(i) for i in result.path]
        terminus = path_nodes[-1]
        pastry_node.leafset.add(terminus.node_id)
        pastry_node.leafset.add_all(terminus.leafset.members())
        pastry_node.consider_neighbor(seed.node_id)
        for n_id in seed.neighborhood:
            pastry_node.consider_neighbor(n_id)
        for hop in path_nodes:
            pastry_node.routing_table.consider(hop.node_id)
            depth = idspace.shared_prefix_length(hop.node_id, pastry_node.node_id, net.b)
            for row in range(min(depth + 1, pastry_node.routing_table.rows)):
                pastry_node.routing_table.install_row(row, hop.routing_table.row(row))
        for member in pastry_node.leafset.sorted_members():
            pastry_node.routing_table.consider(member)
        net._register(pastry_node)
        contacts = set(pastry_node.leafset.members())
        contacts.update(pastry_node.routing_table.entries())
        contacts.update(pastry_node.neighborhood)
        contacts.update(p.node_id for p in path_nodes)
        # Sorted: learn() can cascade into repairs and RPCs, so the
        # announcement order must not depend on set iteration order.
        for contact_id in sorted(contacts):
            contact = net.get_live(contact_id)
            if contact is not None:
                contact.learn(pastry_node.node_id)
                net.stats.record_rpc()

    def build(self, capacities: List[int], clusters: Optional[List] = None) -> List[PastNode]:
        """Admit a batch of nodes with the given advertised capacities."""
        out: List[PastNode] = []
        for i, capacity in enumerate(capacities):
            cluster = clusters[i % len(clusters)] if clusters else None
            out.extend(self.add_node(capacity, cluster=cluster))
        return out

    # ----------------------------------------------------------- clients

    def create_client(self, label: str, quota: Optional[int] = None) -> Smartcard:
        """Issue a user smartcard (holds keys and the storage quota)."""
        return self.issuer.issue_card(label, quota=quota)

    # ------------------------------------------------------------- registry

    def is_file_registered(self, file_id: int) -> bool:
        return file_id in self._registry

    def certificate_of(self, file_id: int) -> Optional[FileCertificate]:
        return self._registry.get(file_id)

    def owner_of(self, file_id: int) -> Optional[bytes]:
        cert = self._registry.get(file_id)
        return cert.owner_public if cert is not None else None

    def live_file_ids(self) -> List[int]:
        """All inserted, not-yet-reclaimed fileIds (test oracle)."""
        return list(self._registry)

    def note_degraded_file(self, file_id: int) -> None:
        """Record that a file temporarily has fewer than k replicas (§3.5)."""
        self.degraded_files.add(file_id)

    # ------------------------------------------------------------- insert

    def insert(
        self,
        name: str,
        owner: Smartcard,
        size: Optional[int] = None,
        client_id: int = 0,
        k: Optional[int] = None,
        content: Optional[bytes] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> InsertResult:
        """Insert a file, re-salting its fileId on failure (file diversion).

        A client retries with a fresh salt up to three times; after four
        failed attempts the insert is aborted and reported to the
        application (§3.4).

        ``size`` alone runs the content-free simulation used by the
        trace-driven experiments; passing ``content`` materializes the
        bytes (the certificate then carries the real SHA-1 and lookups
        return the data).

        A ``policy`` separates transport loss from storage failure: a
        route the fault plane lost is re-issued (same salt, randomized
        routing per §2.3) before the client concludes the fileId's
        neighborhood is full and re-salts.  Without one, a lost insert
        burns a diversion attempt — the §3.4 path predates lossy links.
        """
        if content is not None:
            if size is not None and size != len(content):
                raise ValueError("size disagrees with len(content)")
            size = len(content)
        if size is None:
            raise ValueError("give size or content")
        k = k if k is not None else self.config.k
        self.clock += 1
        total_hops = 0
        request: Optional[InsertRequest] = None
        for attempt in range(1, self.config.max_insert_attempts + 1):
            salt = self.rng.getrandbits(64)
            fid = idspace.file_id(name, owner.public_key, salt)
            cert = owner.issue_file_certificate(
                fid, size, k, salt, self.clock, content=content
            )
            try:
                owner.debit(size, k)
            except QuotaExceededError as exc:
                result = InsertResult(
                    False, name, size=size, attempts=attempt, failure_reason=str(exc)
                )
                self._record_insert(result)
                return result
            request = InsertRequest(cert, client_id, content=content)
            route = self.transport.route(client_id, idspace.routing_key(fid), message=request)
            total_hops += route.hops
            if policy is not None and (route.lost or route.dropped):
                request, route, retry_hops = self._reroute_insert(
                    cert, client_id, content, policy
                )
                total_hops += retry_hops
            coordinator_id = request.coordinator_id or route.terminus
            coordinator = self._past.get(coordinator_id)
            ok = coordinator is not None and coordinator.coordinate_insert(request)
            if ok:
                for receipt in request.receipts:
                    receipt.verify()
                if len(request.receipts) < k:
                    raise RuntimeError("insert accepted with fewer than k receipts")
                self._registry[fid] = cert
                if content is not None:
                    self._contents[fid] = content
                self._cache_along_path(route.path, cert)
                result = InsertResult(
                    True,
                    name,
                    file_id=fid,
                    size=size,
                    attempts=attempt,
                    receipts=list(request.receipts),
                    replica_diversions=request.replica_diversions,
                    hops=total_hops,
                )
                self._record_insert(result)
                return result
            owner.credit(size, k)
        result = InsertResult(
            False,
            name,
            size=size,
            attempts=self.config.max_insert_attempts,
            failure_reason=(request.failure_reason if request else None) or "no storage",
            hops=total_hops,
        )
        self._record_insert(result)
        return result

    def _reroute_insert(self, cert, client_id, content, policy: RetryPolicy):
        """Re-issue a lost insert route under the client's retry policy.

        Retries keep the same salt — the transport lost the message, the
        fileId's neighborhood never refused it — and run with randomized
        routing so each retry is likely to avoid the previous path (§2.3).
        Returns the last (request, route) pair plus the hops spent.
        """
        hops = 0
        request = None
        route = None
        saved = self.pastry.randomize_routing
        if policy.randomize_retries:
            self.pastry.randomize_routing = True
        try:
            for retry in range(1, policy.max_attempts):
                request = InsertRequest(cert, client_id, content=content)
                route = self.transport.route(
                    client_id, idspace.routing_key(cert.file_id), message=request
                )
                hops += route.hops
                if not (route.lost or route.dropped):
                    break
        finally:
            if self.pastry.randomize_routing != saved:
                self.pastry.randomize_routing = saved
        if request is None:  # max_attempts == 1: no retry budget
            request = InsertRequest(cert, client_id, content=content)
            request.failure_reason = "request lost in transit"
            route = RouteResult(lost=True)
        return request, route, hops

    def _record_insert(self, result: InsertResult) -> None:
        self.stats.record_insert(
            InsertEvent(
                size=result.size,
                success=result.success,
                utilization=self.utilization(),
                file_diversions=result.file_diversions if result.success else 0,
                replica_diversions=result.replica_diversions,
                replicas_stored=len(result.receipts),
            )
        )

    def _cache_along_path(self, path: List[int], cert: FileCertificate, skip=()) -> None:
        """Cache a file at the nodes a request was routed through (§4)."""
        for node_id in path:
            if node_id in skip:
                continue
            node = self._past.get(node_id)
            if node is not None:
                node.cache_routed_file(cert)

    # -------------------------------------------------------------- lookup

    def lookup(
        self,
        file_id: int,
        client_id: int,
        retries: int = 0,
        policy: Optional[RetryPolicy] = None,
    ) -> LookupResult:
        """Retrieve a file; served by the first node en route that has it.

        ``retries`` re-issues the request when a malicious node along the
        path swallowed it; with randomized routing enabled, each retry is
        likely to take a different route around the bad node (§2.3).

        A ``policy`` supersedes ``retries`` with the full client
        resilience loop: per-attempt timeouts on the virtual clock,
        jittered exponential backoff, randomized-routing retries, and a
        hedged fallback that queries the k replica holders directly when
        a delivered request found no replica along its route.
        """
        if policy is not None:
            return self._lookup_with_policy(file_id, client_id, policy)
        self.clock += 1
        for _attempt in range(retries + 1):
            request = LookupRequest(file_id, client_id)
            route = self.transport.route(
                client_id, idspace.routing_key(file_id), message=request,
                collect_distance=True,
            )
            if not route.dropped:
                break
        success = request.source is not None and not route.dropped
        hops = route.hops + request.extra_hops
        if success:
            self._cache_along_path(route.path, request.certificate, skip={request.responder_id})
        self.stats.record_lookup(
            LookupEvent(
                file_id=file_id,
                hops=hops,
                success=success,
                source=request.source,
                utilization=self.utilization(),
                responder_id=request.responder_id,
                distance=route.distance,
            )
        )
        return LookupResult(
            success=success,
            file_id=file_id,
            source=request.source,
            responder_id=request.responder_id,
            certificate=request.certificate,
            hops=hops,
            content=self._contents.get(file_id) if success else None,
            distance=route.distance,
            integrity_failovers=request.integrity_failures,
        )

    def _lookup_with_policy(
        self, file_id: int, client_id: int, policy: RetryPolicy
    ) -> LookupResult:
        """The resilient client loop behind ``lookup(..., policy=...)``."""
        self.clock += 1
        key = idspace.routing_key(file_id)
        elapsed = 0.0
        attempts = 0
        total_hops = 0
        total_distance = 0.0
        request = LookupRequest(file_id, client_id)
        hedged = False
        route = None
        saved_randomize = self.pastry.randomize_routing
        # Under a realtime transport the virtual `elapsed` model still
        # runs (it prices lost messages the paper's way), but the op
        # deadline additionally binds *wall* time — a live cluster's
        # delays and reconnect backoffs are real seconds the virtual
        # model cannot see.  SimTransport has no `realtime` attribute,
        # so the simulator's path (and its digests) are untouched.
        wall_start = (
            self.transport.now()
            if getattr(self.transport, "realtime", False) else None
        )
        try:
            for attempt in range(1, policy.max_attempts + 1):
                if attempt > 1:
                    elapsed += policy.backoff(attempt - 1, self.retry_rng)
                    if policy.randomize_retries:
                        self.pastry.randomize_routing = True
                if elapsed > policy.op_deadline:
                    break
                if (wall_start is not None
                        and self.transport.now() - wall_start > policy.op_deadline):
                    break
                attempts = attempt
                request = LookupRequest(file_id, client_id)
                route = self.transport.route(
                    client_id, key, message=request, collect_distance=True
                )
                total_hops += route.hops
                total_distance += route.distance
                elapsed += route.latency
                if route.lost or route.dropped:
                    # No reply ever comes; the client times out (§2.3:
                    # "the client must retry").
                    elapsed += policy.attempt_timeout
                    continue
                if request.source is not None:
                    break
                # Delivered, but no node along the route had a replica —
                # the holders may be crashed, partitioned, or mid-repair.
                # Hedge: ask each of the k replica holders directly.
                if policy.hedge and route.terminus is not None:
                    hedged = self._hedged_fetch(request, route.terminus, key)
                    if hedged:
                        break
                elapsed += policy.attempt_timeout
        finally:
            if self.pastry.randomize_routing != saved_randomize:
                self.pastry.randomize_routing = saved_randomize
        success = request.source is not None
        total_hops += request.extra_hops
        if success and not hedged and route is not None:
            self._cache_along_path(
                route.path, request.certificate, skip={request.responder_id}
            )
        self.stats.record_lookup(
            LookupEvent(
                file_id=file_id,
                hops=total_hops,
                success=success,
                source=request.source,
                utilization=self.utilization(),
                responder_id=request.responder_id,
                distance=total_distance,
            )
        )
        return LookupResult(
            success=success,
            file_id=file_id,
            source=request.source,
            responder_id=request.responder_id,
            certificate=request.certificate,
            hops=total_hops,
            content=self._contents.get(file_id) if success else None,
            distance=total_distance,
            attempts=max(attempts, 1),
            elapsed=elapsed,
            hedged=hedged,
            integrity_failovers=request.integrity_failures,
        )

    def _hedged_fetch(self, request: LookupRequest, terminus_id: int, key: int) -> bool:
        """Ask each replica holder directly until one serves the file.

        The terminus (numerically closest live node) knows the replica
        set from its leaf set; the client then issues one direct RPC per
        holder, each individually subject to the fault plane, stopping at
        the first that answers.  This is the "fall back across the k
        replica holders" hedge: it converts "the routed request happened
        to traverse no live holder" into at most k extra RPCs.
        """
        terminus = self._past.get(terminus_id)
        if terminus is None:
            return False
        for holder_id in terminus.replica_set_for(key):
            holder = self._past.get(holder_id)
            if holder is None:
                continue
            request.extra_hops += 1
            delivered, served = self.transport.send(
                request.client_id, holder_id, holder._try_satisfy_lookup, request
            )
            if delivered and served:
                return True
        return False

    # ------------------------------------------------------------- reclaim

    def reclaim(self, file_id: int, owner: Smartcard, client_id: int) -> ReclaimResult:
        """Reclaim the storage of the k replicas of a file (§2.2).

        Weaker than delete: routed to the replica set, each holder frees
        the storage and issues a receipt; cached copies elsewhere may
        linger until evicted, so the file may remain fetchable for a time.
        """
        self.clock += 1
        cert = owner.issue_reclaim_certificate(file_id)
        request = ReclaimRequest(cert, client_id)
        route = self.transport.route(
            client_id, idspace.routing_key(file_id), message=request
        )
        coordinator_id = request.coordinator_id or route.terminus
        coordinator = self._past.get(coordinator_id)
        ok = coordinator is not None and coordinator.coordinate_reclaim(request)
        if ok:
            owner.redeem_reclaim_receipts(request.receipts, self.config.k)
            self._registry.pop(file_id, None)
            self._contents.pop(file_id, None)
            self._reclaimed.add(file_id)
            self.degraded_files.discard(file_id)
        self.stats.reclaim_count += 1
        return ReclaimResult(
            success=ok,
            file_id=file_id,
            receipts=list(request.receipts),
            failure_reason=request.failure_reason,
        )

    # ------------------------------------------------------ churn handling

    def fail_node(self, node_id: int) -> None:
        """Fail a node: leaf-set repair, replica re-creation, pointer fixes."""
        self.crash_node(node_id)
        self.process_failure_detection(node_id)

    def crash_node(self, node_id: int) -> None:
        """Phase 1: the node goes silent (no detection yet).

        Used by the recovery-period experiments: between the crash and
        :meth:`process_failure_detection`, keep-alives have not expired,
        so no re-replication runs — the window during which a second
        failure can cost a file another replica.
        """
        node = self._past.pop(node_id)
        self._failed_past[node_id] = node
        self.total_capacity -= node.store.capacity
        self.bytes_stored -= node.store.used
        self.pastry.mark_failed(node_id)

    def wipe_failed_disk(self, node_id: int) -> None:
        """Destroy a crashed node's disk contents (crash = media loss).

        The global byte counters were already adjusted at crash time, so
        the store is emptied directly.  A later :meth:`recover_node`
        brings the node back empty, like "a recovering node whose disk
        contents were lost as part of the failure" (§3.5).
        """
        node = self._failed_past[node_id]
        node.store.wipe_disk()
        if self.storage_faults is not None:
            # The media is gone; so are its corruption records.
            self.storage_faults.forget_node(node_id)

    def process_failure_detection(self, node_id: int) -> None:
        """Phase 2: keep-alive expiry — leaf-set repair and maintenance."""
        node = self._failed_past.get(node_id)
        if node is None:
            return  # recovered before the keep-alive expired
        self.pastry.notify_failure(node_id)
        if not self.maintenance_enabled:
            return
        # Keep-alive expiry between pointed-to replicas and their referrers.
        # Diverted replicas are referenced by nodes A and C; primary
        # replicas can be referenced too, via §3.5 join-time pointers.
        referenced = list(node.store.diverted_in.items()) + list(
            node.store.primaries.items()
        )
        for fid, replica in referenced:
            for ref in sorted(replica.referrers):
                ref_node = self._past.get(ref)
                if ref_node is None:
                    continue
                # Confirm-reread: the previous referrer's failover
                # suspends at its re-replication RPCs; deliver only to
                # referrers that still hold their pointer.
                if fid not in ref_node.store.pointers:
                    continue
                ref_node.on_diverted_target_failed(fid)
        for fid, pointer in list(node.store.pointers.items()):
            target = self._past.get(pointer.target_id)
            if target is None:
                continue
            # Confirm-reread: earlier deliveries suspend at their
            # pointer-rebind RPCs; the target may have been detected
            # failed (or shed the replica) while one was in flight.
            if pointer.target_id not in self._past or not target.store.holds_file(fid):
                continue
            target.on_referrer_failed(fid, node_id, pointer.primary)

    def fail_simultaneously(self, node_ids) -> None:
        """Fail a set of nodes within one recovery period.

        Replica maintenance is suppressed for the duration, so files whose
        entire replica set is in ``node_ids`` are lost — the paper's
        availability model for choosing k.  Call :meth:`repair_all`
        afterwards to let the survivors restore the invariant for every
        file that still has a live replica.
        """
        self.maintenance_enabled = False
        try:
            for node_id in list(node_ids):
                self.fail_node(node_id)
        finally:
            self.maintenance_enabled = True

    def repair_all(self) -> None:
        """Run a full maintenance pass over every node's entries."""
        for node in self.nodes():
            for fid in list(node.store.file_ids()):
                node._restore_file_invariant(fid)

    def recover_node(self, node_id: int) -> PastNode:
        """Recover a previously failed node, disk contents intact."""
        node = self._failed_past.pop(node_id)
        self._past[node_id] = node
        self.total_capacity += node.store.capacity
        self.bytes_stored += node.store.used
        self.pastry.recover_node(node_id)
        self._reconcile_recovered(node)
        return node

    def _reconcile_recovered(self, node: PastNode) -> None:
        """Drop state invalidated while the node was down."""
        for fid in list(node.store.file_ids()):
            # Confirm-reread: the repair paths below suspend at their
            # RPCs, and an interleaved repair can retire this entry
            # while a previous iteration's call is in flight.
            if fid not in node.store.file_ids():
                continue
            if fid in self._reclaimed or fid not in self._registry:
                node.store.drop_pointer(fid)
                node.store.drop_replica(fid)
                continue
            pointer = node.store.pointers.get(fid)
            if pointer is not None:
                target = self._past.get(pointer.target_id)
                if target is None or not target.store.holds_file(fid):
                    node.on_diverted_target_failed(fid)
                else:
                    # Re-establish the keep-alive pair dropped at failure
                    # (idempotent: skip referrers that are already back).
                    replica = target.store.get_replica(fid)
                    if node.node_id not in replica.referrers:
                        replica.referrers.add(node.node_id)
        for fid in list(node.store.primaries):
            if fid not in node.store.primaries:
                # Confirm-reread: maybe_discard() suspends at its
                # pointer-rebind RPCs; the primary may already be gone.
                continue
            node.maybe_discard(fid)
        # Stale on-disk entries may now duplicate entries created while the
        # node was down; have each file's replica set re-check itself.
        for fid in list(node.store.file_ids()):
            # Confirm-reread: request_repair() suspends once per member;
            # skip entries an interleaved repair already retired.
            if fid not in node.store.file_ids():
                continue
            node.request_repair(fid)

    def run_migration(self, rounds: int = 1) -> int:
        """Run the §3.5 background migration on every node."""
        migrated = 0
        for _ in range(rounds):
            moved = 0
            for node in self.nodes():
                moved += node.migrate_pointers()
            migrated += moved
            if moved == 0:
                break
        return migrated

    # ---------------------------------------------------- storage integrity

    def install_storage_faults(
        self,
        plan: StorageFaultPlan,
        clock: Optional[Callable[[], float]] = None,
    ) -> StorageFaultPlan:
        """Install a disk fault plan on every store, current and future.

        ``clock`` is the virtual-time callable bit rot accrues against
        (e.g. ``lambda: sim.now``).  Without one the clock stays frozen
        at 0.0 — partial writes, read errors and disk modes still fire,
        but time-driven rot does not.
        """
        self.storage_faults = plan
        if clock is not None:
            self._storage_clock = clock
        plan.bind_clock(self._storage_clock)
        for node in list(self._past.values()) + list(self._failed_past.values()):
            node.store.fault_plan = plan
            node.store.now = self._storage_clock
        return plan

    def remove_storage_faults(self) -> None:
        """Detach the disk fault plan from every store.

        Corruption already materialized into replicas' ``corrupted``
        flags persists — removing the plan stops *new* faults, it does
        not heal old ones.  Used by harnesses to make the post-heal
        phase fault-free before auditing.
        """
        self.storage_faults = None
        for node in list(self._past.values()) + list(self._failed_past.values()):
            node.store.fault_plan = None

    def verify_all_replicas(self) -> Dict[str, List[Tuple[int, int]]]:
        """One verified read of every replica on every live node.

        Materializes lazily-evaluated bit rot into the replicas'
        ``corrupted`` flags so a subsequent (read-only, draw-free)
        :func:`~repro.core.invariants.audit` sees the damage.  Returns
        the sorted ``(node_id, file_id)`` pairs that verified corrupt
        and those that hit transient read errors.
        """
        corrupt: List[Tuple[int, int]] = []
        errors: List[Tuple[int, int]] = []
        for node in self.nodes():
            for fid in node.store.file_ids():
                if not node.store.holds_file(fid):
                    continue
                verdict = node.store.verify_replica(fid)
                if verdict == READ_CORRUPT:
                    corrupt.append((node.node_id, fid))
                elif verdict == READ_ERROR:
                    errors.append((node.node_id, fid))
        return {"corrupt": sorted(corrupt), "errors": sorted(errors)}
