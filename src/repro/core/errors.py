"""Exception hierarchy for the PAST storage layer."""

from __future__ import annotations


class PastError(Exception):
    """Base class for all PAST storage-layer errors."""


class InsertFailedError(PastError):
    """An insert could not place k replicas after all file-diversion retries.

    The application may retry with a smaller file (e.g. after fragmenting)
    or a smaller replication factor, as §3.4 suggests.
    """

    def __init__(self, name: str, attempts: int, last_file_id=None):
        super().__init__(
            f"insert of {name!r} failed after {attempts} attempt(s); "
            "the system could not locate sufficient storage"
        )
        self.name = name
        self.attempts = attempts
        self.last_file_id = last_file_id


class FileNotFoundError_(PastError):
    """A lookup reached the fileId's neighborhood but found no replica."""

    def __init__(self, file_id: int):
        super().__init__(f"no replica of file {file_id:#x} is reachable")
        self.file_id = file_id


class FileIdCollisionError(PastError):
    """A later insert collided with an existing fileId and was rejected."""


class NotOwnerError(PastError):
    """A reclaim was attempted by a party other than the file's owner."""


class AdmissionError(PastError):
    """A node was refused admission to the PAST network (§3.2)."""


class CapacityError(PastError):
    """A local store operation would exceed the node's disk capacity."""
