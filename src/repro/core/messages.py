"""Request messages routed through the Pastry overlay by PAST.

Requests are mutable envelopes: routing carries them node to node and the
intercepting node records its response in the message.  The network layer
then translates the envelope into a client-facing result object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..security import FileCertificate, ReclaimCertificate, ReclaimReceipt, StoreReceipt


@dataclass
class InsertRequest:
    """Carries a file (certificate + simulated content) towards its fileId."""

    certificate: FileCertificate
    client_id: int
    #: Actual file bytes, when the client materializes them (small demo
    #: files, erasure-coded shards); None for size-only simulation.
    content: Optional[bytes] = None
    #: Filled by the coordinating node (first of the k closest reached).
    coordinator_id: Optional[int] = None
    receipts: List[StoreReceipt] = field(default_factory=list)
    accepted: bool = False
    failure_reason: Optional[str] = None
    replica_diversions: int = 0


@dataclass
class LookupRequest:
    """Travels towards the fileId until any node can satisfy it."""

    file_id: int
    client_id: int
    #: Where the content was found: "primary", "diverted", "pointer", "cache".
    source: Optional[str] = None
    responder_id: Optional[int] = None
    certificate: Optional[FileCertificate] = None
    #: Extra (non-routing) hops spent chasing a diversion pointer.
    extra_hops: int = 0
    #: Local copies that failed their verified read (corrupt or disk
    #: error) while this request searched for a servable replica.
    integrity_failures: int = 0


@dataclass
class ReclaimRequest:
    """Carries a reclaim certificate towards the fileId's replica set."""

    certificate: ReclaimCertificate
    client_id: int
    coordinator_id: Optional[int] = None
    receipts: List[ReclaimReceipt] = field(default_factory=list)
    failure_reason: Optional[str] = None
