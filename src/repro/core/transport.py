"""The transport seam: how engine-pure node logic reaches time and network.

ROADMAP item 2 wants the same ``PastNode``/``PastryNode`` logic to run
over a real asyncio transport as well as the deterministic simulator.
The precondition is an architectural boundary: node logic must reach the
clock, timers, routed messages and direct RPCs through *one* interface,
so that swapping the engine is a constructor argument rather than a
rewrite.  This module defines that interface; the concurrency analyzer
(``python -m repro.devtools.conc``) enforces it — engine-pure modules
(``pastry.node``, ``pastry.keepalive``, ``core.node``, ``core.storage``,
``core.cache``, ``core.integrity``) may not import the event simulator,
construct one, read ``sim.now``, or call the network's accounting/fault
primitives directly.

:class:`Transport` documents the contract.  It is a structural protocol
(duck typing, no ``abc`` machinery) so the simulator-backed
implementation — :class:`~repro.netsim.transport.SimTransport`,
re-exported here — pays no dispatch overhead on the hot path, and a
future ``AsyncioTransport`` only needs to match the method signatures.

Under ``SimTransport`` every ``send`` completes synchronously, so
handlers keep today's run-to-completion atomicity.  Under a concurrent
transport every ``send``/``route`` is a *suspension point*: state read
before it may be stale after.  The analyzer's atomicity family flags
exactly those read-modify-write sequences; see DESIGN.md §4h.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from ..netsim.transport import SimTransport, as_transport

__all__ = ["Transport", "SimTransport", "as_transport"]


class Transport:
    """Structural contract for a transport seam implementation.

    Time plane:

    * ``now() -> float`` — current time (virtual or wall-clock).
    * ``schedule(delay, callback) -> handle`` /
      ``schedule_at(when, callback) -> handle`` — one-shot callbacks;
      ``cancel(handle)`` revokes one.
    * ``every(period, callback, jitter_fn=None, first_delay=None)`` —
      a repeating timer with a ``stop()`` method.

    Message plane:

    * ``route(origin_id, key, message=None, collect_distance=False)`` —
      overlay-routed delivery towards ``key`` (Pastry's ``route``).
    * ``send(origin_id, target_id, call, *args, reliable=..., **kwargs)
      -> (delivered, result)`` — one direct RPC; ``delivered`` is False
      when the message was lost or the target unreachable.
    * ``probe(origin_id, peer_id) -> bool`` — one keep-alive probe.

    Implementations must be deterministic functions of their inputs and
    any engine state they encapsulate: the schedule explorer replays
    recorded decision sequences through the same seam.
    """

    def now(self) -> float:
        raise NotImplementedError

    def schedule(self, delay: float, callback: Callable[[], None]):
        raise NotImplementedError

    def schedule_at(self, when: float, callback: Callable[[], None]):
        raise NotImplementedError

    def cancel(self, handle) -> None:
        raise NotImplementedError

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        jitter_fn: Optional[Callable[[], float]] = None,
        first_delay: Optional[float] = None,
    ):
        raise NotImplementedError

    def route(self, origin_id: int, key: int, message=None,
              collect_distance: bool = False):
        raise NotImplementedError

    def send(
        self,
        origin_id: int,
        target_id: int,
        call: Optional[Callable[..., Any]],
        *args: Any,
        reliable: bool = False,
        **kwargs: Any,
    ) -> Tuple[bool, Any]:
        raise NotImplementedError

    def probe(self, origin_id: int, peer_id: int) -> bool:
        raise NotImplementedError
