"""Configuration for a PAST deployment.

The defaults mirror the paper's experimental setup (§5): ``b = 4``,
``l = 32``, ``k = 5`` replicas, replica-diversion thresholds
``t_pri = 0.1`` and ``t_div = 0.05``, cache-insertion fraction ``c = 1``
and the GreedyDual-Size eviction policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PastConfig:
    """Tunable parameters of a PAST network.

    Attributes
    ----------
    b:
        Pastry digit width in bits (routing-table branching ``2**b``).
    l:
        Leaf-set (and neighborhood-set) size.
    k:
        Replication factor; must satisfy ``k <= l/2 + 1`` so that a
        coordinator's leaf set always contains the whole replica set.
    t_pri:
        Acceptance threshold for *primary* replicas: node ``N`` rejects
        file ``D`` if ``size(D) / free(N) > t_pri``.
    t_div:
        Acceptance threshold for *diverted* replicas (``t_div < t_pri`` so
        nodes keep room for primaries and divert only to nodes with
        significantly more free space).
    max_insert_attempts:
        Total fileId salts tried per insert: the original plus up to three
        re-salted retries (file diversion, §3.4).
    cache_policy:
        ``"gds"`` (GreedyDual-Size), ``"lru"`` or ``"none"``.
    cache_fraction:
        The fraction *c* of a node's current cache size above which a
        routed-through file is not cached (§4).
    divert_target_policy:
        ``"max_free"`` per the paper; ``"random"`` is an ablation.
    admission_ratio:
        Nodes whose advertised capacity differs from the leaf-set average
        by more than this factor are split or rejected (§3.2, "two orders
        of magnitude").
    randomize_routing:
        Enable Pastry's randomized routing (security hardening, §2.3).
    seed:
        Master seed for all randomness in the deployment.
    """

    b: int = 4
    l: int = 32
    k: int = 5
    t_pri: float = 0.1
    t_div: float = 0.05
    max_insert_attempts: int = 4
    cache_policy: str = "gds"
    cache_fraction: float = 1.0
    divert_target_policy: str = "max_free"
    admission_ratio: float = 100.0
    randomize_routing: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.k > self.l // 2 + 1:
            raise ValueError(f"k={self.k} exceeds l/2+1={self.l // 2 + 1}")
        if not 0.0 <= self.t_div:
            raise ValueError("t_div must be non-negative")
        if self.t_pri < self.t_div:
            raise ValueError("t_pri must be >= t_div")
        if self.cache_policy not in ("gds", "lru", "none"):
            raise ValueError(f"unknown cache policy {self.cache_policy!r}")
        if self.divert_target_policy not in ("max_free", "random"):
            raise ValueError(f"unknown diversion policy {self.divert_target_policy!r}")
        if self.max_insert_attempts < 1:
            raise ValueError("need at least one insert attempt")

    def with_overrides(self, **kwargs) -> "PastConfig":
        """A copy of this config with some fields replaced."""
        return replace(self, **kwargs)


#: Configuration matching the paper's §5 experiments.
PAPER_CONFIG = PastConfig()

#: Configuration with all storage management disabled: primary nodes accept
#: anything that fits (t_pri = 1), diverted stores accept nothing
#: (t_div = 0) and a single insert attempt is made (no re-salting).  This
#: is the paper's first experiment demonstrating the need for explicit
#: load balancing.
NO_DIVERSION_CONFIG = PastConfig(
    t_pri=1.0, t_div=0.0, max_insert_attempts=1, cache_policy="none"
)
