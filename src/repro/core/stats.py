"""Statistics collection for PAST experiments.

Records per-operation events (with the global storage utilization at the
time of the event) so the evaluation harness can rebuild every series the
paper plots: cumulative failure ratio vs. utilization (Figs. 2-3), file
diversion ratios (Fig. 4), replica-diversion ratio (Fig. 5), failed-insert
sizes (Figs. 6-7), and cache hit rate / routing hops vs. utilization
(Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class InsertEvent:
    """One client-level insert operation (spanning all re-salt attempts)."""

    __slots__ = (
        "size",
        "success",
        "utilization",
        "file_diversions",
        "replica_diversions",
        "replicas_stored",
    )

    size: int
    success: bool
    utilization: float  # global utilization when the operation completed
    file_diversions: int  # number of re-salts used (0 = first id stuck)
    replica_diversions: int  # diverted replicas created by the final attempt
    replicas_stored: int  # total replicas created (k on success, else 0)


class LookupEvent:
    """One client-level lookup operation.

    Plain ``__slots__`` class rather than a dataclass: one event is
    recorded per lookup, so the per-instance ``__dict__`` a defaulted
    dataclass would carry is measurable overhead on large workloads.
    """

    __slots__ = (
        "file_id",
        "hops",
        "success",
        "source",
        "utilization",
        "responder_id",
        "distance",
    )

    def __init__(
        self,
        file_id: int,
        hops: int,
        success: bool,
        source: Optional[str],  # "primary" | "diverted" | "pointer" | "cache"
        utilization: float,
        responder_id: Optional[int] = None,  # node that served the request
        distance: float = 0.0,  # proximity-metric length of the route
    ) -> None:
        self.file_id = file_id
        self.hops = hops
        self.success = success
        self.source = source
        self.utilization = utilization
        self.responder_id = responder_id
        self.distance = distance

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LookupEvent):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__slots__)
        return f"LookupEvent({fields})"


@dataclass
class PastStats:
    """Aggregate event log for one PAST network."""

    inserts: List[InsertEvent] = field(default_factory=list)
    lookups: List[LookupEvent] = field(default_factory=list)
    reclaim_count: int = 0

    # ------------------------------------------------------------ recording

    def record_insert(self, event: InsertEvent) -> None:
        self.inserts.append(event)

    def record_lookup(self, event: LookupEvent) -> None:
        self.lookups.append(event)

    # ------------------------------------------------------------ summaries

    @property
    def insert_attempts(self) -> int:
        return len(self.inserts)

    @property
    def insert_successes(self) -> int:
        return sum(1 for e in self.inserts if e.success)

    @property
    def insert_failures(self) -> int:
        return sum(1 for e in self.inserts if not e.success)

    def success_ratio(self) -> float:
        return self.insert_successes / len(self.inserts) if self.inserts else 0.0

    def failure_ratio(self) -> float:
        return self.insert_failures / len(self.inserts) if self.inserts else 0.0

    def file_diversion_ratio(self) -> float:
        """Fraction of *successful* inserts that required file diversion.

        Matches Table 2's "File diversion" column: the percentage of
        successful inserts that involved re-salting (possibly multiple
        times).
        """
        succ = [e for e in self.inserts if e.success]
        if not succ:
            return 0.0
        return sum(1 for e in succ if e.file_diversions > 0) / len(succ)

    def replica_diversion_ratio(self) -> float:
        """Fraction of stored replicas that are diverted (Table 2 column)."""
        stored = sum(e.replicas_stored for e in self.inserts)
        diverted = sum(e.replica_diversions for e in self.inserts if e.success)
        return diverted / stored if stored else 0.0

    def cumulative_failure_curve(self, bins: int = 100):
        """(utilization, cumulative failure ratio) points, in event order.

        The paper defines the cumulative failure ratio at utilization ``u``
        as failed inserts over all inserts issued up to the point where
        ``u`` was reached (Figures 2 and 3).  Returns one point per insert
        event, downsampled to roughly ``bins`` points.
        """
        points = []
        failed = 0
        for i, e in enumerate(self.inserts, start=1):
            if not e.success:
                failed += 1
            points.append((e.utilization, failed / i))
        if bins and len(points) > bins:
            step = len(points) / bins
            points = [points[int(i * step)] for i in range(bins)] + [points[-1]]
        return points

    def file_diversion_curves(self):
        """Cumulative ratios of 1x/2x/3x-diverted inserts and failures vs.
        utilization (Figure 4). Returns a list of
        ``(utilization, r1, r2, r3, failure_ratio)`` tuples."""
        out = []
        counts = [0, 0, 0]
        failed = 0
        for i, e in enumerate(self.inserts, start=1):
            if e.success and e.file_diversions > 0:
                idx = min(e.file_diversions, 3) - 1
                counts[idx] += 1
            if not e.success:
                failed += 1
            out.append(
                (e.utilization, counts[0] / i, counts[1] / i, counts[2] / i, failed / i)
            )
        return out

    def replica_diversion_curve(self):
        """Cumulative diverted/stored replica ratio vs. utilization (Fig. 5)."""
        out = []
        stored = 0
        diverted = 0
        for e in self.inserts:
            stored += e.replicas_stored
            if e.success:
                diverted += e.replica_diversions
            if stored:
                out.append((e.utilization, diverted / stored))
        return out

    def failed_insert_sizes(self):
        """(utilization, size) scatter of failed inserts (Figures 6-7)."""
        return [(e.utilization, e.size) for e in self.inserts if not e.success]

    # ------------------------------------------------------------- lookups

    def lookup_success_ratio(self) -> float:
        if not self.lookups:
            return 0.0
        return sum(1 for e in self.lookups if e.success) / len(self.lookups)

    def global_cache_hit_ratio(self) -> float:
        """Fraction of successful lookups served from a cached copy."""
        succ = [e for e in self.lookups if e.success]
        if not succ:
            return 0.0
        return sum(1 for e in succ if e.source == "cache") / len(succ)

    def mean_lookup_hops(self) -> float:
        succ = [e for e in self.lookups if e.success]
        if not succ:
            return 0.0
        return sum(e.hops for e in succ) / len(succ)

    def caching_curve(self, bucket_width: float = 0.05):
        """Per-utilization-bucket cache hit rate and mean hops (Figure 8).

        Returns ``(bucket_midpoint, hit_ratio, mean_hops, count)`` tuples.
        """
        buckets = {}
        for e in self.lookups:
            if not e.success:
                continue
            key = int(e.utilization / bucket_width)
            hits, hops, count = buckets.get(key, (0, 0, 0))
            buckets[key] = (hits + (e.source == "cache"), hops + e.hops, count + 1)
        out = []
        for key in sorted(buckets):
            hits, hops, count = buckets[key]
            mid = (key + 0.5) * bucket_width
            out.append((mid, hits / count, hops / count, count))
        return out

    def served_per_node(self) -> dict:
        """Requests served per responder node (for load-balance analysis)."""
        out: dict = {}
        for e in self.lookups:
            if e.success and e.responder_id is not None:
                out[e.responder_id] = out.get(e.responder_id, 0) + 1
        return out
