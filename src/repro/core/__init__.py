"""PAST's core: storage management (§3) and caching (§4).

This package is the paper's primary contribution: the replica/file
diversion machinery that lets the system run gracefully past 95% global
storage utilization, and the GreedyDual-Size caching layer that minimizes
fetch distance and balances query load.
"""

from .config import NO_DIVERSION_CONFIG, PAPER_CONFIG, PastConfig
from .cache import CacheManager, GreedyDualSizePolicy, LRUPolicy
from .errors import (
    AdmissionError,
    CapacityError,
    FileIdCollisionError,
    InsertFailedError,
    NotOwnerError,
    PastError,
)
from .integrity import AntiEntropyScrubber, IntegrityStats
from .invariants import AuditReport, audit
from .resilience import DEFAULT_RETRY_POLICY, NO_RETRY_POLICY, RetryPolicy
from .seeding import derive_seed
from .network import InsertResult, LookupResult, PastNetwork, ReclaimResult
from .node import PastNode
from .stats import InsertEvent, LookupEvent, PastStats
from .storage import DiversionPointer, LocalStore, StoredReplica

__all__ = [
    "PastConfig",
    "PAPER_CONFIG",
    "NO_DIVERSION_CONFIG",
    "CacheManager",
    "GreedyDualSizePolicy",
    "LRUPolicy",
    "PastError",
    "AdmissionError",
    "CapacityError",
    "FileIdCollisionError",
    "InsertFailedError",
    "NotOwnerError",
    "AntiEntropyScrubber",
    "IntegrityStats",
    "audit",
    "AuditReport",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY_POLICY",
    "RetryPolicy",
    "derive_seed",
    "PastNetwork",
    "PastNode",
    "InsertResult",
    "LookupResult",
    "ReclaimResult",
    "PastStats",
    "InsertEvent",
    "LookupEvent",
    "LocalStore",
    "StoredReplica",
    "DiversionPointer",
]
