"""Terminal plotting: render figure series as ASCII charts.

The benchmark reports print the paper's figures as sampled tables; these
helpers additionally render them as small ASCII line/scatter plots so the
curve shapes (knees, crossovers) are visible at a glance in CI logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    logy: bool = False,
) -> str:
    """Render one or more (x, y) series on a shared-axes ASCII canvas.

    Each series gets a marker character; a legend is appended.  ``logy``
    plots log10(y) (zero/negative values are clamped), matching the
    paper's log-scale failure-ratio figures.
    """
    import math

    points: Dict[str, List[Tuple[float, float]]] = {}
    for name, xy in series.items():
        cleaned = []
        for x, y in xy:
            if logy:
                y = math.log10(max(y, 1e-9))
            cleaned.append((float(x), float(y)))
        if cleaned:
            points[name] = cleaned
    if not points:
        return title + "\n(no data)"

    all_x = [x for pts in points.values() for x, _ in pts]
    all_y = [y for pts in points.values() for _, y in pts]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(y: float) -> int:
        return min(height - 1, int((y_hi - y) / (y_hi - y_lo) * (height - 1)))

    for idx, (name, pts) in enumerate(points.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            grid[row(y)][col(x)] = marker

    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    gutter = max(len(y_top), len(y_bot)) + 1
    lines = []
    if title:
        lines.append(title)
    for r, cells in enumerate(grid):
        if r == 0:
            label = y_top.rjust(gutter - 1)
        elif r == height - 1:
            label = y_bot.rjust(gutter - 1)
        else:
            label = " " * (gutter - 1)
        lines.append(f"{label}|" + "".join(cells))
    axis = " " * gutter + "-" * width
    lines.append(axis)
    x_line = f"{x_lo:.3g}".ljust(width // 2) + f"{x_hi:.3g}".rjust(width - width // 2)
    lines.append(" " * gutter + x_line)
    footer = []
    if x_label:
        footer.append(f"x: {x_label}")
    if y_label:
        footer.append(("y: log10 " if logy else "y: ") + y_label)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(points)
    )
    if legend and len(points) > 1:
        footer.append(legend)
    if footer:
        lines.append("  ".join(footer))
    return "\n".join(lines)
