"""Query-load-balance metrics.

Caching in PAST exists "to maximize the query throughput and to balance
the query load in the system" (§4): without caching, the k replica
holders of a popular file absorb its entire lookup load; with caching,
copies spread toward the consumers and the load flattens.  This module
quantifies that with standard imbalance metrics over the per-node count
of lookups served.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True)
class LoadBalanceStats:
    """Imbalance metrics over a per-node served-request distribution."""

    responders: int  # nodes that served at least one request
    total_requests: int
    max_load: int
    mean_load: float
    max_to_mean: float  # peak-to-average ratio (1.0 = perfectly flat)
    gini: float  # 0 = perfectly equal, -> 1 = one node serves all
    top5_share: float  # fraction of requests served by the 5 busiest nodes


def load_balance(per_node_served: Dict[int, int], population: int = None) -> LoadBalanceStats:
    """Compute imbalance metrics.

    ``per_node_served`` maps node id to requests served.  ``population``
    optionally includes nodes that served nothing (they count toward the
    mean and the Gini coefficient; by default only responders count).
    """
    counts = [c for c in per_node_served.values() if c > 0]
    total = sum(counts)
    n = population if population is not None else len(counts)
    if n <= 0 or total == 0:
        return LoadBalanceStats(0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    padded = sorted(counts) if population is None else sorted(
        counts + [0] * max(0, population - len(counts))
    )
    mean = total / n
    max_load = padded[-1]
    # Gini via the sorted-rank formula.
    cum = 0.0
    for i, value in enumerate(padded, start=1):
        cum += i * value
    gini = (2.0 * cum) / (n * total) - (n + 1.0) / n
    top5 = sum(sorted(counts, reverse=True)[:5]) / total
    return LoadBalanceStats(
        responders=len(counts),
        total_requests=total,
        max_load=max_load,
        mean_load=mean,
        max_to_mean=max_load / mean if mean else 0.0,
        gini=max(0.0, gini),
        top5_share=top5,
    )


def responder_counts(lookup_events: Iterable, responders: Iterable[int]) -> Dict[int, int]:
    """Tally served lookups per responder id."""
    return dict(Counter(responders))
