"""Plain-text rendering of experiment results.

The benchmark harness prints these tables so that running
``pytest benchmarks/ --benchmark-only`` regenerates the paper's tables and
figure series as text, side by side with the published numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != 0.0 and abs(v) < 0.1:
            return f"{v:.4g}"  # keep small parameters (e.g. t_div=0.005) exact
        return f"{v:.2f}"
    return str(v)


def format_sweep_table(
    sweep,
    key_field: str,
    key_label: str,
    title: str,
    paper_key=None,
) -> str:
    """Render a Table 2/3/4-style sweep with the paper's values inline.

    ``paper_key`` maps a row dict to the key of ``sweep.paper`` holding the
    published tuple (succeed, fail, file div, replica div, util).
    """
    headers = [
        key_label,
        "Succeed%",
        "Fail%",
        "FileDiv%",
        "ReplDiv%",
        "Util%",
        "| paper:",
        "Succ%",
        "Util%",
    ]
    rows: List[list] = []
    for row in sweep.rows:
        paper = ("-", "-")
        if paper_key is not None:
            published = sweep.paper.get(paper_key(row))
            if published:
                paper = (published[0], published[4])
        rows.append(
            [
                row[key_field],
                row["succeed_pct"],
                row["fail_pct"],
                row["file_diversion_pct"],
                row["replica_diversion_pct"],
                row["util_pct"],
                "|",
                paper[0],
                paper[1],
            ]
        )
    return format_table(headers, rows, title=title)


def format_curve(
    curve: Sequence[Tuple],
    labels: Sequence[str],
    title: str = "",
    max_points: int = 12,
) -> str:
    """Render a sampled (x, y, ...) series as a small table."""
    if len(curve) > max_points:
        step = len(curve) / max_points
        sampled = [curve[int(i * step)] for i in range(max_points)] + [curve[-1]]
    else:
        sampled = list(curve)
    return format_table(labels, sampled, title=title)


def summarize_run(run) -> str:
    """One-line summary of a StorageRunResult."""
    return (
        f"{run.config.workload} x {run.n_files} files on {run.config.n_nodes} nodes "
        f"({run.config.dist}, l={run.config.l}, t_pri={run.config.t_pri}, "
        f"t_div={run.config.t_div}): success={run.success_pct:.2f}% "
        f"util={run.utilization * 100:.1f}% "
        f"file_div={run.file_diversion_ratio * 100:.2f}% "
        f"replica_div={run.replica_diversion_ratio * 100:.2f}% "
        f"[{run.elapsed_s:.1f}s]"
    )


def format_caching_summary(results: Dict[str, object], title: str = "Figure 8") -> str:
    """Summary table for the Figure 8 policy comparison."""
    headers = ["policy", "hit ratio", "mean hops", "lookup ok", "final util"]
    rows = []
    for policy, res in results.items():
        rows.append(
            [
                policy,
                res.hit_ratio,
                res.mean_hops,
                res.lookup_success_ratio,
                res.utilization,
            ]
        )
    return format_table(headers, rows, title=title)
