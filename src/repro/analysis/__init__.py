"""Reporting helpers: ASCII tables and curve summaries for experiments."""

from .loadbalance import LoadBalanceStats, load_balance
from .plot import ascii_plot
from .report import (
    format_caching_summary,
    format_curve,
    format_sweep_table,
    format_table,
    summarize_run,
)

__all__ = [
    "format_table",
    "format_sweep_table",
    "format_curve",
    "format_caching_summary",
    "summarize_run",
    "load_balance",
    "LoadBalanceStats",
    "ascii_plot",
]
