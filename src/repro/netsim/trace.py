"""Schedule-trace instrumentation for the event simulator.

When an :class:`~repro.netsim.eventsim.EventSimulator` is constructed
with ``trace=ScheduleTrace()`` (or with ``REPRO_SANITIZE=1`` in the
environment) it records, for every event that runs, a
``(time, seq, callback qualname)`` triple plus the source location that
*scheduled* it.  Two digests summarise a run:

* ``digest()`` — one hex digest over the whole event sequence; equal
  digests mean equal trajectories.
* ``digests`` — the *cumulative* digest after each event.  Because each
  entry extends the previous one, the first index where two runs'
  cumulative digests differ is exactly the first divergent event; the
  sanitizer harness (:mod:`repro.devtools.sanitize`) binary-searches
  this list to localise a nondeterminism bug to a single event and its
  scheduling call site.

The digest covers ``(time, seq, label)`` only — *not* the scheduling
site — so cosmetic refactors of the scheduling code do not change the
digest, while any reordering of the executed events does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One executed event, in execution order."""

    __slots__ = ("index", "time", "seq", "callback", "site")

    index: int
    time: float
    seq: int
    callback: str
    #: ``file.py:lineno`` of the schedule_at() caller, "?" if unknown.
    site: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "time": self.time,
            "seq": self.seq,
            "callback": self.callback,
            "site": self.site,
        }


@dataclass(frozen=True)
class Decision:
    """One schedule-policy choice among co-enabled events.

    Recorded whenever a :class:`~repro.netsim.eventsim.SchedulePolicy`
    faced a frontier of two or more events.  ``index`` is the position
    in :attr:`ScheduleTrace.events` the chosen event then occupied, so
    decisions can be correlated with the executed sequence; ``chosen``
    is the frontier index picked; ``options`` names every candidate as
    ``(time, seq, label)`` tuples in frontier order.  A run is replayed
    exactly by feeding the ``chosen`` values back in order (the
    explorer's decision-string format, see ``repro.devtools.explore``).
    """

    __slots__ = ("index", "chosen", "options")

    index: int
    chosen: int
    options: tuple

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "chosen": self.chosen,
            "options": [list(o) for o in self.options],
        }


def callback_label(callback) -> str:
    """A stable, address-free name for a scheduled callable."""
    label = getattr(callback, "__qualname__", None)
    if label is None:
        label = type(callback).__name__
    return label


class ScheduleTrace:
    """Digest trace of every event an instrumented simulator runs."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        #: cumulative hex digest after each event (same length as events).
        self.digests: List[str] = []
        #: policy choices among co-enabled events, in decision order.
        self.decisions: List[Decision] = []
        self._hash = hashlib.sha256()
        #: seq -> scheduling call site, recorded at schedule time.
        self._sites: Dict[int, str] = {}

    # ----------------------------------------------------------- recording

    def record_schedule(self, seq: int, site: str) -> None:
        self._sites[seq] = site

    def record_decision(self, chosen: int, frontier) -> None:
        """Record a policy choice.  ``frontier`` holds the candidates.

        The decision is *not* folded into the digest: its effect is
        already visible as the ordering of the executed events, and the
        digest must stay comparable between a policy-driven run and a
        plain FIFO run that happened to execute the same sequence.
        """
        options = tuple((e.time, e.seq, e.label) for e in frontier)
        self.decisions.append(
            Decision(index=len(self.events), chosen=chosen, options=options)
        )

    def record_event(self, time: float, seq: int, callback) -> None:
        label = callback_label(callback)
        site = self._sites.pop(seq, "?")
        event = TraceEvent(
            index=len(self.events), time=time, seq=seq,
            callback=label, site=site,
        )
        self.events.append(event)
        self._hash.update(f"{time!r}|{seq}|{label}\n".encode())
        self.digests.append(self._hash.hexdigest())

    # ------------------------------------------------------------- queries

    def digest(self) -> str:
        """Digest of the whole run so far (digest of zero events is stable)."""
        return self.digests[-1] if self.digests else self._hash.hexdigest()

    def unfixed_ties(self) -> List[List[TraceEvent]]:
        """Same-timestamp runs whose order FIFO seq did not determine.

        Events scheduled from the *same* call site at the same time run
        in their (deterministic) scheduling order; a tie among events
        scheduled from two or more different sites is only as stable as
        the code paths that scheduled them, so it is worth surfacing.
        """
        suspicious: List[List[TraceEvent]] = []
        group: List[TraceEvent] = []
        for event in self.events:
            if group and event.time == group[-1].time:
                group.append(event)
                continue
            if len(group) >= 2 and len({e.site for e in group}) >= 2:
                suspicious.append(group)
            group = [event]
        if len(group) >= 2 and len({e.site for e in group}) >= 2:
            suspicious.append(group)
        return suspicious

    def to_dict(self) -> dict:
        return {
            "digest": self.digest(),
            "digests": list(self.digests),
            "events": [e.to_dict() for e in self.events],
            "decisions": [d.to_dict() for d in self.decisions],
        }
