"""Deterministic fault-injection plane for the network emulation.

The emulator's message plane is perfectly reliable by default, yet the
paper's robustness claims are exactly about an unreliable one: §2.3 says
a client whose request is lost "must retry" under randomized routing,
and §3.5's durability argument counts a file lost only when all k
replica holders fail within one recovery period.  A :class:`FaultPlan`
is a seeded, replayable description of adversity — per-link message
loss, delay and duplication, network partitions with heal events,
silent-crash/restart schedules, and flaky "gray" nodes — that upper
layers *consult* at every transmission point:

* :meth:`repro.pastry.network.PastryNetwork.route` asks the plan about
  every overlay hop (:meth:`FaultPlan.transmit`);
* :class:`repro.pastry.keepalive.KeepAliveMonitor` asks it about every
  keep-alive probe, and PAST's maintenance/fetch RPCs ask about
  request/reply pairs (:meth:`FaultPlan.rpc_lost`).

The storage plane gets the same treatment: a :class:`StorageFaultPlan`
describes *disk* adversity — bit rot accruing per replica-byte of
virtual time, partial writes, transient read errors, and per-node disk
modes (``readonly``/``failing``) — and the per-node stores consult it
on every store and every verified read.

Layering: this module knows nothing about Pastry or PAST — nodes are
plain integers, time is whatever the bound clock callable returns — so
``netsim`` stays a leaf package.  Determinism: all randomness comes from
one ``random.Random`` seeded in the constructor and consumed in call
order, so two runs that issue the same transmissions in the same order
make identical fault decisions.  A plan that injects nothing draws
nothing, and an absent plan (``None``) costs the hot path a single
attribute check — the zero-cost-abstraction property the determinism
regression suite pins.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: Effectively "never heals" for partition end times.
NEVER = float("inf")


@dataclass(frozen=True, slots=True)
class Partition:
    """One network cut: ``group`` vs. everyone else, active in [start, end).

    A message (or probe) crossing the cut while it is active is lost
    with certainty; traffic within either side is unaffected.  ``end``
    is the heal time (:data:`NEVER` for a permanent cut).  Slotted:
    partition storms build one per cut per spec materialization.
    """

    start: float
    end: float
    group: FrozenSet[int]

    def severs(self, a: int, b: int, now: float) -> bool:
        """True when the link a<->b crosses the cut at time ``now``."""
        if not self.start <= now < self.end:
            return False
        return (a in self.group) != (b in self.group)


class CrashEvent:
    """One silent crash (and optional restart) in a fault schedule.

    The plan only *describes* the event; the harness driving the
    simulation applies it (crash the node, wipe its disk, schedule the
    restart).  Keeping application out of this layer lets the same plan
    drive a Pastry-only overlay or a full PAST deployment.

    Plain ``__slots__`` class: crash storms schedule one per node, so
    instances are loop-allocated and should not carry a ``__dict__``.
    """

    __slots__ = ("time", "node_id", "restart_at", "wipe_disk")

    def __init__(
        self,
        time: float,
        node_id: int,
        restart_at: Optional[float] = None,
        wipe_disk: bool = False,
    ) -> None:
        self.time = time
        self.node_id = node_id
        self.restart_at = restart_at
        self.wipe_disk = wipe_disk

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CrashEvent):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.__slots__
        )

    def __repr__(self) -> str:
        fields = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__slots__)
        return f"CrashEvent({fields})"


class Transmission:
    """The plan's verdict on one message hop.

    Plain ``__slots__`` class: one verdict is drawn per message hop —
    the hottest allocation site in the whole emulator.
    """

    __slots__ = ("lost", "delay", "duplicate")

    def __init__(
        self,
        lost: bool = False,
        delay: float = 0.0,
        duplicate: bool = False,
    ) -> None:
        self.lost = lost
        #: Virtual-time latency injected into this hop (0 when undelayed).
        self.delay = delay
        #: The receiver gets a second, independently-routed copy.
        self.duplicate = duplicate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transmission):
            return NotImplemented
        return (
            self.lost == other.lost
            and self.delay == other.delay
            and self.duplicate == other.duplicate
        )

    def __repr__(self) -> str:
        return (
            f"Transmission(lost={self.lost!r}, delay={self.delay!r}, "
            f"duplicate={self.duplicate!r})"
        )


#: Verdict singletons for the two common no-draw cases.
_CLEAN = Transmission()
_LOST = Transmission(lost=True)


@dataclass(frozen=True)
class FaultSpec:
    """Engine-neutral, declarative description of network adversity.

    A :class:`FaultPlan` is *stateful* (a consumed RNG, mutable builder
    lists); a spec is the frozen recipe it was built from.  Both fault
    engines construct their decision core from the same spec —
    :meth:`FaultPlan.from_spec` for the simulator,
    :class:`repro.net.faults.WireFaultPlan` for real TCP — which is what
    makes the sim/live parity oracle meaningful: identical specs must
    yield identical loss/partition verdict sequences in both engines.

    Collections are tuples so a spec hashes and compares by value:

    * ``link_loss``: ``(src, dst, probability)`` triples;
    * ``gray_nodes``: node ids whose links lose at ``gray_loss``;
    * ``partitions``: ``(start, end, group)`` cuts (group a tuple);
    * ``crashes``: ``(time, node_id, restart_at, wipe_disk)`` events.
      Times are whatever clock the consuming engine binds — virtual
      seconds under the simulator, workload *rounds* under the live
      chaos harness.
    """

    seed: int = 0
    loss: float = 0.0
    delay_mean: float = 0.0
    duplicate: float = 0.0
    gray_loss: float = 0.5
    link_loss: Tuple[Tuple[int, int, float], ...] = ()
    gray_nodes: Tuple[int, ...] = ()
    partitions: Tuple[Tuple[float, float, Tuple[int, ...]], ...] = ()
    crashes: Tuple[Tuple[float, int, Optional[float], bool], ...] = ()

    def build_plan(self) -> "FaultPlan":
        """Materialize the stateful decision core this spec describes."""
        return FaultPlan.from_spec(self)


@dataclass
class FaultStats:
    """Counters for every fault the plan actually injected.

    The network counters are filled by :class:`FaultPlan`, the storage
    counters by :class:`StorageFaultPlan`; a harness running both folds
    the two instances into one report.
    """

    messages_lost: int = 0
    partition_drops: int = 0
    probes_lost: int = 0
    rpcs_lost: int = 0
    duplicates: int = 0
    delays_injected: int = 0
    delay_total: float = 0.0
    # ------------------------------------------------- storage faults
    bitrot_corruptions: int = 0
    partial_writes: int = 0
    read_errors: int = 0
    writes_refused: int = 0
    crashes_injected: int = 0


class FaultPlan:
    """A seeded, deterministic schedule of network adversity.

    Parameters
    ----------
    seed:
        Seeds the plan's private RNG; all probabilistic decisions are
        drawn from it in call order.
    loss:
        Uniform per-hop message-loss probability.
    delay_mean:
        Mean of the exponential per-hop extra latency (0 disables).
    duplicate:
        Per-hop probability that the receiver gets a second copy.
    gray_loss:
        Loss probability applied to any link touching a gray node
        (combined with ``loss`` by taking the maximum).

    Per-link overrides (:attr:`link_loss`), partitions, gray nodes and
    the crash schedule are configured through the builder methods so a
    plan reads as a small declarative script::

        plan = FaultPlan(seed=7, loss=0.05)
        plan.add_partition(at=4.0, heal_at=9.0, group=node_ids[:5])
        plan.mark_gray(node_ids[8], gray_loss=0.5)
        plan.schedule_crash(2.0, node_ids[3], restart_at=8.0, wipe_disk=True)
    """

    def __init__(
        self,
        seed: int = 0,
        loss: float = 0.0,
        delay_mean: float = 0.0,
        duplicate: float = 0.0,
        gray_loss: float = 0.5,
    ):
        for name, p in (("loss", loss), ("duplicate", duplicate),
                        ("gray_loss", gray_loss)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if delay_mean < 0.0:
            raise ValueError("delay_mean must be non-negative")
        self.seed = seed
        self.rng = random.Random(seed)
        self.loss = loss
        self.delay_mean = delay_mean
        self.duplicate = duplicate
        self.gray_loss = gray_loss
        #: (src, dst) -> loss probability overriding the uniform rate.
        self.link_loss: Dict[Tuple[int, int], float] = {}
        self.gray_nodes: Set[int] = set()
        self.partitions: List[Partition] = []
        self.crashes: List[CrashEvent] = []
        self.stats = FaultStats()
        #: Test/instrumentation hook run before each hop's fault decision
        #: with ``(src, dst)`` — e.g. crash the chosen next hop mid-route.
        self.on_transmit: Optional[Callable[[int, int], None]] = None
        self._now: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------- building

    @classmethod
    def from_spec(cls, spec: FaultSpec) -> "FaultPlan":
        """Build the stateful decision core a :class:`FaultSpec` describes.

        Both fault engines call this with the same spec, so their RNGs
        start identical and their builder state (link overrides, gray
        sets, partitions, crash schedules) matches element for element.
        Construction draws nothing from the RNG — verdict streams start
        at draw zero in both engines.
        """
        plan = cls(
            seed=spec.seed,
            loss=spec.loss,
            delay_mean=spec.delay_mean,
            duplicate=spec.duplicate,
            gray_loss=spec.gray_loss,
        )
        for src, dst, p in spec.link_loss:
            plan.set_link_loss(src, dst, p)
        for node_id in sorted(spec.gray_nodes):
            plan.mark_gray(node_id)
        for start, end, group in spec.partitions:
            plan.add_partition(at=start, heal_at=end, group=group)
        for time, node_id, restart_at, wipe_disk in spec.crashes:
            plan.schedule_crash(time, node_id, restart_at, wipe_disk)
        return plan

    def bind_clock(self, now_fn: Callable[[], float]) -> "FaultPlan":
        """Attach the virtual clock that timed faults (partitions) read."""
        self._now = now_fn
        return self

    @property
    def now(self) -> float:
        return self._now()

    def add_partition(self, at: float, heal_at: float, group) -> Partition:
        """Cut ``group`` off from the rest of the network in [at, heal_at)."""
        if heal_at < at:
            raise ValueError("a partition cannot heal before it starts")
        partition = Partition(start=at, end=heal_at, group=frozenset(group))
        self.partitions.append(partition)
        return partition

    def mark_gray(self, node_id: int, gray_loss: Optional[float] = None) -> None:
        """Flag a node as flaky: links touching it lose messages often."""
        if gray_loss is not None:
            if not 0.0 <= gray_loss <= 1.0:
                raise ValueError(f"gray_loss must be a probability, got {gray_loss}")
            self.gray_loss = gray_loss
        self.gray_nodes.add(node_id)

    def set_link_loss(self, src: int, dst: int, p: float) -> None:
        """Override the loss probability of one directed link."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"link loss must be a probability, got {p}")
        self.link_loss[(src, dst)] = p

    def schedule_crash(
        self,
        time: float,
        node_id: int,
        restart_at: Optional[float] = None,
        wipe_disk: bool = False,
    ) -> CrashEvent:
        """Add a silent crash (and optional restart) to the schedule."""
        if restart_at is not None and restart_at < time:
            raise ValueError("restart cannot precede the crash")
        event = CrashEvent(time, node_id, restart_at, wipe_disk)
        self.crashes.append(event)
        return event

    def schedule_crash_storm(
        self,
        node_ids: Sequence[int],
        start: float,
        interarrival: float,
        restart_after: Optional[float] = None,
        wipe_disk: bool = False,
    ) -> List[CrashEvent]:
        """Crash ``node_ids`` in order, seeded-exponential interarrivals.

        ``interarrival`` is the mean gap between consecutive crashes.
        When it is much larger than the deployment's recovery period the
        §3.5 durability argument predicts zero lost files; pushing it
        *below* the recovery period is how the chaos harness reproduces
        overlapping failures that defeat k-replication.
        """
        if interarrival <= 0:
            raise ValueError("interarrival must be positive")
        out = []
        when = start
        for node_id in node_ids:
            when += self.rng.expovariate(1.0 / interarrival)
            restart = None if restart_after is None else when + restart_after
            out.append(self.schedule_crash(when, node_id, restart, wipe_disk))
        return out

    # ------------------------------------------------------------ decisions

    def _severed(self, a: int, b: int) -> bool:
        if not self.partitions:
            return False
        now = self._now()
        return any(p.severs(a, b, now) for p in self.partitions)

    def severed(self, a: int, b: int) -> bool:
        """Whether a partition currently cuts the link a<->b (no draw).

        Public so the wire plane can distinguish a partition drop from a
        probabilistic loss *before* consuming the verdict — the check
        reads the clock only, never the RNG, so asking is free.
        """
        return self._severed(a, b)

    def _loss_probability(self, src: int, dst: int) -> float:
        p = self.link_loss.get((src, dst), self.loss)
        if self.gray_nodes and (src in self.gray_nodes or dst in self.gray_nodes):
            p = max(p, self.gray_loss)
        return p

    def transmit(self, src: int, dst: int) -> Transmission:
        """Decide the fate of one routed overlay hop ``src -> dst``."""
        if self.on_transmit is not None:
            self.on_transmit(src, dst)
        if self._severed(src, dst):
            self.stats.messages_lost += 1
            self.stats.partition_drops += 1
            return _LOST
        p = self._loss_probability(src, dst)
        if p > 0.0 and self.rng.random() < p:
            self.stats.messages_lost += 1
            return _LOST
        delay = 0.0
        if self.delay_mean > 0.0:
            delay = self.rng.expovariate(1.0 / self.delay_mean)
            self.stats.delays_injected += 1
            self.stats.delay_total += delay
        duplicate = False
        if self.duplicate > 0.0 and self.rng.random() < self.duplicate:
            duplicate = True
            self.stats.duplicates += 1
        if delay == 0.0 and not duplicate:
            return _CLEAN
        return Transmission(lost=False, delay=delay, duplicate=duplicate)

    def rpc_lost(self, a: int, b: int) -> bool:
        """Decide the fate of a request/reply pair between two nodes.

        Used for keep-alive probes and direct (non-routed) RPCs such as
        hedged replica fetches.  The request and the reply each face the
        link's loss probability; loss is decided *before* any side
        effect, so a lost RPC behaves as if the request never arrived
        (the reply-lost-after-effect case is not modelled — see
        DESIGN.md §4e for why the oracles stay sound).
        """
        if self._severed(a, b):
            self.stats.rpcs_lost += 1
            return True
        p_there = self._loss_probability(a, b)
        p_back = self._loss_probability(b, a)
        if p_there > 0.0 and self.rng.random() < p_there:
            self.stats.rpcs_lost += 1
            return True
        if p_back > 0.0 and self.rng.random() < p_back:
            self.stats.rpcs_lost += 1
            return True
        return False

    def probe_lost(self, observer: int, peer: int) -> bool:
        """Keep-alive probe verdict (an rpc with its own counter)."""
        if self.rpc_lost(observer, peer):
            self.stats.rpcs_lost -= 1
            self.stats.probes_lost += 1
            return True
        return False


# ----------------------------------------------------------- disk faults

#: Disk health modes a :class:`StorageFaultPlan` can put a node into.
DISK_OK = "ok"
DISK_READONLY = "readonly"
DISK_FAILING = "failing"

_DISK_MODES = (DISK_OK, DISK_READONLY, DISK_FAILING)

#: Verdicts for one replica read (:meth:`StorageFaultPlan.read`).
READ_OK = "ok"
READ_CORRUPT = "corrupt"
READ_ERROR = "error"

#: Kill-point phases for :class:`CrashPoint`, ordered by how much of the
#: pending (written-but-unsynced) data survives the crash:
#: ``before-fsync`` — the process dies after write() but before the
#: fsync barrier, so none of the pending bytes reach the platter;
#: ``torn-fsync`` — the device loses power mid-flush and a seeded
#: prefix of the pending bytes lands (the classic torn tail record);
#: ``after-fsync`` — the barrier completes and the process dies
#: immediately after, losing nothing durable.
CRASH_BEFORE_FSYNC = "before-fsync"
CRASH_TORN_FSYNC = "torn-fsync"
CRASH_AFTER_FSYNC = "after-fsync"

CRASH_PHASES = (CRASH_BEFORE_FSYNC, CRASH_TORN_FSYNC, CRASH_AFTER_FSYNC)


class CrashPoint:
    """One seeded kill point in the durable-I/O path.

    Unlike :class:`CrashEvent` (a node silently leaving the overlay at a
    virtual time), a CrashPoint names an exact *fsync barrier* in a
    node's write-ahead-log stream: the process dies at the
    ``barrier``-th barrier the node's VFS reaches, in the given
    ``phase``.  The VFS (:mod:`repro.store.vfs`) consults the plan at
    every barrier and raises ``SimulatedCrash`` when a pending point
    matches, leaving the real bytes on disk in exactly the state a
    kill -9 at that instant would.

    Plain ``__slots__`` class, same rationale as :class:`CrashEvent`.
    """

    __slots__ = ("node_id", "barrier", "phase", "fired")

    def __init__(self, node_id: int, barrier: int, phase: str = CRASH_BEFORE_FSYNC):
        if phase not in CRASH_PHASES:
            raise ValueError(f"unknown crash phase {phase!r}")
        if barrier < 0:
            raise ValueError("barrier index must be non-negative")
        self.node_id = node_id
        self.barrier = barrier
        self.phase = phase
        #: A point fires exactly once; recovery I/O after the simulated
        #: death must not trip over the same kill point again.
        self.fired = False

    def __repr__(self) -> str:
        return (
            f"CrashPoint(node_id={self.node_id!r}, barrier={self.barrier!r}, "
            f"phase={self.phase!r}, fired={self.fired!r})"
        )


@dataclass(frozen=True)
class DiskModeEvent:
    """One scheduled disk-mode transition (applied lazily by time)."""

    time: float
    node_id: int
    mode: str


class StorageFaultPlan:
    """A seeded, deterministic schedule of *disk* adversity.

    Parameters
    ----------
    seed:
        Seeds the plan's private RNG; all probabilistic decisions are
        drawn from it in call order.
    bitrot_rate:
        Corruption hazard per replica-byte per unit of virtual time:
        a replica of ``size`` bytes left unverified for ``dt`` rots with
        probability ``1 - exp(-bitrot_rate * size * dt)``.  Rot is
        evaluated lazily at read time and memoized — once a replica has
        rotted it stays corrupt until :meth:`mark_repaired`.
    partial_write:
        Probability that a store lands corrupted on disk (torn write).
    read_error:
        Probability that one read fails transiently (retrying later may
        succeed; nothing is memoized).
    failing_read_error:
        Transient-read-error probability applied on a ``failing`` disk
        (combined with ``read_error`` by taking the maximum).

    Disk modes: ``readonly`` and ``failing`` disks refuse all new
    replica bytes (:meth:`writable`); a ``failing`` disk additionally
    returns read errors at ``failing_read_error``.  Mode transitions
    are either immediate (:meth:`set_disk_mode`) or scheduled at a
    virtual time (:meth:`schedule_disk_mode`) and evaluated lazily
    against the bound clock, like partitions.

    Determinism mirrors :class:`FaultPlan`: one RNG consumed in call
    order, zero draws from a plan whose rates are all zero, and an
    absent plan (``None``) costs the store/read hot paths a single
    attribute check.
    """

    def __init__(
        self,
        seed: int = 0,
        bitrot_rate: float = 0.0,
        partial_write: float = 0.0,
        read_error: float = 0.0,
        failing_read_error: float = 0.5,
    ):
        for name, p in (("partial_write", partial_write),
                        ("read_error", read_error),
                        ("failing_read_error", failing_read_error)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if bitrot_rate < 0.0:
            raise ValueError("bitrot_rate must be non-negative")
        self.seed = seed
        self.rng = random.Random(seed)
        self.bitrot_rate = bitrot_rate
        self.partial_write = partial_write
        self.read_error = read_error
        self.failing_read_error = failing_read_error
        self.stats = FaultStats()
        #: node -> immediately-applied disk mode (see also mode events).
        self._modes: Dict[int, str] = {}
        #: scheduled transitions, kept sorted by (time, insertion order).
        self._mode_events: List[DiskModeEvent] = []
        #: (node, file) pairs whose on-disk bytes are known corrupt.
        self._corrupt: Set[Tuple[int, int]] = set()
        #: Pending kill points in the durable-I/O path, consulted by the
        #: VFS at every fsync barrier (:meth:`crash_point_due`).
        self.crash_points: List[CrashPoint] = []
        self._now: Callable[[], float] = lambda: 0.0

    # ------------------------------------------------------------- building

    def bind_clock(self, now_fn: Callable[[], float]) -> "StorageFaultPlan":
        """Attach the virtual clock that rot and mode schedules read."""
        self._now = now_fn
        return self

    @property
    def now(self) -> float:
        return self._now()

    def set_disk_mode(self, node_id: int, mode: str) -> None:
        """Put a node's disk into ``mode`` immediately."""
        if mode not in _DISK_MODES:
            raise ValueError(f"unknown disk mode {mode!r}")
        self._modes[node_id] = mode

    def schedule_disk_mode(self, time: float, node_id: int, mode: str) -> DiskModeEvent:
        """Transition a node's disk into ``mode`` at virtual ``time``."""
        if mode not in _DISK_MODES:
            raise ValueError(f"unknown disk mode {mode!r}")
        event = DiskModeEvent(time, node_id, mode)
        self._mode_events.append(event)
        self._mode_events.sort(key=lambda e: e.time)
        return event

    def schedule_crash_point(
        self, node_id: int, barrier: int, phase: str = CRASH_BEFORE_FSYNC
    ) -> CrashPoint:
        """Kill ``node_id``'s process at its ``barrier``-th fsync barrier."""
        point = CrashPoint(node_id, barrier, phase)
        self.crash_points.append(point)
        return point

    def crash_point_due(self, node_id: int, barrier: int) -> Optional[CrashPoint]:
        """The pending kill point matching this barrier, if any.

        Marks the returned point as fired and counts the injection —
        the caller (the VFS) is committed to dying once it asks.
        """
        for point in self.crash_points:
            if (not point.fired and point.node_id == node_id
                    and point.barrier == barrier):
                point.fired = True
                self.stats.crashes_injected += 1
                return point
        return None

    def torn_length(self, pending: int) -> int:
        """Seeded number of pending bytes that land during a torn flush.

        Drawn from the plan's RNG so two runs with the same seed tear
        the same number of bytes; always a *strict* prefix, so a torn
        flush is never indistinguishable from a completed one.
        """
        if pending <= 1:
            return 0
        return self.rng.randrange(pending)

    # ------------------------------------------------------------ decisions

    def disk_mode(self, node_id: int) -> str:
        """The node's disk mode at the current virtual time."""
        mode = self._modes.get(node_id, DISK_OK)
        if self._mode_events:
            now = self._now()
            for event in self._mode_events:
                if event.time > now:
                    break
                if event.node_id == node_id:
                    mode = event.mode
        return mode

    def writable(self, node_id: int) -> bool:
        """Whether new replica bytes may be written to this disk."""
        return self.disk_mode(node_id) == DISK_OK

    def store_written(self, node_id: int, file_id: int, size: int) -> bool:
        """Partial-write verdict for one accepted store.

        Returns True when the write landed corrupted (torn); the plan
        remembers the corruption until :meth:`mark_repaired`.  Callers
        check :meth:`writable` *before* accepting the store; a write to
        a readonly/failing disk is a caller bug, not a fault decision.
        """
        if self.partial_write > 0.0 and self.rng.random() < self.partial_write:
            self._corrupt.add((node_id, file_id))
            self.stats.partial_writes += 1
            return True
        return False

    def refuse_write(self, node_id: int) -> None:
        """Count one store refused by a readonly/failing disk."""
        self.stats.writes_refused += 1

    def read(self, node_id: int, file_id: int, size: int, elapsed: float) -> str:
        """Verdict for one replica read.

        ``elapsed`` is the virtual time since this copy was last stored
        or verified; bit rot accrues over it.  Returns one of
        :data:`READ_OK`, :data:`READ_CORRUPT` (sticky until
        :meth:`mark_repaired`) or :data:`READ_ERROR` (transient).
        """
        mode = self.disk_mode(node_id)
        if mode == DISK_FAILING:
            p = max(self.read_error, self.failing_read_error)
            if p > 0.0 and self.rng.random() < p:
                self.stats.read_errors += 1
                return READ_ERROR
        key = (node_id, file_id)
        if key in self._corrupt:
            return READ_CORRUPT
        if self.bitrot_rate > 0.0 and elapsed > 0.0:
            p = 1.0 - math.exp(-self.bitrot_rate * size * elapsed)
            if self.rng.random() < p:
                self._corrupt.add(key)
                self.stats.bitrot_corruptions += 1
                return READ_CORRUPT
        if mode != DISK_FAILING and self.read_error > 0.0:
            if self.rng.random() < self.read_error:
                self.stats.read_errors += 1
                return READ_ERROR
        return READ_OK

    # ---------------------------------------------------------- bookkeeping

    def is_corrupt(self, node_id: int, file_id: int) -> bool:
        return (node_id, file_id) in self._corrupt

    def mark_repaired(self, node_id: int, file_id: int) -> None:
        """A verified copy was rewritten over the corrupt bytes."""
        self._corrupt.discard((node_id, file_id))

    def forget(self, node_id: int, file_id: int) -> None:
        """The replica left this disk (dropped/migrated); clear its state."""
        self._corrupt.discard((node_id, file_id))

    def forget_node(self, node_id: int) -> None:
        """A disk was wiped; clear every corruption record it held."""
        self._corrupt = {key for key in self._corrupt if key[0] != node_id}
