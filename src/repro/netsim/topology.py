"""Node placement models and the network proximity metric.

Pastry only requires a *scalar* proximity metric between nodes (the paper
suggests IP routing hops, bandwidth or geographic distance).  We model the
underlying network by embedding nodes in a metric space and using the
embedding distance as the proximity metric — the same approach used by the
Pastry paper's own emulator, which places nodes on a sphere.

Three placement models are provided:

* :class:`TorusTopology` — uniform placement on a 2-D unit torus (no edge
  effects, cheap distance computation).  The default.
* :class:`SphereTopology` — uniform placement on a unit sphere with
  great-circle distances, matching the Pastry paper's emulator.
* :class:`ClusteredTopology` — placement into a configurable number of
  geographic clusters.  Used by the caching experiment, which maps the
  clients of each of the eight NLANR trace sites to *nearby* overlay nodes.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple


class Coordinate:
    """A point in the emulated network's metric space.

    ``cluster`` records which cluster the point was drawn from (if any),
    which lets workloads map trace sites onto co-located nodes.

    Plain ``__slots__`` class: one coordinate is allocated per node at
    placement time, so instances should not carry a ``__dict__``.
    """

    __slots__ = ("x", "y", "z", "cluster")

    def __init__(
        self,
        x: float,
        y: float,
        z: float = 0.0,
        cluster: Optional[int] = None,
    ) -> None:
        self.x = x
        self.y = y
        self.z = z
        self.cluster = cluster

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coordinate):
            return NotImplemented
        return (
            self.x == other.x
            and self.y == other.y
            and self.z == other.z
            and self.cluster == other.cluster
        )

    def __repr__(self) -> str:
        return (
            f"Coordinate(x={self.x!r}, y={self.y!r}, z={self.z!r}, "
            f"cluster={self.cluster!r})"
        )


class Topology:
    """Base class: placement + proximity metric."""

    def place(self, rng: random.Random, cluster: Optional[int] = None) -> Coordinate:
        """Draw a coordinate for a newly joining node."""
        raise NotImplementedError

    def distance(self, a: Coordinate, b: Coordinate) -> float:
        """The scalar proximity metric between two coordinates."""
        raise NotImplementedError


class TorusTopology(Topology):
    """Uniform placement on the unit square with wrap-around distances."""

    def place(self, rng: random.Random, cluster: Optional[int] = None) -> Coordinate:
        return Coordinate(rng.random(), rng.random(), 0.0, cluster)

    def distance(self, a: Coordinate, b: Coordinate) -> float:
        dx = abs(a.x - b.x)
        dy = abs(a.y - b.y)
        dx = min(dx, 1.0 - dx)
        dy = min(dy, 1.0 - dy)
        return math.hypot(dx, dy)


class SphereTopology(Topology):
    """Uniform placement on the unit sphere, great-circle proximity metric."""

    def place(self, rng: random.Random, cluster: Optional[int] = None) -> Coordinate:
        # Uniform point on the sphere via the standard z/phi construction.
        z = rng.uniform(-1.0, 1.0)
        phi = rng.uniform(0.0, 2.0 * math.pi)
        r = math.sqrt(max(0.0, 1.0 - z * z))
        return Coordinate(r * math.cos(phi), r * math.sin(phi), z, cluster)

    def distance(self, a: Coordinate, b: Coordinate) -> float:
        dot = a.x * b.x + a.y * b.y + a.z * b.z
        dot = max(-1.0, min(1.0, dot))
        return math.acos(dot)


class ClusteredTopology(Topology):
    """Nodes drawn from Gaussian clusters on the unit torus.

    Cluster centres are spread deterministically; each placement draws from
    the requested cluster (or a random one).  The caching experiment uses
    one cluster per NLANR trace site so that clients of the same site issue
    requests from nearby overlay nodes.
    """

    def __init__(self, n_clusters: int, spread: float = 0.05, seed: int = 0):
        if n_clusters < 1:
            raise ValueError("need at least one cluster")
        self.n_clusters = n_clusters
        self.spread = spread
        centre_rng = random.Random(seed)
        self._centres: Tuple[Tuple[float, float], ...] = tuple(
            (centre_rng.random(), centre_rng.random()) for _ in range(n_clusters)
        )
        self._torus = TorusTopology()

    def centre(self, cluster: int) -> Tuple[float, float]:
        return self._centres[cluster % self.n_clusters]

    def place(self, rng: random.Random, cluster: Optional[int] = None) -> Coordinate:
        if cluster is None:
            cluster = rng.randrange(self.n_clusters)
        cx, cy = self.centre(cluster)
        x = (cx + rng.gauss(0.0, self.spread)) % 1.0
        y = (cy + rng.gauss(0.0, self.spread)) % 1.0
        return Coordinate(x, y, 0.0, cluster % self.n_clusters)

    def distance(self, a: Coordinate, b: Coordinate) -> float:
        return self._torus.distance(a, b)
