"""Latency model: turn hop counts and emulated distances into wall time.

The paper deliberately reports lookup performance in Pastry routing hops
"because actual lookup delays strongly depend on per-hop network delays",
noting only that its prototype fetched a 1 kB file one hop away on a LAN
in ~25 ms.  This model makes that conversion explicit and configurable:

    latency = hops * per_hop_ms + route_distance * ms_per_unit
              + size / bandwidth

* ``per_hop_ms`` — fixed per-hop processing cost (the prototype's 25 ms).
* ``ms_per_unit`` — propagation delay per unit of the topology's
  proximity metric (the unit square/sphere diameter mapped onto a
  continental RTT by default).
* ``bandwidth_bytes_per_ms`` — transfer time for the file body.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's prototype measurement: ~25 ms for a 1 kB file one hop away.
PAPER_PER_HOP_MS = 25.0


@dataclass(frozen=True)
class LatencyModel:
    """Converts routed hops/distance/size into milliseconds."""

    per_hop_ms: float = PAPER_PER_HOP_MS
    #: A unit of proximity-metric distance, in ms.  The default maps the
    #: torus diameter (~0.71) to ~50 ms one-way — a continental WAN.
    ms_per_unit: float = 70.0
    bandwidth_bytes_per_ms: float = 1_250.0  # 10 Mbit/s

    def lookup_latency_ms(self, hops: int, distance: float, size: int = 0) -> float:
        """Estimated latency of one lookup."""
        if hops < 0 or distance < 0 or size < 0:
            raise ValueError("hops, distance and size must be non-negative")
        transfer = size / self.bandwidth_bytes_per_ms if self.bandwidth_bytes_per_ms else 0.0
        return hops * self.per_hop_ms + distance * self.ms_per_unit + transfer


def percentiles(samples, points=(50, 90, 99)) -> dict:
    """Simple percentile summary of a latency sample list."""
    if not samples:
        return {p: 0.0 for p in points}
    ordered = sorted(samples)
    out = {}
    for p in points:
        idx = min(len(ordered) - 1, int(round(p / 100 * (len(ordered) - 1))))
        out[p] = ordered[idx]
    return out
