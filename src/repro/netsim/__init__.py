"""Network emulation environment.

The paper evaluates PAST inside a network emulator in which all Pastry node
instances run in one process and communicate through emulated links with a
scalar *proximity metric* (IP hops, geographic distance, ...).  This
package provides that substrate: node placement models, the proximity
metric, and message accounting.
"""

from .topology import Coordinate, SphereTopology, TorusTopology, ClusteredTopology
from .stats import MessageStats
from .latency import LatencyModel, PAPER_PER_HOP_MS, percentiles
from .eventsim import (
    EventHandle,
    EventSimulator,
    PendingEvent,
    PeriodicTimer,
    SchedulePolicy,
)
from .trace import Decision, ScheduleTrace, TraceEvent
from .faults import (
    CRASH_AFTER_FSYNC,
    CRASH_BEFORE_FSYNC,
    CRASH_PHASES,
    CRASH_TORN_FSYNC,
    DISK_FAILING,
    DISK_OK,
    DISK_READONLY,
    NEVER,
    READ_CORRUPT,
    READ_ERROR,
    READ_OK,
    CrashEvent,
    CrashPoint,
    DiskModeEvent,
    FaultPlan,
    FaultSpec,
    FaultStats,
    Partition,
    StorageFaultPlan,
    Transmission,
)

__all__ = [
    "Coordinate",
    "SphereTopology",
    "TorusTopology",
    "ClusteredTopology",
    "CRASH_AFTER_FSYNC",
    "CRASH_BEFORE_FSYNC",
    "CRASH_PHASES",
    "CRASH_TORN_FSYNC",
    "CrashEvent",
    "CrashPoint",
    "DISK_FAILING",
    "DISK_OK",
    "DISK_READONLY",
    "Decision",
    "DiskModeEvent",
    "EventHandle",
    "EventSimulator",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "MessageStats",
    "LatencyModel",
    "NEVER",
    "PAPER_PER_HOP_MS",
    "Partition",
    "READ_CORRUPT",
    "READ_ERROR",
    "READ_OK",
    "StorageFaultPlan",
    "PendingEvent",
    "PeriodicTimer",
    "SchedulePolicy",
    "ScheduleTrace",
    "TraceEvent",
    "Transmission",
    "percentiles",
]
