"""The simulator-backed implementation of the transport seam.

:class:`SimTransport` is the single choke point through which node logic
(``pastry.node``, ``pastry.keepalive``, ``core.node``, ``core.integrity``)
reaches *time* (clock reads, timers) and the *network* (routed messages,
direct RPCs, keep-alive probes).  Everything above the seam sees only the
:class:`~repro.core.transport.Transport` interface; everything below it —
the :class:`~repro.netsim.eventsim.EventSimulator`, the overlay's routing
engine, the fault plane — is an engine detail that an
``AsyncioTransport`` can replace without touching node logic.

Design constraints, in force because four ScheduleTrace digest pins and
four benchmark outcome checksums must stay byte-identical across the
seam extraction:

* callbacks pass through *unwrapped*: timer and schedule delegation hand
  the caller's callable straight to the simulator, so trace labels
  (callback ``__qualname__``\\ s) do not change;
* :meth:`send` draws from the fault plan exactly when the pre-seam code
  did: ``reliable=True`` models the RPCs that never consulted
  ``rpc_lost`` (synchronous pulls whose loss story predates the fault
  plane), and ``call=None`` models an RPC issued to a node already known
  dead — accounted, but undeliverable without a loss draw;
* :meth:`probe` consults ``probe_lost`` without recording an RPC,
  matching the keep-alive plane's original accounting.

The ``overlay`` is duck-typed: anything with ``route``, ``stats`` and
``fault_plan`` works (both :class:`~repro.pastry.network.PastryNetwork`
and wrappers around it), so this module needs no upward imports.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from .eventsim import _INFRA_FILES, EventHandle, EventSimulator, PeriodicTimer

# Scheduling calls funnel through this module; trace diagnostics must
# keep attributing schedules to the node logic that asked for them.
_INFRA_FILES.add(__file__)


class SimTransport:
    """Transport seam bound to an :class:`EventSimulator` and an overlay.

    Either half may be absent: a transport built only for timers
    (``overlay=None``) raises on message operations, and one built only
    for messaging (``sim=None``) raises on clock/timer operations.  The
    emulator's synchronous assembly uses the latter; the virtual-time
    experiment harnesses bind both.
    """

    __slots__ = ("sim", "overlay")

    def __init__(
        self,
        sim: Optional[EventSimulator] = None,
        overlay: Optional[Any] = None,
    ):
        self.sim = sim
        self.overlay = overlay

    # ----------------------------------------------------------------- time

    def now(self) -> float:
        """Current virtual time."""
        return self._sim().now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` time units."""
        return self._sim().schedule(delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute time ``when``."""
        return self._sim().schedule_at(when, callback)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled callback (no-op if it already ran)."""
        self._sim().cancel(handle)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        jitter_fn: Optional[Callable[[], float]] = None,
        first_delay: Optional[float] = None,
    ) -> PeriodicTimer:
        """Run ``callback`` every ``period`` units until stopped."""
        return self._sim().every(
            period, callback, jitter_fn=jitter_fn, first_delay=first_delay
        )

    # ------------------------------------------------------------- messages

    def route(self, origin_id: int, key: int, message=None,
              collect_distance: bool = False):
        """Route ``message`` from ``origin_id`` towards ``key``."""
        return self._overlay().route(
            origin_id, key, message=message, collect_distance=collect_distance
        )

    def send(
        self,
        origin_id: int,
        target_id: int,
        call: Optional[Callable[..., Any]],
        *args: Any,
        reliable: bool = False,
        **kwargs: Any,
    ) -> Tuple[bool, Any]:
        """One direct (non-routed) RPC from ``origin_id`` to ``target_id``.

        Returns ``(delivered, result)``.  The RPC is always accounted;
        ``call=None`` means the caller already knows the target is
        unreachable (the RPC goes out and times out — no loss draw), and
        ``reliable=True`` skips the fault-plane consult for RPCs whose
        delivery the caller retries at a higher level.
        """
        overlay = self._overlay()
        overlay.stats.record_rpc()
        if call is None:
            return False, None
        if not reliable:
            plan = overlay.fault_plan
            if plan is not None and plan.rpc_lost(origin_id, target_id):
                return False, None
        return True, call(*args, **kwargs)

    def probe(self, origin_id: int, peer_id: int) -> bool:
        """One keep-alive probe; True iff the answer came back."""
        plan = self._overlay().fault_plan
        return plan is None or not plan.probe_lost(origin_id, peer_id)

    # -------------------------------------------------------------- plumbing

    def _sim(self) -> EventSimulator:
        if self.sim is None:
            raise RuntimeError("transport has no clock: built without a simulator")
        return self.sim

    def _overlay(self) -> Any:
        if self.overlay is None:
            raise RuntimeError("transport has no overlay: built without a network")
        return self.overlay


def as_transport(sim_or_transport: Any, overlay: Any) -> Any:
    """Normalize a constructor argument to a transport.

    Existing harnesses pass a raw :class:`EventSimulator`; new callers
    may pass any transport.  The discriminator is the seam's own
    signature: a transport's ``now`` is a method, a simulator's ``now``
    is a plain float attribute.
    """
    if callable(getattr(sim_or_transport, "now", None)):
        return sim_or_transport
    return SimTransport(sim_or_transport, overlay)
