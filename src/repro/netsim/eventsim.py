"""A small discrete-event simulator.

The synchronous emulation used for the §5 trace experiments treats
failure detection as instantaneous.  In a deployment, Pastry detects
failures through periodic keep-alive messages: "if a node is unresponsive
for a period T, it is presumed failed" (§2.1) — and PAST's availability
story explicitly hinges on that window ("a file can be located unless all
k nodes have failed simultaneously, i.e., within a recovery period").

This module provides the event queue that the recovery-period experiments
use to model time: schedule callbacks at absolute or relative times,
periodic timers for keep-alives, and deterministic FIFO ordering among
same-time events.
"""

from __future__ import annotations

import heapq
import itertools
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Optional

from .trace import ScheduleTrace, callback_label


#: Files whose frames are skipped when attributing a schedule call to a
#: source location: the simulator itself plus any delegation layer that
#: registers here (the transport seam does), so trace diagnostics keep
#: pointing at the node logic that asked for the timer.
_INFRA_FILES = {__file__}


def _call_site() -> str:
    """``file.py:lineno`` of the nearest caller outside the infrastructure."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename in _INFRA_FILES:
        frame = frame.f_back
    if frame is None:
        return "?"
    filename = os.path.basename(frame.f_code.co_filename)
    return f"{filename}:{frame.f_lineno}"


@dataclass(frozen=True)
class EventHandle:
    """Returned by ``schedule``; lets the caller cancel the event."""

    __slots__ = ("time", "seq")

    time: float
    seq: int


@dataclass(frozen=True)
class PendingEvent:
    """One co-enabled event offered to a :class:`SchedulePolicy`."""

    __slots__ = ("time", "seq", "callback")

    time: float
    seq: int
    callback: Callable[[], None]

    @property
    def label(self) -> str:
        """Stable, address-free name of the callback (see trace module)."""
        return callback_label(self.callback)


class SchedulePolicy:
    """Chooses which of several co-enabled events runs next.

    The simulator's default tie-break is FIFO: among events with equal
    timestamps, lowest sequence number first.  A policy generalises
    that: at each step the simulator collects the *frontier* — every
    pending event whose time is within ``window`` of the earliest
    pending time — and asks the policy to pick one by index.  The
    frontier is sorted by ``(time, seq)``, so index 0 is always the
    FIFO choice and the base policy is behaviour-preserving.

    ``window > 0`` additionally allows *commuting* events whose
    timestamps differ by at most ``window``: the chosen event may run
    before an earlier-stamped one.  Virtual time never moves backwards;
    an event overtaken this way still reports its original timestamp.

    Policies must be deterministic functions of the frontier (plus any
    internal state seeded deterministically): the schedule explorer
    (``repro.devtools.explore``) relies on replaying a recorded decision
    sequence to reproduce a run exactly.
    """

    #: co-enablement window: events within this much of the earliest
    #: pending timestamp may be reordered ahead of it.
    window: float = 0.0

    def choose(self, frontier) -> int:
        """Return the index of the frontier event to run next."""
        return 0


class EventSimulator:
    """A priority-queue discrete-event loop with virtual time.

    Pass ``trace=ScheduleTrace()`` (or set ``REPRO_SANITIZE=1`` in the
    environment) to record a digest trace of every executed event; see
    :mod:`repro.netsim.trace` and ``python -m repro.devtools.sanitize``.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        trace: Optional[ScheduleTrace] = None,
        policy: Optional[SchedulePolicy] = None,
    ):
        self.now = start_time
        self._heap = []  # (time, seq, callback)
        self._seq = itertools.count()
        self._cancelled = set()
        #: seqs currently in the heap; bounds _cancelled (see cancel()).
        self._pending = set()
        self.events_run = 0
        if trace is None and os.environ.get("REPRO_SANITIZE"):
            trace = ScheduleTrace()
        self.trace = trace
        #: ``None`` keeps the original FIFO pop path byte-for-byte.
        self.policy = policy

    # ------------------------------------------------------------ schedule

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute virtual time ``when``."""
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        seq = next(self._seq)
        heapq.heappush(self._heap, (when, seq, callback))
        self._pending.add(seq)
        if self.trace is not None:
            self.trace.record_schedule(seq, _call_site())
        return EventHandle(when, seq)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if it already ran).

        Only seqs still in the heap enter ``_cancelled``; cancelling an
        event that already ran, or cancelling twice, is a no-op, so the
        set can never outgrow the heap.
        """
        if handle.seq in self._pending:
            self._cancelled.add(handle.seq)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        jitter_fn: Optional[Callable[[], float]] = None,
        first_delay: Optional[float] = None,
    ) -> "PeriodicTimer":
        """Run ``callback`` every ``period`` units until stopped.

        ``first_delay`` overrides the delay before the *first* fire only
        (jitter still applies) — used to phase-spread a fleet of per-node
        timers instead of firing them all at the same instant.
        """
        timer = PeriodicTimer(self, period, callback, jitter_fn, first_delay)
        timer.start()
        return timer

    # ----------------------------------------------------------------- run

    def pending(self) -> int:
        return len(self._heap)

    def step(self, limit: Optional[float] = None) -> bool:
        """Run the next event; returns False when the queue is empty.

        ``limit`` caps the timestamps a :class:`SchedulePolicy` may pick
        from (used by :meth:`run_until` so a commutation window never
        reaches past the deadline).  It never *adds* events: the FIFO
        path ignores it because its choice is always the earliest event.
        """
        if self.policy is None:
            while self._heap:
                when, seq, callback = heapq.heappop(self._heap)
                self._pending.discard(seq)
                if seq in self._cancelled:
                    self._cancelled.discard(seq)
                    continue
                self.now = when
                if self.trace is not None:
                    self.trace.record_event(when, seq, callback)
                callback()
                self.events_run += 1
                return True
            return False

        frontier = self._pop_frontier(limit)
        if not frontier:
            return False
        index = 0
        if len(frontier) > 1:
            index = self.policy.choose(frontier)
            if not 0 <= index < len(frontier):
                raise IndexError(
                    f"policy chose {index} from a frontier of {len(frontier)}"
                )
        chosen = frontier[index]
        # Push the rest back *before* running the callback so the event
        # it executes sees a consistent queue (it may cancel them).
        for event in frontier:
            if event.seq != chosen.seq:
                heapq.heappush(self._heap, (event.time, event.seq, event.callback))
                self._pending.add(event.seq)
        if self.trace is not None and len(frontier) > 1:
            self.trace.record_decision(index, frontier)
        # Time is monotonic even when the policy runs a later-stamped
        # event ahead of an earlier one inside the window.
        self.now = max(self.now, chosen.time)
        if self.trace is not None:
            self.trace.record_event(chosen.time, chosen.seq, chosen.callback)
        chosen.callback()
        self.events_run += 1
        return True

    def _pop_frontier(self, limit: Optional[float]):
        """Pop every co-enabled event: earliest time plus policy window.

        Cancelled events encountered on the way are dropped for good,
        exactly as the FIFO path drops them.
        """
        frontier = []
        horizon = None
        while self._heap:
            when, seq, callback = self._heap[0]
            if horizon is None:
                if seq in self._cancelled:
                    heapq.heappop(self._heap)
                    self._pending.discard(seq)
                    self._cancelled.discard(seq)
                    continue
                horizon = when + self.policy.window
                if limit is not None:
                    horizon = min(horizon, limit)
            if when > horizon:
                break
            heapq.heappop(self._heap)
            self._pending.discard(seq)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            frontier.append(PendingEvent(when, seq, callback))
        return frontier

    def run_until(self, deadline: float) -> None:
        """Run every event scheduled at or before ``deadline``."""
        while self._heap and self._heap[0][0] <= deadline:
            self.step(limit=deadline)
        self.now = max(self.now, deadline)

    def run(self, max_events: int = 1_000_000) -> None:
        """Drain the queue (bounded to catch runaway timer loops)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"event loop exceeded {max_events} events")


class PeriodicTimer:
    """A repeating timer driven by an :class:`EventSimulator`."""

    __slots__ = (
        "sim", "period", "callback", "jitter_fn", "_first_delay",
        "_handle", "_running", "fires",
    )

    def __init__(
        self,
        sim: EventSimulator,
        period: float,
        callback: Callable[[], None],
        jitter_fn: Optional[Callable[[], float]] = None,
        first_delay: Optional[float] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        if first_delay is not None and first_delay < 0:
            raise ValueError("first_delay must be non-negative")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.jitter_fn = jitter_fn
        self._first_delay = first_delay
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.fires = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._arm()

    def _arm(self) -> None:
        base = self.period
        if self._first_delay is not None:
            base = self._first_delay
            self._first_delay = None
        delay = base + (self.jitter_fn() if self.jitter_fn else 0.0)
        self._handle = self.sim.schedule(max(1e-12, delay), self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.fires += 1
        self.callback()
        if self._running:
            self._arm()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self.sim.cancel(self._handle)
            self._handle = None
