"""Message and hop accounting for the emulated network."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MessageStats:
    """Aggregate counters maintained by the overlay network.

    ``hops`` counts per-hop message transmissions; ``routes`` counts routed
    requests; ``distance`` accumulates the proximity-metric length of all
    hops, which supports the locality (route-stretch) benchmarks.
    """

    routes: int = 0
    hops: int = 0
    distance: float = 0.0
    direct_rpcs: int = 0
    _hop_histogram: dict = field(default_factory=dict)

    def record_route(self, hop_count: int, distance: float) -> None:
        self.routes += 1
        self.hops += hop_count
        self.distance += distance
        self._hop_histogram[hop_count] = self._hop_histogram.get(hop_count, 0) + 1

    def record_rpc(self, distance: float = 0.0) -> None:
        """A direct (non-routed) RPC, e.g. replica forwarding within a leaf set."""
        self.direct_rpcs += 1
        self.distance += distance

    @property
    def mean_hops(self) -> float:
        return self.hops / self.routes if self.routes else 0.0

    def hop_histogram(self) -> dict:
        return dict(self._hop_histogram)

    def snapshot(self) -> dict:
        return {
            "routes": self.routes,
            "hops": self.hops,
            "mean_hops": self.mean_hops,
            "distance": self.distance,
            "direct_rpcs": self.direct_rpcs,
        }

    def reset(self) -> None:
        self.routes = 0
        self.hops = 0
        self.distance = 0.0
        self.direct_rpcs = 0
        self._hop_histogram.clear()
