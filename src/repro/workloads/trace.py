"""Trace representation shared by all workload generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace entry.

    ``kind`` is ``"insert"`` (first appearance of a URL/file) or
    ``"lookup"`` (a subsequent reference).  ``file_index`` identifies the
    logical file within the trace; ``client`` and ``site`` identify the
    requesting client and the geographic trace site it belongs to.
    """

    kind: str
    file_index: int
    name: str
    size: int
    client: int = 0
    site: int = 0


@dataclass
class Trace:
    """A sequence of trace events plus summary statistics."""

    events: List[TraceEvent] = field(default_factory=list)
    n_clients: int = 1
    n_sites: int = 1

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def inserts(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "insert"]

    @property
    def lookups(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "lookup"]

    def unique_files(self) -> int:
        return sum(1 for e in self.events if e.kind == "insert")

    def total_content_bytes(self) -> int:
        """Total bytes of unique content (what the paper reports as 18.7 GB)."""
        return sum(e.size for e in self.events if e.kind == "insert")

    def size_stats(self) -> dict:
        sizes = sorted(e.size for e in self.events if e.kind == "insert")
        if not sizes:
            return {"count": 0}
        n = len(sizes)
        median = sizes[n // 2] if n % 2 else (sizes[n // 2 - 1] + sizes[n // 2]) / 2
        return {
            "count": n,
            "total": sum(sizes),
            "mean": sum(sizes) / n,
            "median": median,
            "min": sizes[0],
            "max": sizes[-1],
        }

    def truncated(self, max_events: int) -> "Trace":
        """The first ``max_events`` entries, as the paper truncates NLANR."""
        return Trace(self.events[:max_events], self.n_clients, self.n_sites)
