"""Parsing real NLANR/squid proxy logs and trace (de)serialization.

The paper drives PAST with eight NLANR top-level proxy logs for
2001-03-05, combined "preserving the temporal ordering of the entries in
each log", with the first appearance of a URL inserting the file and
later appearances looking it up.  NLANR no longer distributes those logs,
but anyone holding squid-format access logs can reproduce the pipeline
exactly with this module:

* :func:`parse_squid_log` reads one log in squid's native access.log
  format (``timestamp elapsed client action/code size method URL ...``).
* :func:`combine_logs` merges several parsed logs by timestamp — one per
  trace site, like the paper's eight proxies.
* :func:`build_trace` converts the merged records into a
  :class:`~repro.workloads.trace.Trace` (inserts on first URL reference).
* :func:`write_trace` / :func:`read_trace` persist traces as TSV so a
  parsed workload can be replayed without the raw logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, TextIO, Union

from .trace import Trace, TraceEvent


@dataclass(frozen=True)
class LogRecord:
    """One parsed proxy-log entry."""

    timestamp: float
    client: str
    url: str
    size: int
    site: int = 0


class LogParseError(ValueError):
    """A log line could not be parsed."""


def parse_squid_log(
    lines: Iterable[str], site: int = 0, strict: bool = False
) -> List[LogRecord]:
    """Parse squid native access-log lines into records.

    Expected fields (whitespace separated)::

        timestamp elapsed client action/code size method URL rfc931 hierarchy type

    Malformed lines are skipped unless ``strict`` is set.
    """
    out: List[LogRecord] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 7:
            if strict:
                raise LogParseError(f"line {lineno}: expected >=7 fields")
            continue
        try:
            timestamp = float(parts[0])
            size = int(parts[4])
        except ValueError:
            if strict:
                raise LogParseError(f"line {lineno}: bad timestamp or size")
            continue
        if size < 0:
            if strict:
                raise LogParseError(f"line {lineno}: negative size")
            continue
        out.append(
            LogRecord(
                timestamp=timestamp,
                client=parts[2],
                url=parts[6],
                size=size,
                site=site,
            )
        )
    return out


def combine_logs(per_site_records: Sequence[Sequence[LogRecord]]) -> List[LogRecord]:
    """Merge several sites' records by timestamp (stable within a site).

    This is the paper's construction: "the eight separate web traces were
    combined, preserving the temporal ordering of the entries in each log
    to create a single log".
    """
    merged: List[LogRecord] = []
    for records in per_site_records:
        merged.extend(records)
    merged.sort(key=lambda r: r.timestamp)
    return merged


def build_trace(records: Sequence[LogRecord], max_entries: int = None) -> Trace:
    """Turn merged log records into a Trace.

    The first appearance of a URL becomes an insert carrying that entry's
    size; subsequent appearances become lookups.  Client identifiers are
    densely renumbered in order of first appearance, exactly how the
    paper maps the 775 distinct clients onto PAST nodes.
    """
    if max_entries is not None:
        records = records[:max_entries]
    client_ids: Dict[str, int] = {}
    file_ids: Dict[str, int] = {}
    file_sizes: Dict[str, int] = {}
    events: List[TraceEvent] = []
    n_sites = max((r.site for r in records), default=0) + 1
    for record in records:
        client = client_ids.setdefault(record.client, len(client_ids))
        if record.url not in file_ids:
            file_ids[record.url] = len(file_ids)
            file_sizes[record.url] = record.size
            kind = "insert"
        else:
            kind = "lookup"
        events.append(
            TraceEvent(
                kind=kind,
                file_index=file_ids[record.url],
                name=record.url,
                size=file_sizes[record.url],
                client=client,
                site=record.site,
            )
        )
    return Trace(events, n_clients=max(1, len(client_ids)), n_sites=n_sites)


# ------------------------------------------------------------- persistence

_HEADER = "# repro-trace v1\tkind\tfile_index\tname\tsize\tclient\tsite"


def write_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Persist a trace as TSV (one event per line)."""
    own = isinstance(destination, (str, Path))
    fh = open(destination, "w") if own else destination
    try:
        fh.write(f"{_HEADER}\n")
        fh.write(f"#meta\t{trace.n_clients}\t{trace.n_sites}\n")
        for e in trace:
            fh.write(
                f"{e.kind}\t{e.file_index}\t{e.name}\t{e.size}\t{e.client}\t{e.site}\n"
            )
    finally:
        if own:
            fh.close()


def read_trace(source: Union[str, Path, TextIO]) -> Trace:
    """Load a trace written by :func:`write_trace`."""
    own = isinstance(source, (str, Path))
    fh = open(source) if own else source
    try:
        events: List[TraceEvent] = []
        n_clients, n_sites = 1, 1
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#meta\t"):
                _, clients, sites = line.split("\t")
                n_clients, n_sites = int(clients), int(sites)
                continue
            if line.startswith("#"):
                continue
            kind, fidx, name, size, client, site = line.split("\t")
            events.append(
                TraceEvent(kind, int(fidx), name, int(size), int(client), int(site))
            )
        return Trace(events, n_clients=n_clients, n_sites=n_sites)
    finally:
        if own:
            fh.close()
