"""Synthetic filesystem workload.

The paper's second workload combines file name and size information from
several filesystems at the authors' institutions: 2,027,908 files,
166.6 GB total, mean 88,233 B, median 4,578 B, max 2.7 GB, min 0 B,
ordered by sorting the names alphabetically.  Its size distribution is far
heavier-tailed than the web trace, bracketing the range PAST is likely to
see.  This generator synthesizes files with the same statistics and a
deterministic alphabetical ordering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .trace import Trace, TraceEvent
from .web_proxy import lognormal_params

#: Published statistics of the paper's filesystem workload.
PAPER_MEAN_BYTES = 88_233
PAPER_MEDIAN_BYTES = 4_578
PAPER_MAX_BYTES = 2_700_000_000
PAPER_FILES = 2_027_908


class FilesystemWorkload:
    """Generator for the filesystem trace at configurable scale."""

    def __init__(
        self,
        n_files: Optional[int] = None,
        total_content_bytes: Optional[int] = None,
        mean_bytes: float = PAPER_MEAN_BYTES,
        median_bytes: float = PAPER_MEDIAN_BYTES,
        max_bytes: int = PAPER_MAX_BYTES,
        seed: int = 0,
    ):
        if n_files is None:
            if total_content_bytes is None:
                raise ValueError("give n_files or total_content_bytes")
            n_files = max(1, int(total_content_bytes / mean_bytes))
        self.n_files = n_files
        self.mean_bytes = mean_bytes
        self.median_bytes = median_bytes
        self.max_bytes = max_bytes
        self.seed = seed

    def storage_trace(self) -> Trace:
        """Insert-only trace in alphabetical filename order."""
        rng = np.random.default_rng(self.seed)
        mu, sigma = lognormal_params(self.median_bytes, self.mean_bytes)
        sizes = np.minimum(rng.lognormal(mu, sigma, self.n_files), self.max_bytes)
        sizes = sizes.astype(np.int64)
        # Synthetic paths; sorting them alphabetically fixes the ordering,
        # mirroring the paper's construction.
        width = len(str(self.n_files))
        names = [
            f"/home/u{int(rng.integers(0, 64)):02d}/f{i:0{width}d}.dat"
            for i in range(self.n_files)
        ]
        order = np.argsort(np.array(names))
        events = [
            TraceEvent("insert", int(i), names[int(i)], int(sizes[int(i)]))
            for i in order
        ]
        return Trace(events, n_clients=1, n_sites=1)
