"""Workload substrate for the §5 experiments.

The paper drives PAST with two traces: a combined NLANR web-proxy trace
(4M entries, 1,863,055 unique URLs, 18.7 GB) and a filesystem trace
(2,027,908 files, 166.6 GB), plus four truncated-normal node-capacity
distributions (Table 1).  The original traces are no longer distributed,
so this package synthesizes statistically matched equivalents; see
DESIGN.md §2 for the substitution rationale.
"""

from .capacities import (
    D1,
    D2,
    D3,
    D4,
    DISTRIBUTIONS,
    MB,
    CapacityDistribution,
)
from .trace import Trace, TraceEvent
from .web_proxy import WebProxyWorkload
from .filesystem import FilesystemWorkload
from .nlanr import (
    LogRecord,
    build_trace,
    combine_logs,
    parse_squid_log,
    read_trace,
    write_trace,
)

__all__ = [
    "LogRecord",
    "parse_squid_log",
    "combine_logs",
    "build_trace",
    "read_trace",
    "write_trace",
    "CapacityDistribution",
    "D1",
    "D2",
    "D3",
    "D4",
    "DISTRIBUTIONS",
    "MB",
    "Trace",
    "TraceEvent",
    "WebProxyWorkload",
    "FilesystemWorkload",
]
