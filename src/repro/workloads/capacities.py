"""Node storage-capacity distributions (Table 1 of the paper).

Four truncated normal distributions, parameterized by mean ``m`` and
standard deviation ``sigma`` with hard lower/upper bounds (all in MBytes):

===== ==== ===== ====== ======
name   m   sigma lower  upper
===== ==== ===== ====== ======
d1     27  10.8     2     51
d2     27   9.6     4     49
d3     27  54.0     6     48
d4     27  54.0     1     53
===== ==== ===== ====== ======

d1/d2 truncate the normal at ``m ± 2.3 sigma``; d3/d4 use an arbitrarily
large sigma with fixed bounds, yielding a much flatter (near-uniform)
distribution with more small nodes.  The paper notes these means are about
1000x below practical deployments — scaled down so high utilization can be
reached with the available traces — and that the scaling is conservative:
smaller nodes make storage management *harder*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: One MByte.  The absolute unit is irrelevant to the experiments (only
#: file-size/capacity ratios matter); using 10**6 keeps numbers readable.
MB = 1_000_000


@dataclass(frozen=True)
class CapacityDistribution:
    """A truncated normal distribution over node storage capacities."""

    name: str
    mean_mb: float
    sigma_mb: float
    lower_mb: float
    upper_mb: float

    def sample(self, n: int, rng: random.Random, scale: float = 1.0) -> List[int]:
        """Draw ``n`` capacities in bytes (rejection-sampled truncation).

        ``scale`` multiplies every capacity; the Figure 7 experiment uses
        the same distribution with capacities scaled by 10.
        """
        out = []
        lo = self.lower_mb * MB * scale
        hi = self.upper_mb * MB * scale
        mu = self.mean_mb * MB * scale
        sd = self.sigma_mb * MB * scale
        while len(out) < n:
            x = rng.gauss(mu, sd)
            if lo <= x <= hi:
                out.append(int(x))
        return out

    def mean_bytes(self, scale: float = 1.0) -> float:
        return self.mean_mb * MB * scale

    def bounds_bytes(self, scale: float = 1.0):
        return self.lower_mb * MB * scale, self.upper_mb * MB * scale


D1 = CapacityDistribution("d1", 27, 10.8, 2, 51)
D2 = CapacityDistribution("d2", 27, 9.6, 4, 49)
D3 = CapacityDistribution("d3", 27, 54.0, 6, 48)
D4 = CapacityDistribution("d4", 27, 54.0, 1, 53)

DISTRIBUTIONS = {"d1": D1, "d2": D2, "d3": D3, "d4": D4}
