"""Synthetic NLANR-style web-proxy workload.

The paper's storage and caching experiments use 8 combined NLANR top-level
proxy logs for 2001-03-05, truncated to 4,000,000 entries referencing
1,863,055 unique URLs totalling 18.7 GB (mean 10,517 B, median 1,312 B,
max 138 MB, min 0 B), with 775 distinct clients.  NLANR no longer
distributes those traces, so this generator synthesizes a stream with the
same published statistics:

* **File sizes** — lognormal fitted to the published median and mean
  (``mu = ln(median)``, ``sigma = sqrt(2 ln(mean/median))``), truncated at
  the published maximum.  This reproduces the heavy tail that drives
  replica diversion.
* **Popularity** — Zipf-like with configurable exponent (web request
  streams follow a Zipf distribution with alpha ~= 0.6-0.8; Breslau et
  al. [10], cited by the paper to explain Figure 8).
* **Clients and sites** — requests come from ``n_clients`` clients spread
  over ``n_sites`` geographic trace sites; an affinity parameter biases
  each file's requests towards a home site, modelling files "popular among
  one or more local clusters of clients" (§4).

The first reference to a URL is an insert; subsequent references are
lookups — exactly how the paper plays the trace against PAST.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .trace import Trace, TraceEvent

#: Published statistics of the paper's combined NLANR trace.
PAPER_MEAN_BYTES = 10_517
PAPER_MEDIAN_BYTES = 1_312
PAPER_MAX_BYTES = 138_000_000
PAPER_UNIQUE_URLS = 1_863_055
PAPER_ENTRIES = 4_000_000
PAPER_CLIENTS = 775
PAPER_SITES = 8


def lognormal_params(median: float, mean: float):
    """Fit (mu, sigma) of a lognormal to a target median and mean.

    For a lognormal, ``median = exp(mu)`` and ``mean = exp(mu + sigma^2/2)``,
    so ``sigma = sqrt(2 ln(mean/median))``.
    """
    if median <= 0 or mean < median:
        raise ValueError("need 0 < median <= mean")
    mu = math.log(median)
    sigma = math.sqrt(2.0 * math.log(mean / median))
    return mu, sigma


class WebProxyWorkload:
    """Generator for NLANR-style traces at configurable scale."""

    def __init__(
        self,
        n_files: Optional[int] = None,
        total_content_bytes: Optional[int] = None,
        requests_per_file: float = PAPER_ENTRIES / PAPER_UNIQUE_URLS,
        zipf_alpha: float = 0.8,
        recency_bias: float = 0.3,
        recency_window: int = 256,
        n_clients: int = PAPER_CLIENTS,
        n_sites: int = PAPER_SITES,
        site_affinity: float = 0.5,
        mean_bytes: float = PAPER_MEAN_BYTES,
        median_bytes: float = PAPER_MEDIAN_BYTES,
        max_bytes: int = PAPER_MAX_BYTES,
        seed: int = 0,
    ):
        if n_files is None:
            if total_content_bytes is None:
                raise ValueError("give n_files or total_content_bytes")
            n_files = max(1, int(total_content_bytes / mean_bytes))
        self.n_files = n_files
        self.requests_per_file = requests_per_file
        self.zipf_alpha = zipf_alpha
        self.recency_bias = recency_bias
        self.recency_window = recency_window
        self.n_clients = n_clients
        self.n_sites = n_sites
        self.site_affinity = site_affinity
        self.mean_bytes = mean_bytes
        self.median_bytes = median_bytes
        self.max_bytes = max_bytes
        self.seed = seed

    # ------------------------------------------------------------- sampling

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def sample_sizes(self, rng: np.random.Generator) -> np.ndarray:
        mu, sigma = lognormal_params(self.median_bytes, self.mean_bytes)
        sizes = rng.lognormal(mu, sigma, self.n_files)
        return np.minimum(sizes, self.max_bytes).astype(np.int64)

    def _zipf_probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.n_files + 1, dtype=np.float64)
        p = ranks ** (-self.zipf_alpha)
        return p / p.sum()

    def _client_sites(self, rng: np.random.Generator) -> np.ndarray:
        """Assign each client to a trace site (balanced round-robin)."""
        return np.arange(self.n_clients) % self.n_sites

    # ------------------------------------------------------------ interface

    def storage_trace(self) -> Trace:
        """Insert-only trace: every unique file once, in arrival order.

        This is what the storage experiments play ("the first appearance
        of a URL being used to insert the file ... subsequent references
        ignored").
        """
        rng = self._rng()
        sizes = self.sample_sizes(rng)
        order = rng.permutation(self.n_files)
        client_sites = self._client_sites(rng)
        clients = rng.integers(0, self.n_clients, self.n_files)
        events = [
            TraceEvent(
                "insert",
                int(idx),
                f"url-{idx}",
                int(sizes[idx]),
                client=int(clients[i]),
                site=int(client_sites[clients[i]]),
            )
            for i, idx in enumerate(order)
        ]
        return Trace(events, self.n_clients, self.n_sites)

    def request_trace(self, n_requests: Optional[int] = None) -> Trace:
        """Full request stream for the caching experiment (Figure 8).

        First reference inserts; later references look up.  Each file has a
        home site; with probability ``site_affinity`` a request for it
        comes from that site's clients, otherwise from a uniform client.

        The stream mixes the Zipf popularity draw with a *recency* draw:
        with probability ``recency_bias`` the request re-references one of
        the last ``recency_window`` referenced files.  Real proxy traces
        exhibit exactly this temporal locality on top of their Zipf head,
        and it is what makes caches effective early in the trace.
        """
        rng = self._rng()
        if n_requests is None:
            n_requests = int(self.n_files * self.requests_per_file)
        sizes = self.sample_sizes(rng)
        # Popularity rank -> file index (random assignment).
        perm = rng.permutation(self.n_files)
        refs = rng.choice(self.n_files, size=n_requests, p=self._zipf_probabilities())
        file_ids = perm[refs]
        home_sites = rng.integers(0, self.n_sites, self.n_files)
        client_sites = self._client_sites(rng)
        # Pre-bucket clients by site for affinity draws.
        by_site = [np.flatnonzero(client_sites == s) for s in range(self.n_sites)]
        uniform_clients = rng.integers(0, self.n_clients, n_requests)
        affinity_roll = rng.random(n_requests)
        recency_roll = rng.random(n_requests)
        recency_pick = rng.integers(0, max(1, self.recency_window), n_requests)
        site_pick = rng.integers(0, self.n_clients, n_requests)  # index into bucket

        events = []
        seen = set()
        recent = []
        for i in range(n_requests):
            if recency_roll[i] < self.recency_bias and recent:
                fidx = recent[-1 - (int(recency_pick[i]) % len(recent))]
            else:
                fidx = int(file_ids[i])
            recent.append(fidx)
            if len(recent) > self.recency_window:
                del recent[: -self.recency_window]
            if affinity_roll[i] < self.site_affinity:
                bucket = by_site[int(home_sites[fidx])]
                client = int(bucket[site_pick[i] % len(bucket)])
            else:
                client = int(uniform_clients[i])
            site = int(client_sites[client])
            kind = "insert" if fidx not in seen else "lookup"
            seen.add(fidx)
            events.append(
                TraceEvent(kind, fidx, f"url-{fidx}", int(sizes[fidx]), client, site)
            )
        return Trace(events, self.n_clients, self.n_sites)
