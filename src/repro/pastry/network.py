"""The Pastry overlay: node registry, routing engine, join/failure protocols.

This is the single-process emulation environment the paper uses for its
experiments: every node instance lives in one interpreter and RPCs are
direct method calls, but all routing decisions use only node-local state
(leaf set, routing table, neighborhood set) and every hop is accounted in
:class:`repro.netsim.MessageStats`.

A small amount of *global* state (a sorted index of live nodeIds) is kept
by the emulator itself.  It is used only for test oracles and for emulator
services that stand in for out-of-band mechanisms (e.g. finding a
proximity-nearby bootstrap node for a joining node); it is never consulted
by the routing algorithm.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim import MessageStats, TorusTopology
from ..netsim.faults import FaultPlan
from ..netsim.topology import Topology
from ..netsim.transport import SimTransport
from . import idspace
from .node import PastryNode

#: Safety bound on route length; a loop raises instead of spinning.
MAX_ROUTE_HOPS = 256


class RoutingError(RuntimeError):
    """Raised when routing cannot make progress (should not happen)."""


@dataclass(frozen=True)
class DeliveryRecord:
    """Delivery-point annotation for one routed message.

    Captured when a :class:`PastryNetwork` has a delivery log enabled
    (see :meth:`PastryNetwork.start_delivery_log`).  ``closest_live`` is
    the *global* numerically-closest-live oracle evaluated at the moment
    of delivery — not later — so a checker running at quiescence can
    still decide whether each individual delivery was correct even
    though membership has churned since.  ``intercepted`` marks
    application interceptions (PAST stops lookups at the first replica),
    which legitimately terminate away from the closest node; ``dropped``
    marks messages absorbed by a malicious node.
    """

    __slots__ = (
        "key", "origin", "terminus", "closest_live", "hops",
        "intercepted", "dropped", "lost", "duplicate",
    )

    key: int
    origin: int
    terminus: Optional[int]
    closest_live: Optional[int]
    hops: int
    intercepted: bool
    dropped: bool
    #: The fault plane lost the message in flight (no delivery happened).
    lost: bool
    #: This record is the extra copy created by link-level duplication.
    duplicate: bool

    @property
    def misdelivered(self) -> bool:
        """True when a normal delivery ended at the wrong node."""
        return (
            not self.intercepted
            and not self.dropped
            and not self.lost
            and self.terminus != self.closest_live
        )


@dataclass
class RouteResult:
    """Outcome of routing one message."""

    path: List[int] = field(default_factory=list)
    terminus: Optional[int] = None
    intercepted: bool = False
    distance: float = 0.0
    #: True when a malicious node silently absorbed the message (§2.3).
    dropped: bool = False
    #: True when the fault plane lost the message on some hop.
    lost: bool = False
    #: Virtual-time latency injected by the fault plane along the path.
    latency: float = 0.0

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class PastryNetwork:
    """A self-organizing overlay of :class:`PastryNode` instances."""

    def __init__(
        self,
        b: int = 4,
        l: int = 32,
        topology: Optional[Topology] = None,
        seed: int = 0,
        randomize_routing: bool = False,
    ):
        self.b = b
        self.l = l
        self.topology = topology if topology is not None else TorusTopology()
        self.rng = random.Random(seed)
        self.randomize_routing = randomize_routing
        #: NodeIds that accept messages but do not forward them (§2.3's
        #: threat model).  They still answer keep-alives, so they are not
        #: detected as failed — only randomized routing defeats them.
        self.malicious: set = set()
        #: Optional callable ``node_id -> bool``: when set, nodes refuse to
        #: learn routing state for ids whose signed identity does not
        #: verify (§2.3: entries "are signed by the associated node and
        #: can be verified"; forged entries are rejected, suppression is
        #: the worst an attacker can do).
        self.identity_verifier = None
        #: Optional fault-injection plane (see :mod:`repro.netsim.faults`).
        #: ``None`` — the default — means a perfectly reliable message
        #: plane: the hot path pays one attribute check and nothing else,
        #: so fault-free runs are byte-identical to a build without the
        #: fault plane at all.
        self.fault_plan: Optional[FaultPlan] = None
        self.stats = MessageStats()
        #: Transport seam (messaging half) for the overlay's own node
        #: logic: the direct RPCs in :class:`~repro.pastry.node.PastryNode`
        #: go through it rather than touching stats/fault plumbing.
        self.transport = SimTransport(None, self)
        #: When not None, :meth:`route` appends a :class:`DeliveryRecord`
        #: per message.  Off by default: routing itself must never read
        #: it, and the oracle lookup it triggers costs a bisect per route.
        self.delivery_log: Optional[List[DeliveryRecord]] = None
        self._nodes: Dict[int, PastryNode] = {}
        self._failed: Dict[int, PastryNode] = {}
        self._coords: Dict[int, object] = {}
        self._sorted_ids: List[int] = []
        #: Called with the nodeId after every :meth:`recover_node`, so
        #: failure detectors can re-watch recovered nodes automatically.
        self._recovery_listeners: List[Callable[[int], None]] = []

    def add_recovery_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired (in order) after each node recovery."""
        self._recovery_listeners.append(listener)

    # ------------------------------------------------------------- registry

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> List[int]:
        return list(self._sorted_ids)

    def nodes(self) -> List[PastryNode]:
        return [self._nodes[i] for i in self._sorted_ids]

    def is_live(self, node_id: int) -> bool:
        return node_id in self._nodes

    def get_live(self, node_id: int) -> Optional[PastryNode]:
        return self._nodes.get(node_id)

    def node(self, node_id: int) -> PastryNode:
        """The live node with the given id; raises KeyError if absent."""
        return self._nodes[node_id]

    def distance(self, a: int, b: int) -> float:
        """Proximity metric between two nodes (live, failed or joining)."""
        try:
            return self.topology.distance(self._coords[a], self._coords[b])
        except KeyError:
            raise KeyError("unknown node in distance query") from None

    def random_node(self, rng: Optional[random.Random] = None) -> PastryNode:
        r = rng if rng is not None else self.rng
        return self._nodes[r.choice(self._sorted_ids)]

    def _register(self, node: PastryNode) -> None:
        self._nodes[node.node_id] = node
        bisect.insort(self._sorted_ids, node.node_id)

    def _deregister(self, node_id: int) -> None:
        del self._nodes[node_id]
        idx = bisect.bisect_left(self._sorted_ids, node_id)
        if idx < len(self._sorted_ids) and self._sorted_ids[idx] == node_id:
            del self._sorted_ids[idx]

    # --------------------------------------------------------- test oracles

    def numerically_closest_live(self, key: int) -> Optional[int]:
        """Global oracle: the live node numerically closest to ``key``.

        Used by tests and invariant checks only — routing never calls this.
        """
        if not self._sorted_ids:
            return None
        ids = self._sorted_ids
        idx = bisect.bisect_left(ids, key)
        candidates = {ids[idx % len(ids)], ids[(idx - 1) % len(ids)]}
        return idspace.closest_of(candidates, key)

    def k_closest_live(self, key: int, k: int) -> List[int]:
        """Global oracle: the k live nodes numerically closest to ``key``."""
        if not self._sorted_ids:
            return []
        ids = self._sorted_ids
        idx = bisect.bisect_left(ids, key)
        n = len(ids)
        window = min(n, 2 * k + 2)
        candidates = {ids[(idx + off) % n] for off in range(-window, window)}
        return idspace.sort_by_distance(candidates, key)[:k]

    # ----------------------------------------------------------------- join

    def create_first_node(self, node_id: Optional[int] = None, cluster=None) -> PastryNode:
        """Bootstrap the overlay with its first node."""
        if self._nodes or self._failed:
            raise RuntimeError("overlay already has nodes; use join()")
        return self._make_node(node_id, cluster=cluster, register=True)

    def _make_node(self, node_id, cluster=None, register=True) -> PastryNode:
        if node_id is None:
            node_id = self.rng.getrandbits(idspace.ID_BITS)
        if node_id in self._nodes or node_id in self._failed:
            raise ValueError("duplicate nodeId; the new node must obtain a new nodeId")
        coord = self.topology.place(self.rng, cluster=cluster)
        node = PastryNode(node_id, self, coord, b=self.b, l=self.l)
        self._coords[node_id] = coord
        if register:
            self._register(node)
        return node

    def join(self, node_id: Optional[int] = None, cluster=None) -> PastryNode:
        """Add a node via Pastry's join protocol.

        The newcomer X contacts a proximity-nearby node A and asks it to
        route a join message to X's own id.  X initializes its leaf set
        from the terminal node Z, its neighborhood set from A, and routing
        rows from the nodes encountered along the route, then announces
        itself to every node that appears in its state.
        """
        if not self._nodes:
            return self.create_first_node(node_id, cluster=cluster)

        node = self._make_node(node_id, cluster=cluster, register=False)
        seed = self._nearest_by_proximity(node.coord)

        # Route a join message from the seed towards the new node's id,
        # recording the nodes encountered.
        result = self.route(seed.node_id, node.node_id, message=None)
        # Confirm-reread: route() suspends at every hop, so a node
        # recorded on the path may have failed before its state is read;
        # keep only the ones still registered.
        path_nodes = [self._nodes[i] for i in result.path if i in self._nodes]
        if not path_nodes:
            path_nodes = [seed]
        # Leaf set from Z, neighborhood from A, routing rows from the
        # path (the newcomer pulls its own state; see initialize_from_join).
        node.initialize_from_join(seed, path_nodes)

        # Confirm-reread: initialization suspends at each leaf-set
        # exchange RPC, so the announcement set is collected from the
        # newcomer's post-exchange tables, re-read here.
        if len(node.leafset) == 0 and len(node.routing_table) == 0:
            # Every peer vanished while the exchange was in flight; the
            # newcomer is registered with nobody to announce to.
            self._register(node)
            return node

        # Announce arrival to every node that appears in the new node's
        # state, restoring Pastry's invariants (O(log N) messages).
        # Sorted: learn() mutates peer state, so the announcement order
        # must not depend on set iteration order.
        contacts = set(node.leafset.members())
        contacts.update(node.routing_table.entries())
        contacts.update(node.neighborhood)
        contacts.update(p.node_id for p in path_nodes)

        self._register(node)
        self.stats.record_rpc()
        for contact_id in sorted(contacts):
            if contact_id not in self._nodes:
                # Confirm-reread: learn() suspends at its own RPCs, so a
                # contact collected above may fail before its turn comes.
                continue
            self._nodes[contact_id].learn(node.node_id)
            self.stats.record_rpc(self.distance(node.node_id, contact_id))
        return node

    def _nearest_by_proximity(self, coord) -> PastryNode:
        """Emulator service standing in for 'a nearby node A' (expanding-ring
        discovery in a deployment)."""
        return min(
            self._nodes.values(), key=lambda n: self.topology.distance(coord, n.coord)
        )

    def build(self, n: int, clusters: Optional[List] = None) -> List[PastryNode]:
        """Grow the overlay to ``n`` nodes via repeated joins."""
        out = []
        for i in range(n):
            cluster = clusters[i % len(clusters)] if clusters else None
            out.append(self.join(cluster=cluster))
        return out

    # ---------------------------------------------------------- maintenance

    def run_table_maintenance(self, rounds: int = 1) -> int:
        """Periodic routing-table maintenance (the Pastry protocol).

        Each round, every node picks a random populated routing-table row
        and asks a random live entry of that row for *its* version of the
        row, offering each received entry to its own table (the proximity
        rule keeps whichever candidate is nearer).  This is how deployed
        Pastry keeps table quality high as the network evolves; it only
        improves locality — correctness never depends on it.

        Returns the number of table slots improved.
        """
        improved = 0
        for _ in range(rounds):
            for node in list(self._nodes.values()):
                populated = [
                    r
                    for r in range(node.routing_table.rows)
                    if any(e is not None for e in node.routing_table.row(r))
                ]
                if not populated:
                    continue
                row_idx = self.rng.choice(populated)
                entries = [
                    e for e in node.routing_table.row(row_idx)
                    if e is not None and self.is_live(e)
                ]
                if not entries:
                    continue
                donor = self._nodes[self.rng.choice(entries)]
                self.stats.record_rpc(self.distance(node.node_id, donor.node_id))
                for candidate in donor.routing_table.row(row_idx):
                    if candidate is not None and self.is_live(candidate):
                        if node.routing_table.consider(candidate):
                            improved += 1
                # Neighborhood sets are refreshed the same way.
                for neighbor in donor.neighborhood:
                    if self.is_live(neighbor):
                        node.consider_neighbor(neighbor)
        return improved

    # -------------------------------------------------------------- failure

    def fail_node(self, node_id: int) -> PastryNode:
        """Fail a node with immediate detection.

        Leaf-set members detect the silence of their keep-alive partner and
        repair their leaf sets; everyone else discovers the failure lazily
        when a routing attempt times out.
        """
        node = self.mark_failed(node_id)
        self.notify_failure(node_id)
        return node

    def mark_failed(self, node_id: int) -> PastryNode:
        """Phase 1 of a failure: the node goes silent.

        The node stops participating (routing treats it as dead on
        contact) but no keep-alive has expired yet, so no repair or
        maintenance runs.  The recovery-period experiments separate this
        from :meth:`notify_failure` to model the detection window T.
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id} is not live")
        node._crash_witnesses = set(node.leafset.members())
        node.alive = False
        self._deregister(node_id)
        self._failed[node_id] = node
        return node

    def notify_failure(self, node_id: int) -> None:
        """Phase 2 of a failure: keep-alive timers expire at the witnesses.

        Each leaf-set member of the failed node (as of crash time) removes
        it, repairs its leaf set, and runs application maintenance.
        """
        node = self._failed.get(node_id)
        if node is None:
            return  # recovered before detection, or unknown
        witnesses = getattr(node, "_crash_witnesses", set())
        for witness_id in sorted(witnesses):
            witness = self._nodes.get(witness_id)
            if witness is not None:
                witness.handle_failure(node_id)
                self.stats.record_rpc()

    def recover_node(self, node_id: int) -> PastryNode:
        """Bring a previously failed node back online.

        A recovering node contacts the nodes in its last known leaf set,
        obtains their current leaf sets, updates its own and then notifies
        the members of its new leaf set of its presence.
        """
        node = self._failed.pop(node_id, None)
        if node is None:
            raise KeyError(f"node {node_id} is not failed")
        node.alive = True
        old_members = node.leafset.sorted_members()
        node.leafset = type(node.leafset)(node.node_id, self.l)
        for member_id in old_members:
            donor = self._nodes.get(member_id)
            if donor is None:
                continue
            node.leafset.add(member_id)
            for m in donor.leafset.sorted_members():
                if self.is_live(m):
                    node.leafset.add(m)
        node.exchange_leafsets()
        self._register(node)
        for member_id in node.leafset.sorted_members():
            member = self._nodes.get(member_id)
            if member is not None:
                member.learn(node_id)
                self.stats.record_rpc()
        for listener in self._recovery_listeners:
            listener(node_id)
        return node

    # -------------------------------------------------------------- routing

    def route(
        self,
        origin_id: int,
        key: int,
        message=None,
        collect_distance: bool = False,
        _duplicate: bool = False,
    ) -> RouteResult:
        """Route ``message`` from ``origin_id`` towards ``key``.

        At each hop the local application's ``forward`` up-call runs and may
        intercept the message (PAST lookups stop at the first replica).  If
        never intercepted, the message is delivered at the live node
        numerically closest to ``key`` and its ``deliver`` up-call runs.

        When a :attr:`fault_plan` is installed, each hop additionally
        consults it: a lost hop terminates the route with ``lost=True``
        (the application never hears about the message again — the client
        must time out and retry, §2.3), injected delay accumulates in
        ``latency``, and a duplicated hop re-routes an extra copy of the
        message from the receiving node after the original completes
        (``_duplicate`` guards against copies spawning copies).
        """
        current = self._nodes.get(origin_id)
        if current is None:
            raise KeyError(f"origin {origin_id} is not a live node")
        result = RouteResult(path=[current.node_id])
        duplicate_from: List[int] = []
        while True:
            if (
                current.node_id in self.malicious
                and len(result.path) > 1
            ):
                # A malicious node along the path accepts the message but
                # does not correctly forward (or answer) it — the request
                # is silently lost and the client must retry (§2.3).
                result.terminus = None
                result.dropped = True
                break
            next_id = current.next_hop(
                key, rng=self.rng, randomize=self.randomize_routing
            )
            cont = current.app.forward(current, message, key, next_id)
            if not cont:
                result.terminus = current.node_id
                result.intercepted = True
                break
            if next_id is None:
                current.app.deliver(current, message, key)
                result.terminus = current.node_id
                break
            if len(result.path) > MAX_ROUTE_HOPS:
                raise RoutingError("routing loop detected")
            if collect_distance:
                result.distance += self.distance(current.node_id, next_id)
            if self.fault_plan is not None:
                tx = self.fault_plan.transmit(current.node_id, next_id)
                if tx.lost:
                    # The hop never arrives; the message is gone and no
                    # downstream up-call runs.
                    result.terminus = None
                    result.lost = True
                    break
                result.latency += tx.delay
                if tx.duplicate and not _duplicate:
                    duplicate_from.append(next_id)
            nxt = self._nodes.get(next_id)
            if nxt is None:
                # The liveness check in next_hop raced a crash: the chosen
                # hop died after being selected but before delivery.
                raise RoutingError("next hop vanished mid-route")
            result.path.append(next_id)
            current = nxt
        self.stats.record_route(result.hops, result.distance)
        if self.delivery_log is not None:
            self.delivery_log.append(
                DeliveryRecord(
                    key=key,
                    origin=origin_id,
                    terminus=result.terminus,
                    closest_live=self.numerically_closest_live(key),
                    hops=result.hops,
                    intercepted=result.intercepted,
                    dropped=result.dropped,
                    lost=result.lost,
                    duplicate=_duplicate,
                )
            )
        # Duplicated hops: the receiver got the message twice; the second
        # copy continues routing independently (exercising the idempotency
        # of forward/deliver up-calls).  Run after the original so the
        # original's outcome is never perturbed.
        for dup_origin in duplicate_from:
            if self._nodes.get(dup_origin) is not None:
                self.route(
                    dup_origin, key, message=message,
                    collect_distance=False, _duplicate=True,
                )
        return result

    def start_delivery_log(self) -> List[DeliveryRecord]:
        """Enable delivery-point recording; returns the (live) log list."""
        self.delivery_log = []
        return self.delivery_log
