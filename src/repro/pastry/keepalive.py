"""The keep-alive failure-detection protocol (§2.1).

"Neighboring nodes in the nodeId space (which are aware of each other by
virtue of being in each other's leaf set) periodically exchange
keep-alive messages.  If a node is unresponsive for a period T, it is
presumed failed."

:class:`KeepAliveMonitor` runs that protocol on a
:class:`~repro.netsim.eventsim.EventSimulator`: every node probes its
leaf-set members every ``interval``; a probe to a crashed node goes
unanswered, and once a peer has been silent for ``timeout`` (the paper's
T), the witness declares it failed.  The first declaration triggers the
detection callback — in a PAST deployment,
:meth:`repro.core.network.PastNetwork.process_failure_detection`.

The resulting detection latency is ``timeout`` plus up to one probe
``interval``, which is exactly the "recovery period" the availability
analysis sweeps.

Probes traverse the emulated network, so when the overlay has a
:class:`~repro.netsim.faults.FaultPlan` installed each probe is subject
to loss and partitions.  Under sustained loss a *live* peer can be
presumed failed (a false positive the real protocol also exhibits); the
first probe that does get through refutes the presumption so the peer
becomes re-detectable if it later truly fails.

Recovered nodes are re-watched automatically: the monitor registers a
recovery listener with the overlay, so a node brought back by
``recover_node`` resumes probing (and becomes re-detectable) without the
scenario having to remember to call :meth:`forget`/:meth:`watch`.
"""

from __future__ import annotations

from typing import Callable, Dict, Set, Tuple

from ..netsim.transport import as_transport
from .network import PastryNetwork


class KeepAliveMonitor:
    """Periodic leaf-set keep-alives with timeout-based failure detection.

    ``sim`` may be a raw :class:`~repro.netsim.eventsim.EventSimulator`
    (the historical signature; it is wrapped in a
    :class:`~repro.netsim.transport.SimTransport` over ``pastry``) or
    any :class:`~repro.core.transport.Transport`.  All clock reads,
    timers and probes go through the seam.
    """

    def __init__(
        self,
        sim,
        pastry: PastryNetwork,
        on_detect: Callable[[int], None],
        interval: float = 1.0,
        timeout: float = 3.0,
    ):
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        self.transport = as_transport(sim, pastry)
        self.pastry = pastry
        self.on_detect = on_detect
        self.interval = interval
        self.timeout = timeout
        #: (observer, peer) -> virtual time the peer last answered a probe.
        self.last_heard: Dict[Tuple[int, int], float] = {}
        self.detected: Set[int] = set()
        self.probes_sent = 0
        self._timers = {}
        # Per-node indexes over last_heard, so unwatch()/forget() clean up
        # in O(degree) instead of scanning the whole dict.
        self._peers_of: Dict[int, Set[int]] = {}
        self._observers_of: Dict[int, Set[int]] = {}
        self._active = False
        pastry.add_recovery_listener(self._on_recover)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin probing from every currently live node."""
        self._active = True
        for node in self.pastry.nodes():
            self.watch(node.node_id)

    def watch(self, node_id: int) -> None:
        """Start this node's periodic probe timer (idempotent).

        The peers currently in the node's leaf set are seeded into
        ``last_heard`` *now*: their timeout window starts at watch time,
        not backdated to a probe interval before first contact.
        """
        if node_id in self._timers:
            return
        node = self.pastry.get_live(node_id)
        if node is not None:
            now = self.transport.now()
            for peer_id in node.leafset.sorted_members():
                self._record_heard(node_id, peer_id, now)
        self._timers[node_id] = self.transport.every(
            self.interval, lambda nid=node_id: self._probe_round(nid)
        )

    def unwatch(self, node_id: int) -> None:
        """Stop the node's probe timer and drop its observer-side state.

        Entries where the node is the *peer* are left alone: other
        observers are still probing it.
        """
        timer = self._timers.pop(node_id, None)
        if timer is not None:
            timer.stop()
        for peer_id in sorted(self._peers_of.get(node_id, ())):
            self._drop_entry(node_id, peer_id)

    def stop(self) -> None:
        self._active = False
        for node_id in list(self._timers):
            self.unwatch(node_id)

    def _on_recover(self, node_id: int) -> None:
        """Overlay recovery listener: make the node re-detectable and,
        while the monitor is running, resume probing from it."""
        self.forget(node_id)
        if self._active:
            self.watch(node_id)

    # ----------------------------------------------------------- bookkeeping

    def _record_heard(self, observer_id: int, peer_id: int, when: float) -> None:
        key = (observer_id, peer_id)
        if key not in self.last_heard:
            self._peers_of.setdefault(observer_id, set()).add(peer_id)
            self._observers_of.setdefault(peer_id, set()).add(observer_id)
        self.last_heard[key] = when

    def _drop_entry(self, observer_id: int, peer_id: int) -> None:
        if self.last_heard.pop((observer_id, peer_id), None) is None:
            return
        peers = self._peers_of.get(observer_id)
        if peers is not None:
            peers.discard(peer_id)
            if not peers:
                del self._peers_of[observer_id]
        observers = self._observers_of.get(peer_id)
        if observers is not None:
            observers.discard(observer_id)
            if not observers:
                del self._observers_of[peer_id]

    # -------------------------------------------------------------- probing

    def _probe_round(self, observer_id: int) -> None:
        observer = self.pastry.get_live(observer_id)
        if observer is None:
            # The observer itself crashed; its timer dies with it.
            self.unwatch(observer_id)
            return
        # Sorted: on_detect can trigger repairs, so detection order within
        # a probe round must not depend on set iteration order.
        #
        # Each probe is a suspension point under a concurrent transport,
        # so the clock is re-read after every probe and every write to the
        # monitor's state re-checks it first: an unwatch() interleaved
        # mid-round must not have its cleanup silently resurrected by a
        # probe answer that was already in flight.
        for peer_id in observer.leafset.sorted_members():
            self.probes_sent += 1
            if self.pastry.is_live(peer_id):
                if self.transport.probe(observer_id, peer_id):
                    now = self.transport.now()
                    if (
                        (observer_id, peer_id) in self.last_heard
                        or observer_id in self._timers
                    ):
                        self._record_heard(observer_id, peer_id, now)
                    # A live answer refutes an earlier (loss-induced)
                    # presumption of failure: the peer is re-detectable.
                    if peer_id in self.detected:
                        self.detected.discard(peer_id)
                    continue
                # The probe (or its reply) was lost: to the observer this
                # round is indistinguishable from a dead peer.
            now = self.transport.now()
            if (observer_id, peer_id) not in self.last_heard:
                # A peer that entered the leaf set after watch() and has
                # never answered: its window starts now.
                if observer_id in self._timers:
                    self._record_heard(observer_id, peer_id, now)
                continue
            last = self.last_heard[(observer_id, peer_id)]
            if now - last >= self.timeout and peer_id not in self.detected:
                # Presumed failed: the witness's keep-alives went
                # unanswered for T.  Fire detection exactly once.
                self.detected.add(peer_id)
                self.on_detect(peer_id)

    def forget(self, node_id: int) -> None:
        """Clear detection state (e.g. after the node recovers)."""
        self.detected.discard(node_id)
        for observer_id in sorted(self._observers_of.get(node_id, ())):
            self._drop_entry(observer_id, node_id)
        for peer_id in sorted(self._peers_of.get(node_id, ())):
            self._drop_entry(node_id, peer_id)
