"""The keep-alive failure-detection protocol (§2.1).

"Neighboring nodes in the nodeId space (which are aware of each other by
virtue of being in each other's leaf set) periodically exchange
keep-alive messages.  If a node is unresponsive for a period T, it is
presumed failed."

:class:`KeepAliveMonitor` runs that protocol on a
:class:`~repro.netsim.eventsim.EventSimulator`: every node probes its
leaf-set members every ``interval``; a probe to a crashed node goes
unanswered, and once a peer has been silent for ``timeout`` (the paper's
T), the witness declares it failed.  The first declaration triggers the
detection callback — in a PAST deployment,
:meth:`repro.core.network.PastNetwork.process_failure_detection`.

The resulting detection latency is ``timeout`` plus up to one probe
``interval``, which is exactly the "recovery period" the availability
analysis sweeps.
"""

from __future__ import annotations

from typing import Callable, Dict, Set, Tuple

from ..netsim.eventsim import EventSimulator
from .network import PastryNetwork


class KeepAliveMonitor:
    """Periodic leaf-set keep-alives with timeout-based failure detection."""

    def __init__(
        self,
        sim: EventSimulator,
        pastry: PastryNetwork,
        on_detect: Callable[[int], None],
        interval: float = 1.0,
        timeout: float = 3.0,
    ):
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        self.sim = sim
        self.pastry = pastry
        self.on_detect = on_detect
        self.interval = interval
        self.timeout = timeout
        #: (observer, peer) -> virtual time the peer last answered a probe.
        self.last_heard: Dict[Tuple[int, int], float] = {}
        self.detected: Set[int] = set()
        self.probes_sent = 0
        self._timers = {}

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin probing from every currently live node."""
        for node in self.pastry.nodes():
            self.watch(node.node_id)

    def watch(self, node_id: int) -> None:
        """Start this node's periodic probe timer (idempotent)."""
        if node_id in self._timers:
            return
        self._timers[node_id] = self.sim.every(
            self.interval, lambda nid=node_id: self._probe_round(nid)
        )

    def unwatch(self, node_id: int) -> None:
        timer = self._timers.pop(node_id, None)
        if timer is not None:
            timer.stop()

    def stop(self) -> None:
        for node_id in list(self._timers):
            self.unwatch(node_id)

    # -------------------------------------------------------------- probing

    def _probe_round(self, observer_id: int) -> None:
        observer = self.pastry.get_live(observer_id)
        if observer is None:
            # The observer itself crashed; its timer dies with it.
            self.unwatch(observer_id)
            return
        now = self.sim.now
        # Sorted: on_detect can trigger repairs, so detection order within
        # a probe round must not depend on set iteration order.
        for peer_id in sorted(observer.leafset.members()):
            self.probes_sent += 1
            key = (observer_id, peer_id)
            if self.pastry.is_live(peer_id):
                self.last_heard[key] = now
                continue
            last = self.last_heard.setdefault(key, now - self.interval)
            if now - last >= self.timeout and peer_id not in self.detected:
                # Presumed failed: the witness's keep-alives went
                # unanswered for T.  Fire detection exactly once.
                self.detected.add(peer_id)
                self.on_detect(peer_id)

    def forget(self, node_id: int) -> None:
        """Clear detection state (e.g. after the node recovers)."""
        self.detected.discard(node_id)
        for key in [k for k in self.last_heard if node_id in k]:
            del self.last_heard[key]
