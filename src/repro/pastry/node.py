"""A single Pastry node: routing state and the next-hop decision.

Each node maintains three pieces of state (Figure 1 of the paper):

* a *routing table* with ``log_{2^b} N`` populated levels of ``2^b - 1``
  proximity-chosen entries each (:mod:`repro.pastry.routingtable`),
* a *leaf set* of the ``l`` numerically closest nodes
  (:mod:`repro.pastry.leafset`), and
* a *neighborhood set* of the ``l`` nodes closest under the network
  proximity metric, used during node addition/recovery.

The node also exposes an application interface mirroring Pastry's: an
application object (PAST's storage layer) receives ``forward``/``deliver``
up-calls during routing and membership-change notifications, which is how
PAST integrates storage management with routing.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, List, Optional, Set

from . import idspace
from .leafset import LeafSet
from .routingtable import RoutingTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .network import PastryNetwork


class PastryApplication:
    """Up-call interface a layered application (e.g. PAST) may implement.

    All hooks have default no-op implementations so applications override
    only what they need.
    """

    def deliver(self, node: "PastryNode", message, key: int) -> None:
        """Message reached the node numerically closest to ``key``."""

    def forward(self, node: "PastryNode", message, key: int, next_id: Optional[int]) -> bool:
        """Message is transiting ``node``.  Return False to stop routing here.

        PAST uses this to intercept lookups at the first node that holds a
        replica or cached copy, and to intercept inserts at the first node
        among the k numerically closest to the fileId.
        """
        return True

    def on_node_joined(self, node: "PastryNode", new_id: int) -> None:
        """A new node entered ``node``'s leaf set."""

    def on_node_failed(self, node: "PastryNode", failed_id: int) -> None:
        """A leaf-set member of ``node`` was declared failed."""


class PastryNode:
    """One overlay node.

    Parameters mirror the paper: ``b`` controls routing-table branching and
    ``l`` the leaf-set/neighborhood-set size.
    """

    # _crash_witnesses is assigned by PastryNetwork.mark_failed (and read
    # back with getattr + default), not by __init__ — it still needs a slot.
    __slots__ = (
        "node_id", "network", "coord", "b", "l", "alive", "leafset",
        "routing_table", "_neighborhood", "app", "_crash_witnesses",
    )

    def __init__(
        self,
        node_id: int,
        network: "PastryNetwork",
        coord,
        b: int = 4,
        l: int = 32,
    ):
        if not 0 <= node_id < idspace.ID_SPACE:
            raise ValueError("node_id out of range")
        self.node_id = node_id
        self.network = network
        self.coord = coord
        self.b = b
        self.l = l
        self.alive = True
        self.leafset = LeafSet(node_id, l)
        self.routing_table = RoutingTable(node_id, b, self._proximity)
        self._neighborhood: List[int] = []  # sorted by proximity, nearest first
        self.app: PastryApplication = PastryApplication()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PastryNode({idspace.format_id(self.node_id, self.b, 8)}...)"

    # ------------------------------------------------------------- proximity

    def _proximity(self, other_id: int) -> float:
        return self.network.distance(self.node_id, other_id)

    # ----------------------------------------------------------- membership

    @property
    def neighborhood(self) -> List[int]:
        """The neighborhood set: the ``l`` proximity-closest known nodes."""
        return list(self._neighborhood)

    def consider_neighbor(self, node_id: int) -> None:
        """Offer a node for the neighborhood set (kept sorted by proximity)."""
        if node_id == self.node_id or node_id in self._neighborhood:
            return
        self._neighborhood.append(node_id)
        self._neighborhood.sort(key=self._proximity)
        del self._neighborhood[self.l:]

    def learn(self, node_id: int) -> None:
        """Incorporate knowledge of a live node into all routing state.

        When the network enforces signed identities, an id whose
        nodeId-to-address binding does not verify is refused — a malicious
        announcer cannot forge routing entries (§2.3).
        """
        if node_id == self.node_id:
            return
        verifier = self.network.identity_verifier
        if verifier is not None and not verifier(node_id):
            return
        before = node_id in self.leafset
        self.leafset.add(node_id)
        self.routing_table.consider(node_id)
        self.consider_neighbor(node_id)
        if not before and node_id in self.leafset:
            self.app.on_node_joined(self, node_id)

    def learn_many(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.learn(node_id)

    def forget(self, node_id: int) -> None:
        """Purge a failed node from all routing state (no repair)."""
        self.leafset.remove(node_id)
        self.routing_table.remove(node_id)
        if node_id in self._neighborhood:
            self._neighborhood.remove(node_id)

    def handle_failure(self, failed_id: int) -> None:
        """React to the failure of a leaf-set member.

        The failed node is removed and the leaf set is repaired by asking
        the farthest live member on the failed node's side for *its* leaf
        set — the overlap of adjacent leaf sets makes this update trivial,
        as the paper notes.  The application is then notified so PAST can
        restore its replica invariant.
        """
        was_member = failed_id in self.leafset
        self.forget(failed_id)
        if was_member:
            self._repair_leafset()
            self.app.on_node_failed(self, failed_id)

    def _repair_leafset(self) -> None:
        """Refill the leaf set from the farthest live member on each side.

        When the extremes' donations leave the set short of ``l`` members
        while it has trimmed in the past, the single-donor pull was not
        enough (the donors' own sets can be stale after churn shrinks the
        ring) — walk the membership to a fixpoint, exactly as a joining
        node does, so the witness ends the repair with every live node it
        can transitively reach.
        """
        for donor_id in [d for d in self.leafset.extremes() if d is not None]:
            donor = self.network.get_live(donor_id)
            if donor is None:
                continue
            for member in donor.leafset.sorted_members_with_owner():
                if self.network.is_live(member):
                    self.leafset.add(member)
        if not self.leafset.is_full() and self.leafset.ever_trimmed:
            self.exchange_leafsets()

    def exchange_leafsets(self) -> int:
        """Pull the leaf sets of current members until ours stops changing.

        One pull from the numerically closest node is *not* always enough
        to complete a leaf set: when more than ``l/2`` nodes cluster on
        one arc of the ring, every node near the cluster's edge has
        trimmed the far edge from its own leaf set, so a newcomer seeded
        from a single donor can be blind to live nodes that belong in its
        set.  Adjacent leaf sets overlap, so walking the membership to a
        fixpoint recovers them; each round either brings a strictly
        nearer node onto a side or terminates, so the loop converges.

        Returns the number of leaf-set pull RPCs issued.
        """
        pulls = 0
        for _ in range(self.l):
            before = self.leafset.members()
            # sorted_members() snapshots an immutable tuple, so the adds
            # below never perturb this round's iteration order.
            for donor_id in self.leafset.sorted_members():
                donor = self.network.get_live(donor_id)
                if donor is None:
                    continue
                pulls += 1
                _, donor_members = self.network.transport.send(
                    self.node_id, donor_id, donor.leafset.sorted_members,
                    reliable=True,
                )
                for member in donor_members:
                    if self.network.is_live(member):
                        self.leafset.add(member)
            if self.leafset.members() == before:
                break
        return pulls

    def initialize_from_join(
        self, seed: "PastryNode", path_nodes: List["PastryNode"]
    ) -> None:
        """Seed this newcomer's state from its join route (§2.3).

        ``seed`` is A, the proximity-nearby contact that routed the join
        message; ``path_nodes`` are the nodes the message traversed,
        ending at Z, the node numerically closest to this one.  Leaf set
        from Z (then completed by a member exchange), neighborhood set
        from A, routing rows from every node along the path.
        """
        terminus = path_nodes[-1]
        # Leaf set from Z, completed by exchanging leaf sets with the
        # members found there — Z alone cannot always supply both sides
        # (see exchange_leafsets).
        self.leafset.add(terminus.node_id)
        self.leafset.add_all(terminus.leafset.members())
        self.exchange_leafsets()
        # Neighborhood set from A (the proximity-nearby contact).
        self.consider_neighbor(seed.node_id)
        for n_id in seed.neighborhood:
            self.consider_neighbor(n_id)
        # Routing rows from the nodes along the path; each shares an
        # increasingly long id prefix with the newcomer.
        for hop in path_nodes:
            self.routing_table.consider(hop.node_id)
            depth = idspace.shared_prefix_length(hop.node_id, self.node_id, self.b)
            for row in range(min(depth + 1, self.routing_table.rows)):
                self.routing_table.install_row(row, hop.routing_table.row(row))
        # Confirm-reread: the leaf-set exchange suspends once per
        # contacted member, so the pre-exchange membership is stale by
        # now; routing entries are derived from the set's *current*
        # members, re-read after the last suspension.
        if not self.leafset.members():
            return  # every contact vanished while the exchange was in flight
        for member in self.leafset.sorted_members():
            self.routing_table.consider(member)

    # -------------------------------------------------------------- routing

    def next_hop(
        self, key: int, rng: Optional[random.Random] = None, randomize: bool = False
    ) -> Optional[int]:
        """Pastry's next-hop rule.  ``None`` means *deliver here*.

        1. If ``key`` falls within the leaf set's span, forward directly to
           the numerically closest leaf (or deliver if that is us).
        2. Otherwise use the routing-table entry that extends the shared
           prefix by at least one digit.
        3. If that slot is empty (or its node failed), fall back to any
           known node whose prefix match is at least as long and which is
           numerically strictly closer to the key — the "rare case".

        With ``randomize`` (the security mechanism of §2.3) the choice
        among valid candidates is randomized, heavily biased towards the
        best candidate, while preserving loop freedom: every forwarding
        target must be strictly numerically closer to the key.
        """
        if key == self.node_id:
            return None

        if self.leafset.covers(key):
            closest = self.leafset.closest_to(key, include_self=True)
            if closest == self.node_id or closest is None:
                return None
            if randomize and rng is not None and rng.random() < 0.15:
                # Randomized routing applies to the leaf-set hop too: any
                # member strictly closer to the key keeps the route
                # loop-free, and varying the final hops is what lets a
                # retry go around a malicious node parked next to the key.
                # Sorted: the index drawn from rng below must select the
                # same member regardless of set iteration order.
                alternates = [
                    m
                    for m in self.leafset.sorted_members()
                    if idspace.is_strictly_closer(m, self.node_id, key)
                    and self.network.is_live(m)
                ]
                if alternates:
                    return alternates[int(rng.random() * len(alternates))]
            if self.network.is_live(closest):
                return closest
            # Closest leaf died and we have not been told yet: treat it as a
            # detected failure and retry.
            self.handle_failure(closest)
            return self.next_hop(key, rng, randomize)

        row = idspace.shared_prefix_length(self.node_id, key, self.b)
        entry = self.routing_table.lookup(key)
        if entry is not None and not self.network.is_live(entry):
            # Routing-table entries are repaired lazily, on first use after
            # the failure: drop the dead entry and ask row peers for a
            # replacement.
            self.routing_table.remove(entry)
            entry = self.repair_table_entry(row, idspace.digit(key, row, self.b))
        if entry is not None and not idspace.is_strictly_closer(entry, self.node_id, key):
            # Near the namespace wrap a longer shared prefix does not imply
            # a shorter ring distance; forwarding there could loop.  Every
            # hop must make strict numerical progress towards the key.
            entry = None

        if entry is not None and not randomize:
            return entry

        candidates = self._rare_case_candidates(key, row)
        if entry is not None:
            candidates.add(entry)
        if not candidates:
            # About to deliver here without leaf-set coverage.  If the
            # leaf set is provably deficient (it trimmed members in a
            # bigger ring and churn has since shrunk it below l), the
            # "no strictly closer node known" conclusion may only reflect
            # lost knowledge — rebuild to a fixpoint and retry once
            # before accepting delivery.
            if self._complete_deficient_leafset():
                return self.next_hop(key, rng, randomize)
            return None
        best = min(candidates, key=lambda c: (idspace.ring_distance(c, key), c))
        if randomize and rng is not None and len(candidates) > 1:
            # "The probability distribution is heavily biased towards the
            # best choice to ensure low average route delay" (§2.3): take
            # the best hop ~85% of the time, otherwise one of the next-best
            # alternatives, so retries explore without ballooning routes.
            if rng.random() < 0.15:
                others = sorted(
                    candidates - {best},
                    key=lambda c: (idspace.ring_distance(c, key), c),
                )
                return others[min(len(others) - 1, int(rng.random() * 2))]
        return best

    def _complete_deficient_leafset(self) -> bool:
        """Rebuild a trimmed-but-not-full leaf set; True if it changed.

        Returning False (unchanged) is what bounds the ``next_hop``
        retry: a second pass through the empty-candidate path finds the
        fixpoint already reached and delivers.
        """
        if self.leafset.is_full() or not self.leafset.ever_trimmed:
            return False
        before = self.leafset.members()
        self.exchange_leafsets()
        return self.leafset.members() != before

    def repair_table_entry(self, row: int, col: int) -> Optional[int]:
        """Lazily repair a dead routing-table slot (the Pastry protocol).

        Asks the live entries of the same row — which by construction
        share the same prefix depth and so may know a node with the
        needed prefix — for *their* (row, col) entry; if none helps, the
        search widens to entries in deeper rows.  Returns the repaired
        entry, or None when no candidate exists.
        """
        stale = self.routing_table.entry(row, col)
        if stale is not None and not self.network.is_live(stale):
            self.routing_table.remove(stale)
        for donor_row in range(row, self.routing_table.rows):
            found = None
            for donor_id in self.routing_table.row(donor_row):
                if donor_id is None or not self.network.is_live(donor_id):
                    continue
                donor = self.network.get_live(donor_id)
                _, candidate = self.network.transport.send(
                    self.node_id, donor_id, donor.routing_table.entry, row, col,
                    reliable=True,
                )
                if (
                    candidate is not None
                    and candidate != self.node_id
                    and self.network.is_live(candidate)
                ):
                    self.routing_table.consider(candidate)
                    found = self.routing_table.entry(row, col)
                    break
            if found is not None:
                return found
        return None

    def _rare_case_candidates(self, key: int, row: int) -> Set[int]:
        """Known live nodes usable when the routing-table slot is empty."""
        pool: Set[int] = set(self.leafset.members())
        pool.update(self.routing_table.entries())
        pool.update(self._neighborhood)
        out: Set[int] = set()
        for cand in pool:
            if not self.network.is_live(cand):
                continue
            if idspace.shared_prefix_length(cand, key, self.b) < row:
                continue
            if idspace.is_strictly_closer(cand, self.node_id, key):
                out.add(cand)
        return out

    # --------------------------------------------------------------- display

    def format_state(self, max_rows: Optional[int] = None) -> str:
        """Render this node's state in the style of the paper's Figure 1."""
        lines = [f"NodeId {idspace.format_id(self.node_id, self.b)}"]
        lines.append("Leaf set")
        smaller = " ".join(idspace.format_id(i, self.b) for i in self.leafset.smaller)
        larger = " ".join(idspace.format_id(i, self.b) for i in self.leafset.larger)
        lines.append(f"  SMALLER: {smaller}")
        lines.append(f"  LARGER:  {larger}")
        lines.append("Routing table")
        rows = self.routing_table.rows if max_rows is None else max_rows
        for r in range(rows):
            row_entries = self.routing_table.row(r)
            cells = []
            for c, e in enumerate(row_entries):
                if c == idspace.digit(self.node_id, r, self.b):
                    cells.append("[self]")
                elif e is not None:
                    cells.append(idspace.format_id(e, self.b))
            if cells:
                lines.append(f"  level {r}: " + " ".join(cells))
        lines.append("Neighborhood set")
        lines.append("  " + " ".join(idspace.format_id(i, self.b) for i in self._neighborhood))
        return "\n".join(lines)
