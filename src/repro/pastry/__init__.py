"""Pastry: the peer-to-peer routing and content-location substrate of PAST.

Implements the scheme of Rowstron & Druschel, "Pastry: Scalable,
distributed object location and routing for large-scale peer-to-peer
systems" (Middleware 2001), to the level of detail PAST depends on:
prefix routing over base-``2**b`` digits, leaf sets, proximity-aware
routing tables, neighborhood sets, the node join protocol, failure
detection with leaf-set repair, and optional randomized routing.
"""

from . import idspace
from .idspace import ID_BITS, ID_SPACE, FILE_ID_BITS, file_id, routing_key
from .leafset import LeafSet
from .routingtable import RoutingTable
from .node import PastryApplication, PastryNode
from .network import DeliveryRecord, PastryNetwork, RouteResult, RoutingError

__all__ = [
    "idspace",
    "ID_BITS",
    "ID_SPACE",
    "FILE_ID_BITS",
    "file_id",
    "routing_key",
    "LeafSet",
    "RoutingTable",
    "PastryApplication",
    "PastryNode",
    "PastryNetwork",
    "DeliveryRecord",
    "RouteResult",
    "RoutingError",
]
