"""Pastry leaf sets.

The leaf set of a node contains the ``l/2`` live nodes with numerically
closest *larger* nodeIds and the ``l/2`` live nodes with numerically closest
*smaller* nodeIds, relative to the node's own id, on the circular namespace.
It is the structure that terminates Pastry routing (the final hops of every
route go through leaf sets) and the scope within which PAST performs
replica diversion and replica maintenance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from . import idspace


class LeafSet:
    """The leaf set of a single Pastry node.

    The set is maintained as a plain member set plus derived, lazily
    recomputed views of the ``l/2`` clockwise (larger) and ``l/2``
    counterclockwise (smaller) sides.  Membership is trimmed by the
    union of the per-direction rankings (see :meth:`_recompute`), while
    the side views partition members by their genuinely nearer
    direction.  As long as no member has ever been trimmed, the leaf set
    contains every node it was told about and the node has global
    knowledge of the ring; once the set overflows and drops a member,
    that guarantee is gone for good (the identity of the dropped node is
    forgotten), which :meth:`covers` must account for.
    """

    __slots__ = (
        "owner_id", "l", "_members", "_dirty", "_smaller", "_larger",
        "_ever_trimmed", "_sorted", "_with_owner",
    )

    def __init__(self, owner_id: int, l: int):
        if l < 2 or l % 2 != 0:
            raise ValueError(f"leaf set size l must be a positive even number, got {l}")
        self.owner_id = owner_id
        self.l = l
        self._members: Set[int] = set()
        self._dirty = True
        self._smaller: List[int] = []  # sorted by ccw distance from owner, nearest first
        self._larger: List[int] = []  # sorted by cw distance from owner, nearest first
        self._ever_trimmed = False
        #: Maintained ordered views, built lazily on first request after
        #: a mutation batch instead of re-sorted at every consumer:
        #: members ascending, and the same plus the owner (the candidate
        #: pool of every closest-* query).  ``None`` means stale — they
        #: must NOT be built eagerly in :meth:`_recompute`, which runs
        #: once per mutation batch whether or not anyone needs them.
        self._sorted: Optional[tuple] = ()
        self._with_owner: Optional[tuple] = (owner_id,)

    # ------------------------------------------------------------------ views

    def _recompute(self) -> None:
        if not self._dirty:
            return
        half = self.l // 2
        # Membership is trimmed *direction-blind*: keep the union of the
        # l/2 nearest clockwise successors and the l/2 nearest
        # counterclockwise predecessors, each ranked over ALL members.
        # This is what guarantees a node never forgets a true
        # ring-adjacent neighbor: in a clustered ring a node's clockwise
        # successor can be counterclockwise-*nearer*, and a trim that
        # first buckets members by nearer direction would overflow that
        # bucket and drop the successor — stranding keys at a node that
        # cannot see its own successor (a real misrouting bug this rule
        # fixed).
        ranked_cw = sorted(
            self._members, key=lambda i: idspace.clockwise_distance(self.owner_id, i)
        )
        ranked_ccw = sorted(
            self._members,
            key=lambda i: idspace.counterclockwise_distance(self.owner_id, i),
        )
        keep = set(ranked_cw[:half]) | set(ranked_ccw[:half])
        if len(keep) != len(self._members):
            self._ever_trimmed = True
            self._members = keep
        # The side *views* stay direction-faithful: each member belongs
        # to the side it is genuinely nearer to (ties go clockwise).
        # Repair and fullness signals depend on this: if the smaller
        # side were padded with far successors merely because they are
        # the ccw-nearest members known, a node that lost its
        # predecessors would look "full", pick repair donors on the
        # wrong arc, and never refill — a kept member may therefore
        # appear in neither view (it is still routable via `members`).
        self._larger = sorted(
            (
                m
                for m in self._members
                if idspace.clockwise_distance(self.owner_id, m)
                <= idspace.counterclockwise_distance(self.owner_id, m)
            ),
            key=lambda i: idspace.clockwise_distance(self.owner_id, i),
        )[:half]
        self._smaller = sorted(
            (
                m
                for m in self._members
                if idspace.counterclockwise_distance(self.owner_id, m)
                < idspace.clockwise_distance(self.owner_id, m)
            ),
            key=lambda i: idspace.counterclockwise_distance(self.owner_id, i),
        )[:half]
        # Recompute only runs when membership changed, so the ordered
        # views are stale exactly now; they are rebuilt on demand.
        self._sorted = None
        self._with_owner = None
        self._dirty = False

    @property
    def smaller(self) -> List[int]:
        """Members on the counterclockwise side, nearest first."""
        self._recompute()
        return list(self._smaller)

    @property
    def larger(self) -> List[int]:
        """Members on the clockwise side, nearest first."""
        self._recompute()
        return list(self._larger)

    def members(self) -> Set[int]:
        """All current leaf-set members (excluding the owner)."""
        self._recompute()
        return set(self._members)

    def sorted_members(self) -> Tuple[int, ...]:
        """Members ascending, as a shared immutable view.

        Equivalent to ``sorted(ls.members())`` without the per-call set
        copy and re-sort; the tuple is rebuilt at most once per
        membership change, and only if actually requested.  Ints sort by
        value, so the view is hashseed-independent and byte-identical to
        what every caller's ad-hoc ``sorted(members())`` used to produce.
        """
        self._recompute()
        if self._sorted is None:
            self._sorted = tuple(sorted(self._members))
        return self._sorted

    def sorted_members_with_owner(self) -> Tuple[int, ...]:
        """Members plus the owner, ascending (shared immutable view)."""
        self._recompute()
        if self._with_owner is None:
            self._with_owner = tuple(sorted(self._members | {self.owner_id}))
        return self._with_owner

    def __contains__(self, node_id: int) -> bool:
        self._recompute()
        return node_id in self._members

    def __len__(self) -> int:
        self._recompute()
        return len(self._members)

    def is_full(self) -> bool:
        """Whether both sides hold their full complement of ``l/2`` nodes."""
        self._recompute()
        half = self.l // 2
        return len(self._smaller) == half and len(self._larger) == half

    @property
    def ever_trimmed(self) -> bool:
        """Whether a member was ever dropped for side overflow.

        A leaf set that is not full *and* has trimmed is provably
        deficient: it once knew nodes it has since forgotten, so its arc
        may exclude live nodes it ought to know about.  Routing and
        failure repair use this to decide when a rebuild is warranted.
        """
        self._recompute()
        return self._ever_trimmed

    # ---------------------------------------------------------------- updates

    def add(self, node_id: int) -> None:
        """Consider ``node_id`` for membership (no-op for self/duplicates)."""
        if node_id == self.owner_id or node_id in self._members:
            return
        self._members.add(node_id)
        self._dirty = True

    def add_all(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.add(node_id)

    def remove(self, node_id: int) -> bool:
        """Remove a (failed) node.  Returns True if it was a member."""
        if node_id in self._members:
            self._members.discard(node_id)
            self._dirty = True
            return True
        return False

    # ---------------------------------------------------------------- queries

    def extremes(self) -> tuple:
        """The farthest member on each side ``(smallest_side, largest_side)``.

        These are the two "most distant members" a PAST node consults when
        its own leaf set cannot absorb a replica (§3.5).  Either element may
        be ``None`` when that side is empty.
        """
        self._recompute()
        low = self._smaller[-1] if self._smaller else None
        high = self._larger[-1] if self._larger else None
        return low, high

    def covers(self, key: int) -> bool:
        """Whether ``key`` falls within the arc spanned by this leaf set.

        Pastry's routing rule: if the key is between the farthest-smaller
        and farthest-larger leaf-set members (passing through the owner),
        the message is forwarded directly to the numerically closest leaf
        (or delivered, if the owner is closest).  A non-full leaf set that
        has never trimmed a member holds every node it was ever told
        about — global knowledge of a small ring — which also counts as
        coverage.

        A non-full leaf set that *has* trimmed is a different story: when
        more than ``l/2`` nodes sit on one side of the ring, that side
        overflows (forgetting the far ones) while the other side can stay
        empty.  Claiming coverage then would make routing deliver at a
        node that merely cannot see anything closer, stranding keys away
        from their numerically closest node — so such a leaf set only
        covers its actual arc, with an empty side's extreme standing at
        the owner.
        """
        self._recompute()
        if not self.is_full() and not self._ever_trimmed:
            return True
        low = self._smaller[-1] if self._smaller else self.owner_id
        high = self._larger[-1] if self._larger else self.owner_id
        # Arc from `low` clockwise through the owner to `high`.  The two
        # half-arcs are measured separately and summed *without* reducing
        # modulo the ring size: each is at most half the ring (sides are
        # direction-faithful), but if they jointly wrap the whole ring a
        # single mod-reduced span would silently truncate it to a sliver.
        span = idspace.clockwise_distance(low, self.owner_id) + idspace.clockwise_distance(
            self.owner_id, high
        )
        if span >= idspace.ID_SPACE:
            return True
        offset = idspace.clockwise_distance(low, key)
        return offset <= span

    def closest_to(self, key: int, include_self: bool = True) -> Optional[int]:
        """Numerically closest node to ``key`` among members (and owner)."""
        self._recompute()
        # closest_of's tie-break is a strict total order, so feeding it
        # the cached view / live set (no per-call copy) returns the same
        # node the old copy-then-scan did.
        if include_self:
            return idspace.closest_of(self.sorted_members_with_owner(), key)
        return idspace.closest_of(self._members, key)

    def closest_nodes(self, key: int, k: int, include_self: bool = True) -> List[int]:
        """The ``k`` members (optionally incl. owner) numerically closest to ``key``.

        This is how a PAST node determines the replica set for a fileId it
        coordinates: the k nodes with nodeIds closest to the fileId, all of
        which must appear in its leaf set (PAST requires ``k <= l/2 + 1``).
        """
        self._recompute()
        if include_self:
            candidates = self.sorted_members_with_owner()
        else:
            candidates = self._members
        return idspace.sort_by_distance(candidates, key)[:k]

    def state_rows(self) -> dict:
        """Debug/illustration view used by Figure-1 style state dumps."""
        return {"smaller": self.smaller, "larger": self.larger}
