"""Pastry routing tables.

A routing table is organized into ``ceil(log_{2^b} N)`` populated levels
with ``2^b - 1`` entries each.  The entries at level ``n`` refer to nodes
whose nodeId shares the owner's nodeId in the first ``n`` digits but whose
``n+1``-th digit differs.  Each entry points to one of potentially many
qualifying nodes; Pastry picks one that is *close* to the owner under the
network proximity metric, which is what gives routes their locality
properties.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from . import idspace

ProximityFn = Callable[[int], float]


class RoutingTable:
    """Prefix routing table for one Pastry node.

    Parameters
    ----------
    owner_id:
        The owning node's nodeId.
    b:
        Digit width in bits (``2**b``-way branching per level).
    proximity:
        Callable mapping a candidate nodeId to its network distance from
        the owner.  Used to prefer nearby nodes when several candidates
        qualify for the same slot.
    """

    __slots__ = (
        "owner_id", "b", "rows", "cols", "_proximity", "_entries",
        "_own_digits",
    )

    def __init__(self, owner_id: int, b: int, proximity: ProximityFn):
        self.owner_id = owner_id
        self.b = b
        self.rows = idspace.num_digits(b)
        self.cols = 1 << b
        self._proximity = proximity
        self._entries: List[List[Optional[int]]] = [
            [None] * self.cols for _ in range(self.rows)
        ]
        self._own_digits = idspace.digits(owner_id, b)

    # ---------------------------------------------------------------- lookup

    def slot_for(self, node_id: int) -> Optional[tuple]:
        """The (row, col) slot a given nodeId belongs to, or None for self."""
        if node_id == self.owner_id:
            return None
        row = idspace.shared_prefix_length(self.owner_id, node_id, self.b)
        col = idspace.digit(node_id, row, self.b)
        return row, col

    def entry(self, row: int, col: int) -> Optional[int]:
        """The nodeId stored at (row, col), or None if the slot is empty."""
        return self._entries[row][col]

    def lookup(self, key: int) -> Optional[int]:
        """The routing-table next hop for ``key``.

        Returns the entry whose nodeId shares a prefix with ``key`` at least
        one digit longer than the owner's shared prefix, or ``None`` if the
        corresponding slot is empty.
        """
        row = idspace.shared_prefix_length(self.owner_id, key, self.b)
        if row >= self.rows:
            return None  # key equals owner id
        col = idspace.digit(key, row, self.b)
        return self._entries[row][col]

    def row(self, index: int) -> List[Optional[int]]:
        """A copy of one routing-table row (used during node join)."""
        return list(self._entries[index])

    def entries(self) -> Iterator[int]:
        """Iterate over all non-empty entries."""
        for r in self._entries:
            for e in r:
                if e is not None:
                    yield e

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # ---------------------------------------------------------------- update

    def consider(self, node_id: int) -> bool:
        """Offer a candidate node for inclusion.

        The candidate fills its slot if empty, or replaces the occupant if
        it is strictly closer under the proximity metric (Pastry's locality
        heuristic).  Returns True if the table changed.
        """
        slot = self.slot_for(node_id)
        if slot is None:
            return False
        row, col = slot
        if col == self._own_digits[row]:
            # The slot matching the owner's own digit is never populated.
            return False
        current = self._entries[row][col]
        if current == node_id:
            return False
        if current is None or self._proximity(node_id) < self._proximity(current):
            self._entries[row][col] = node_id
            return True
        return False

    def remove(self, node_id: int) -> bool:
        """Remove a (failed) node from the table.  Returns True if present."""
        slot = self.slot_for(node_id)
        if slot is None:
            return False
        row, col = slot
        if self._entries[row][col] == node_id:
            self._entries[row][col] = None
            return True
        return False

    def install_row(self, index: int, row_entries: List[Optional[int]]) -> None:
        """Seed a row from another node's table (node-join bootstrap).

        Entries are offered through :meth:`consider` so the proximity
        preference and self-slot rules still apply.
        """
        for entry in row_entries:
            if entry is not None and entry != self.owner_id:
                self.consider(entry)
