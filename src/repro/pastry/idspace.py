"""Identifier-space arithmetic for the Pastry overlay and PAST.

Pastry assigns every node a 128-bit *nodeId* drawn (quasi-)uniformly from a
circular namespace ``[0, 2**128)``.  PAST assigns every file a 160-bit
*fileId* computed as the SHA-1 hash of the file's textual name, the owner's
public key and a random salt; only the 128 most significant bits of the
fileId are used for routing.

For routing purposes identifiers are treated as sequences of digits in base
``2**b`` (``b`` is a configuration parameter, typically 4), most significant
digit first.  This module provides the digit, prefix and ring-distance
primitives used by the leaf set, routing table and routing algorithm.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

#: Width of a nodeId (and of the routing portion of a fileId), in bits.
ID_BITS = 128

#: Size of the circular identifier namespace.
ID_SPACE = 1 << ID_BITS

#: Width of a PAST fileId, in bits (SHA-1 output).
FILE_ID_BITS = 160

#: Size of the fileId namespace.
FILE_ID_SPACE = 1 << FILE_ID_BITS


def num_digits(b: int) -> int:
    """Number of base-``2**b`` digits in a routing identifier.

    ``b`` must divide :data:`ID_BITS` evenly (true for the typical values
    1, 2, 4 and 8).
    """
    if b <= 0 or ID_BITS % b != 0:
        raise ValueError(f"b must be a positive divisor of {ID_BITS}, got {b}")
    return ID_BITS // b


def digit(ident: int, index: int, b: int) -> int:
    """Return the ``index``-th base-``2**b`` digit of ``ident``.

    Digit 0 is the most significant digit.
    """
    n = num_digits(b)
    if not 0 <= index < n:
        raise IndexError(f"digit index {index} out of range for b={b}")
    shift = (n - 1 - index) * b
    return (ident >> shift) & ((1 << b) - 1)


def digits(ident: int, b: int) -> tuple:
    """Return all base-``2**b`` digits of ``ident``, most significant first."""
    n = num_digits(b)
    mask = (1 << b) - 1
    return tuple((ident >> ((n - 1 - i) * b)) & mask for i in range(n))


def shared_prefix_length(a: int, x: int, b: int) -> int:
    """Length (in digits) of the longest common prefix of two identifiers."""
    diff = a ^ x
    if diff == 0:
        return num_digits(b)
    # Index of the highest set bit of the difference determines the first
    # digit at which the identifiers disagree.
    high_bit = diff.bit_length() - 1  # 0-based from the LSB
    bits_from_top = ID_BITS - 1 - high_bit
    return bits_from_top // b


def ring_distance(a: int, x: int) -> int:
    """Shortest distance between two identifiers on the circular namespace."""
    d = (a - x) % ID_SPACE
    return min(d, ID_SPACE - d)


def clockwise_distance(a: int, x: int) -> int:
    """Distance travelled going clockwise (increasing ids) from ``a`` to ``x``."""
    return (x - a) % ID_SPACE


def counterclockwise_distance(a: int, x: int) -> int:
    """Distance travelled going counterclockwise (decreasing ids) from ``a`` to ``x``."""
    return (a - x) % ID_SPACE


def is_strictly_closer(candidate: int, current: int, target: int) -> bool:
    """True if ``candidate`` is strictly closer to ``target`` than ``current``.

    Closeness is ring distance; exact ties are broken towards the
    numerically smaller identifier so that "numerically closest node" is a
    total order and every key has a unique owner.
    """
    dc = ring_distance(candidate, target)
    du = ring_distance(current, target)
    if dc != du:
        return dc < du
    return candidate < current


def closest_of(ids: Iterable[int], target: int) -> Optional[int]:
    """The identifier among ``ids`` closest to ``target`` (ties broken low).

    Returns ``None`` for an empty iterable.
    """
    best: Optional[int] = None
    for ident in ids:
        if best is None or is_strictly_closer(ident, best, target):
            best = ident
    return best


def sort_by_distance(ids: Iterable[int], target: int) -> list:
    """Sort identifiers by ring distance to ``target`` (ties broken low)."""
    return sorted(ids, key=lambda i: (ring_distance(i, target), i))


def node_id_from_public_key(public_key: bytes) -> int:
    """Derive a quasi-random 128-bit nodeId from a node's public key.

    The paper assigns nodeIds as the SHA-1 hash of the node's public key so
    that the assignment cannot be biased by a malicious operator; we keep
    the 128 most significant bits of the hash.
    """
    h = hashlib.sha1(public_key).digest()
    return int.from_bytes(h, "big") >> (FILE_ID_BITS - ID_BITS)


def file_id(name: str, owner_public_key: bytes, salt: int) -> int:
    """Compute the 160-bit fileId for an insert operation.

    The fileId is the SHA-1 hash of the file's textual name, the owner's
    public key and a salt.  Re-salting the same (name, owner) pair yields a
    fresh fileId, which is how PAST implements *file diversion*.
    """
    h = hashlib.sha1()
    h.update(name.encode("utf-8"))
    h.update(owner_public_key)
    h.update(salt.to_bytes(20, "big", signed=False))
    return int.from_bytes(h.digest(), "big")


def routing_key(fid: int) -> int:
    """The 128 most significant bits of a fileId, used as the routing key."""
    if not 0 <= fid < FILE_ID_SPACE:
        raise ValueError("fileId out of range")
    return fid >> (FILE_ID_BITS - ID_BITS)


def format_id(ident: int, b: int, groups: Optional[int] = None) -> str:
    """Render an identifier as base-``2**b`` digits (like Figure 1's base 4).

    ``groups`` optionally limits output to the first ``groups`` digits,
    which keeps log messages readable.
    """
    ds = digits(ident, b)
    if groups is not None:
        ds = ds[:groups]
    if b <= 4:
        return "".join(format(d, "x") for d in ds)
    return "-".join(str(d) for d in ds)
