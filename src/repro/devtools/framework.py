"""Lint framework: module loading, rule protocol, suppressions, engine.

The framework is deliberately small: a :class:`ModuleInfo` bundles one
parsed source file (path, dotted module name, AST, per-line suppression
table), a :class:`Rule` inspects one module at a time, and a
:class:`ProjectRule` sees the whole module set at once (for cross-file
properties such as protocol completeness).  :func:`run_rules` applies a
rule set and filters findings through ``# lint: ignore[...]`` comments.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: Per-line suppression comment: ``# lint: ignore`` silences every rule on
#: that physical line, ``# lint: ignore[rule-a,rule-b]`` only the named ones.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")


class LintError(Exception):
    """Raised for usage errors (unknown rule, unreadable path)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed source module plus everything rules need to inspect it."""

    path: str
    name: str
    source: str
    tree: ast.Module
    #: line number -> None (suppress all rules) or set of rule names.
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if Path(self.path).name == "__init__.py":
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    @property
    def subpackage(self) -> Optional[str]:
        """First component below ``repro`` (``repro.core.node`` -> ``core``).

        ``None`` for modules outside the ``repro`` namespace; top-level
        modules such as ``repro.cli`` map to their own stem.
        """
        parts = self.name.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        return parts[1]


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            table[lineno] = None
        else:
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            table[lineno] = names or None
    return table


def _module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at the ``repro`` package."""
    parts = list(path.parts)
    name_parts: List[str]
    if "repro" in parts:
        name_parts = parts[parts.index("repro"):]
    else:
        name_parts = [path.name]
    if name_parts[-1] == "__init__.py":
        name_parts = name_parts[:-1]
    elif name_parts[-1].endswith(".py"):
        name_parts[-1] = name_parts[-1][:-3]
    return ".".join(name_parts)


def module_from_source(source: str, name: str = "snippet", path: str = "<memory>") -> ModuleInfo:
    """Build a :class:`ModuleInfo` from an in-memory snippet (tests, tools)."""
    tree = ast.parse(source, filename=path)
    return ModuleInfo(
        path=path,
        name=name,
        source=source,
        tree=tree,
        suppressions=_parse_suppressions(source),
    )


def collect_modules(paths: Sequence[Union[str, Path]]) -> List[ModuleInfo]:
    """Load every ``.py`` file under the given files/directories.

    Files that fail to parse raise :class:`LintError` — a tree that cannot
    be parsed cannot be linted, and silently skipping it would report a
    clean run over broken code.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    modules: List[ModuleInfo] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raise LintError(f"{file}:{exc.lineno}: syntax error: {exc.msg}") from exc
        modules.append(
            ModuleInfo(
                path=str(file),
                name=_module_name_for(file),
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
        )
    return modules


class Rule:
    """One static check, applied to each module independently."""

    #: Unique kebab-case identifier, used in output and suppressions.
    name: str = ""
    #: One-line human description for ``--list-rules``.
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


class ProjectRule(Rule):
    """A check over the whole module set (cross-file properties)."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        raise NotImplementedError


def _suppressed(finding: Finding, by_path: Dict[str, ModuleInfo]) -> bool:
    module = by_path.get(finding.path)
    if module is None:
        return False
    if finding.line not in module.suppressions:
        return False
    names = module.suppressions[finding.line]
    return names is None or finding.rule in names


def run_rules(modules: Sequence[ModuleInfo], rules: Sequence[Rule]) -> List[Finding]:
    """Apply every rule, drop suppressed findings, and sort by location."""
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    for rule in rules:
        produced: Iterable[Finding]
        if isinstance(rule, ProjectRule):
            produced = rule.check_project(modules)
        else:
            produced = (f for module in modules for f in rule.check(module))
        findings.extend(f for f in produced if not _suppressed(f, by_path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ----------------------------------------------------- catalogue plumbing
#
# Every rule family (the determinism gate, perf, conc, wire) ships the
# same CLI surface: ``--select``/``--ignore`` name resolution, a
# committed accepted-debt baseline, and ``--changed`` incremental runs.
# The helpers below are that surface, implemented once; each front door
# keeps only its family-specific reporting.

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Baseline identity of a finding (stable across line drift)."""
    return f"{finding.rule}|{finding.path}|{finding.message}"


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted({finding_key(f) for f in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_baseline(path: str) -> set:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} is not a version-{BASELINE_VERSION} lint baseline"
        )
    return set(payload.get("findings", []))


def filter_baselined(
    findings: Sequence[Finding], path: Optional[str]
) -> Tuple[List[Finding], int]:
    """Split findings against a baseline: (new findings, baselined count)."""
    if not path:
        return list(findings), 0
    known = load_baseline(path)
    new = [f for f in findings if finding_key(f) not in known]
    return new, len(findings) - len(new)


def changed_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` that differ from git HEAD.

    Includes modified, added, renamed (new name) and untracked files.
    Deleted files and the old half of a rename are skipped explicitly —
    they are part of the diff but have nothing on disk to lint — and
    every git-reported name is anchored at the repository root, so the
    command works from a subdirectory too.
    """
    roots = [Path(p).resolve() for p in paths]

    def run_git(*args: str) -> List[str]:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise LintError(
                f"git {' '.join(args)} failed: {proc.stderr.strip()}"
            )
        return [line for line in proc.stdout.splitlines() if line]

    repo_root = Path(run_git("rev-parse", "--show-toplevel")[0])
    in_root = ("-C", str(repo_root))

    candidates = set()
    # --name-status over --name-only: a deleted file (D) or the old half
    # of a rename (R old new) must be dropped by *status*, not by racing
    # the filesystem — a stale name that happens to exist relative to
    # the current directory would otherwise be linted by accident.
    for line in run_git(*in_root, "diff", "--name-status", "-M", "HEAD", "--"):
        fields = line.split("\t")
        status = fields[0]
        if status.startswith("D") or len(fields) < 2:
            continue
        # For renames/copies (R###/C###) the last field is the new name.
        candidates.add(fields[-1])
    # -C keeps untracked discovery repo-wide and repo-root-relative even
    # when the linter runs from a subdirectory.
    candidates.update(run_git(*in_root, "ls-files", "--others", "--exclude-standard"))
    out = []
    for name in sorted(candidates):
        path = repo_root / name
        if path.suffix != ".py" or not path.is_file():
            continue
        resolved = path.resolve()
        if any(
            root == resolved or root in resolved.parents for root in roots
        ):
            # Report paths relative to the caller's cwd (matching the
            # paths a user would pass on the command line), falling back
            # to the absolute path when cwd is outside the repo.
            out.append(os.path.relpath(resolved))
    return out


def _rule_names(value: Union[None, str, Sequence[str]]) -> Optional[List[str]]:
    if value is None:
        return None
    parts = value.split(",") if isinstance(value, str) else list(value)
    return [part.strip() for part in parts if part and part.strip()]


def resolve_rules(
    rules: Sequence[Rule],
    select: Union[None, str, Sequence[str]] = None,
    ignore: Union[None, str, Sequence[str]] = None,
    extra: Sequence[Rule] = (),
) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` against a catalogue.

    ``rules`` is the catalogue's default set; ``extra`` rules are
    resolvable by name (for cross-catalogue selection) but never part of
    the default run.  Unknown names raise :class:`LintError`.
    """
    resolved = list(rules)
    by_name = {rule.name: rule for rule in resolved}
    for rule in extra:
        by_name[rule.name] = rule

    def _lookup(name: str) -> Rule:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise LintError(f"unknown rule {name!r} (known rules: {known})")
        return by_name[name]

    names = _rule_names(select)
    if names is not None:
        resolved = [_lookup(name) for name in names]
    ignored = _rule_names(ignore)
    if ignored:
        dropped = {_lookup(name).name for name in ignored}
        resolved = [rule for rule in resolved if rule.name not in dropped]
    return resolved


def add_catalogue_arguments(
    parser: argparse.ArgumentParser, family: str = "lint"
) -> None:
    """Register the argparse surface shared by every catalogue CLI."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help=f"files or directories to {family} (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: the full catalogue)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule names to skip (applied after --select)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in FILE; report only new ones",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="analyze only files changed vs. git HEAD under the given paths",
    )


def narrow_to_changed(paths: Sequence[str], changed: bool) -> Optional[List[str]]:
    """Apply ``--changed``: the paths to analyze, or None for a clean no-op."""
    if not changed:
        return list(paths)
    narrowed = changed_files(paths)
    return narrowed or None


def record_baseline(path: str, findings: Sequence[Finding]) -> str:
    """Write a baseline and return the human-readable confirmation line."""
    write_baseline(path, findings)
    noun = "finding" if len(findings) == 1 else "findings"
    return f"baseline written: {len(findings)} {noun} recorded in {path}"


# --------------------------------------------------------------- AST helpers


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted origin they were bound from.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from random import Random`` -> ``{"Random": "random.Random"}``;
    ``import os.path`` -> ``{"os": "os"}`` (attribute access goes through
    the top-level binding).  Relative imports are skipped — they never
    reach stdlib modules, which is all callers resolve against.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.default_rng`` -> ``numpy.random.default_rng``.

    Returns ``None`` when the expression does not bottom out in an
    imported (or builtin) name — e.g. a method on a local object.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    return ".".join([root] + list(reversed(parts)))


def local_definitions(tree: ast.Module) -> Set[str]:
    """Names defined by the module itself (defs, classes, assignments)."""
    defined: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                defined.add(node.target.id)
    return defined
