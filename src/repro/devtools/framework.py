"""Lint framework: module loading, rule protocol, suppressions, engine.

The framework is deliberately small: a :class:`ModuleInfo` bundles one
parsed source file (path, dotted module name, AST, per-line suppression
table), a :class:`Rule` inspects one module at a time, and a
:class:`ProjectRule` sees the whole module set at once (for cross-file
properties such as protocol completeness).  :func:`run_rules` applies a
rule set and filters findings through ``# lint: ignore[...]`` comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

#: Per-line suppression comment: ``# lint: ignore`` silences every rule on
#: that physical line, ``# lint: ignore[rule-a,rule-b]`` only the named ones.
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")


class LintError(Exception):
    """Raised for usage errors (unknown rule, unreadable path)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """A parsed source module plus everything rules need to inspect it."""

    path: str
    name: str
    source: str
    tree: ast.Module
    #: line number -> None (suppress all rules) or set of rule names.
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if Path(self.path).name == "__init__.py":
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    @property
    def subpackage(self) -> Optional[str]:
        """First component below ``repro`` (``repro.core.node`` -> ``core``).

        ``None`` for modules outside the ``repro`` namespace; top-level
        modules such as ``repro.cli`` map to their own stem.
        """
        parts = self.name.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            return None
        return parts[1]


def _parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            table[lineno] = None
        else:
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            table[lineno] = names or None
    return table


def _module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at the ``repro`` package."""
    parts = list(path.parts)
    name_parts: List[str]
    if "repro" in parts:
        name_parts = parts[parts.index("repro"):]
    else:
        name_parts = [path.name]
    if name_parts[-1] == "__init__.py":
        name_parts = name_parts[:-1]
    elif name_parts[-1].endswith(".py"):
        name_parts[-1] = name_parts[-1][:-3]
    return ".".join(name_parts)


def module_from_source(source: str, name: str = "snippet", path: str = "<memory>") -> ModuleInfo:
    """Build a :class:`ModuleInfo` from an in-memory snippet (tests, tools)."""
    tree = ast.parse(source, filename=path)
    return ModuleInfo(
        path=path,
        name=name,
        source=source,
        tree=tree,
        suppressions=_parse_suppressions(source),
    )


def collect_modules(paths: Sequence[Union[str, Path]]) -> List[ModuleInfo]:
    """Load every ``.py`` file under the given files/directories.

    Files that fail to parse raise :class:`LintError` — a tree that cannot
    be parsed cannot be linted, and silently skipping it would report a
    clean run over broken code.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    modules: List[ModuleInfo] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raise LintError(f"{file}:{exc.lineno}: syntax error: {exc.msg}") from exc
        modules.append(
            ModuleInfo(
                path=str(file),
                name=_module_name_for(file),
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
        )
    return modules


class Rule:
    """One static check, applied to each module independently."""

    #: Unique kebab-case identifier, used in output and suppressions.
    name: str = ""
    #: One-line human description for ``--list-rules``.
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


class ProjectRule(Rule):
    """A check over the whole module set (cross-file properties)."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        raise NotImplementedError


def _suppressed(finding: Finding, by_path: Dict[str, ModuleInfo]) -> bool:
    module = by_path.get(finding.path)
    if module is None:
        return False
    if finding.line not in module.suppressions:
        return False
    names = module.suppressions[finding.line]
    return names is None or finding.rule in names


def run_rules(modules: Sequence[ModuleInfo], rules: Sequence[Rule]) -> List[Finding]:
    """Apply every rule, drop suppressed findings, and sort by location."""
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    for rule in rules:
        produced: Iterable[Finding]
        if isinstance(rule, ProjectRule):
            produced = rule.check_project(modules)
        else:
            produced = (f for module in modules for f in rule.check(module))
        findings.extend(f for f in produced if not _suppressed(f, by_path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --------------------------------------------------------------- AST helpers


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the canonical dotted origin they were bound from.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from random import Random`` -> ``{"Random": "random.Random"}``;
    ``import os.path`` -> ``{"os": "os"}`` (attribute access goes through
    the top-level binding).  Relative imports are skipped — they never
    reach stdlib modules, which is all callers resolve against.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.default_rng`` -> ``numpy.random.default_rng``.

    Returns ``None`` when the expression does not bottom out in an
    imported (or builtin) name — e.g. a method on a local object.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    return ".".join([root] + list(reversed(parts)))


def local_definitions(tree: ast.Module) -> Set[str]:
    """Names defined by the module itself (defs, classes, assignments)."""
    defined: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                defined.add(node.target.id)
    return defined
