"""Concurrency-readiness analyzer for the real-network execution plane.

Built on the flow layer's interprocedural call graph and effect
fixpoints, this package proves (or itemises the debt preventing) three
properties of the engine-pure node logic:

* **atomicity** — no read-modify-write of shared state spans a
  suspension point without a confirming re-read (:mod:`.analysis`);
* **non-blocking** — no wall-clock sleeps, sync I/O, or busy-waits that
  would stall a single-threaded event loop (:mod:`.rules`);
* **seam conformance** — time and the network are reached only through
  the :class:`repro.core.transport.Transport` seam (:mod:`.rules`).

``python -m repro.devtools.conc`` (or the ``repro-conc`` entry point)
runs the catalogue and prints per-module readiness verdicts
(:mod:`.report`).
"""

from .analysis import ConcAnalysis, get_conc_analysis
from .report import readiness, render_readiness
from .rules import CONC_RULE_NAMES, ENGINE_PURE_MODULES, conc_rules

__all__ = [
    "CONC_RULE_NAMES",
    "ConcAnalysis",
    "ENGINE_PURE_MODULES",
    "conc_rules",
    "get_conc_analysis",
    "readiness",
    "render_readiness",
]
