"""Per-module concurrency-readiness verdicts.

Three verdicts, derived from the *full* finding set (baselined findings
still count — the baseline governs the CI exit code, not the module's
actual readiness):

* ``blocked`` — the module has seam or blocking findings.  Its logic is
  structurally tied to the in-process emulator (or would stall a real
  event loop) and cannot be lifted onto the real-network plane.
* ``conditionally-ready`` — only atomicity/reentrancy findings remain.
  The module runs on the real plane but carries interleaving hazards;
  each one is enumerated accepted debt.
* ``ready`` — no findings.  The module's handlers are atomic with
  respect to every suspension point the analyzer can see.

The report also lists, per public handler that reaches the transport,
its transitive same-object write footprint — the state an interleaved
activation could observe mid-update.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..framework import Finding, ModuleInfo
from .analysis import ConcAnalysis
from .rules import ENGINE_PURE_MODULES

VERDICT_READY = "ready"
VERDICT_CONDITIONAL = "conditionally-ready"
VERDICT_BLOCKED = "blocked"

#: Rules whose presence blocks a module outright.
_BLOCKING_RULES = frozenset({"conc-seam", "conc-blocking"})
#: Rules that downgrade a module to conditionally-ready.
_HAZARD_RULES = frozenset({"conc-atomicity", "conc-reentrancy"})


def readiness(
    modules: Sequence[ModuleInfo],
    findings: Sequence[Finding],
    analysis: ConcAnalysis,
) -> Dict[str, dict]:
    """Verdict + handler footprints for every engine-pure module present."""
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    out: Dict[str, dict] = {}
    for module in modules:
        if module.name not in ENGINE_PURE_MODULES:
            continue
        own = by_path.get(module.path, [])
        rules = {f.rule for f in own}
        if rules & _BLOCKING_RULES:
            verdict = VERDICT_BLOCKED
        elif rules & _HAZARD_RULES:
            verdict = VERDICT_CONDITIONAL
        else:
            verdict = VERDICT_READY
        handlers = {}
        for qual, facts in analysis.flow.facts.items():
            info = facts.info
            if info.module is not module or info.is_module_body:
                continue
            if info.name.startswith("_") or info.class_name is None:
                continue
            if qual not in analysis.suspending:
                continue
            short = qual[len(module.name) + 1:]
            handlers[short] = analysis.footprint(qual)
        out[module.name] = {
            "verdict": verdict,
            "findings": {
                rule: sum(1 for f in own if f.rule == rule)
                for rule in sorted(rules)
            },
            "suspending_handlers": {
                name: handlers[name] for name in sorted(handlers)
            },
        }
    return out


def render_readiness(table: Dict[str, dict]) -> List[str]:
    """Text lines for the readiness section of the CLI report."""
    lines = ["", "concurrency readiness (engine-pure modules):"]
    for name in sorted(table):
        entry = table[name]
        counts = ", ".join(
            f"{rule}={count}" for rule, count in sorted(entry["findings"].items())
        )
        suffix = f" ({counts})" if counts else ""
        lines.append(f"  {entry['verdict']:<19} {name}{suffix}")
    return lines
