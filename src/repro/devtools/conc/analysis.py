"""Concurrency-readiness analysis: atomicity across suspension points.

The simulator runs every handler to completion, so the codebase is full
of latent check-then-act sequences that are safe today only because
nothing can interleave.  The real-network execution plane breaks that
assumption at exactly one kind of program point: a call that reaches the
transport (an RPC send, a probe, a route).  Under a concurrent transport
each such call is a **suspension point** — other handlers may run while
the reply is in flight, so any shared state read *before* the call is
stale *after* it.

The analysis therefore looks for the classic TOCTOU shape, per function:

1. a read of shared state ``K`` (an attribute chain rooted in ``self``,
   a parameter, or a non-fresh local) happens before a suspension point;
2. a write of a *prefix-compatible* key (one chain is a prefix of the
   other) happens after that suspension point;
3. and no **confirming re-read** of a compatible key sits between the
   *last* suspension preceding the write and the write itself.

A confirming re-read must be a direct attribute chain (no alias
indirection — ``plan = self.store.fault_plan`` does not confirm
anything) and must appear in *test position*: an ``if``/``while`` test,
an ``assert``, a ternary condition, or a ``boolop``/comparison operand
inside one.  Binding the stale value to a local and branching on the
local later proves nothing about the post-suspension world; re-reading
the structure inside the branch condition does.  ``x += 1`` style
augmented writes are exempt — counters commute.

Loop bodies are scanned twice back to back so a read at the top of an
iteration is seen as preceding the suspension of the *previous*
iteration (wrap-around hazards).

Everything is flow-insensitive across branches (statements are
linearised in source order), which over-reports — the committed
baseline captures the accepted debt, and the planted-fixture tests pin
the calibrated behaviour on the repaired production paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..framework import ModuleInfo
from ..flow.analysis import EFFECT_MUTATE, FlowAnalysis, get_analysis
from ..flow.callgraph import MUTATOR_METHODS, FunctionInfo, iter_own_nodes

#: Attribute-call names that reach the network/fault plane directly.
#: Any call transitively reaching one of these is a suspension point.
SUSPEND_PRIMITIVES = frozenset({
    "record_rpc", "rpc_lost", "probe_lost", "transmit",
    "send", "probe", "route",
})

#: How many attribute components a state key keeps beyond its root.
_KEY_DEPTH = 2


def _chain_of(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``self.store.pointers[fid]`` -> ``("self", "store", "pointers")``.

    Subscripts are transparent (indexing selects within the same shared
    region); a chain rooted in a call result returns ``None``.
    """
    parts: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain = (node.id, *reversed(parts))
        return chain[: _KEY_DEPTH + 1]
    return None


def _compatible(a: Tuple[str, ...], b: Tuple[str, ...]) -> bool:
    """Symmetric prefix compatibility: one key selects within the other."""
    n = min(len(a), len(b))
    return a[:n] == b[:n]


@dataclass(frozen=True)
class Hazard:
    """One unconfirmed read-modify-write across a suspension point."""

    qualname: str       #: function containing the write
    key: str            #: dotted state key, e.g. ``self.last_heard``
    path: str
    line: int           #: write site (first witness)


@dataclass
class _Event:
    kind: str                      # "read" | "write" | "suspend" | "confirm"
    keys: Tuple[Tuple[str, ...], ...]
    line: int


@dataclass
class _FuncConc:
    """Per-function concurrency facts."""

    info: FunctionInfo
    suspends: bool = False
    #: attribute chains (minus the ``self`` root) written directly.
    self_writes: Set[Tuple[str, ...]] = field(default_factory=set)


class ConcAnalysis:
    """Suspension-point atomicity analysis over one module set."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.flow: FlowAnalysis = get_analysis(modules)
        self.suspending: Set[str] = set()
        self._func: Dict[str, _FuncConc] = {}
        self.hazards: List[Hazard] = []
        self._collect_function_facts()
        self._fixpoint_suspension()
        self._scan_all()

    # ------------------------------------------------------------ extraction

    def _collect_function_facts(self) -> None:
        for qual, facts in self.flow.facts.items():
            fc = _FuncConc(info=facts.info)
            for node in iter_own_nodes(facts.info):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in SUSPEND_PRIMITIVES:
                        fc.suspends = True
                    if node.func.attr in MUTATOR_METHODS:
                        chain = _chain_of(node.func.value)
                        if chain and chain[0] == "self" and len(chain) > 1:
                            fc.self_writes.add(chain[1:])
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (
                        node.targets if isinstance(node, (ast.Assign, ast.Delete))
                        else [node.target]
                    )
                    for target in targets:
                        chain = _chain_of(target)
                        if chain and chain[0] == "self" and len(chain) > 1:
                            fc.self_writes.add(chain[1:])
            self._func[qual] = fc

    def _fixpoint_suspension(self) -> None:
        """Propagate "reaches the transport" along resolved call edges."""
        for qual, fc in self._func.items():
            if fc.suspends:
                self.suspending.add(qual)
        changed = True
        while changed:
            changed = False
            for qual, facts in self.flow.facts.items():
                if qual in self.suspending:
                    continue
                for callee, _line in facts.calls:
                    if callee != qual and callee in self.suspending:
                        self.suspending.add(qual)
                        changed = True
                        break

    def function_suspends(self, qual: str) -> bool:
        return qual in self.suspending

    def footprint(self, qual: str) -> List[str]:
        """Transitive same-object write footprint of one function.

        Attribute names the function writes on ``self``, directly or
        through same-class helper calls — the state a re-entrant or
        interleaved activation of the handler could corrupt.
        """
        out: Set[Tuple[str, ...]] = set()
        seen: Set[str] = set()
        stack = [qual]
        base = self._func.get(qual)
        cls = base.info.class_name if base else None
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fc = self._func.get(current)
            facts = self.flow.facts.get(current)
            if fc is None or facts is None:
                continue
            if fc.info.class_name == cls:
                out.update(fc.self_writes)
            for node in iter_own_nodes(facts.info):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                ):
                    for callee, _line in facts.calls:
                        if callee.rsplit(".", 1)[-1] == node.func.attr:
                            stack.append(callee)
        return sorted(".".join(chain) for chain in out)

    # ------------------------------------------------------------- event scan

    def _scan_all(self) -> None:
        for qual in self.flow.facts:
            if qual in self.suspending:
                self._scan_function(qual)
        self.hazards.sort(key=lambda h: (h.path, h.line, h.key, h.qualname))

    def _scan_function(self, qual: str) -> None:
        facts = self.flow.facts[qual]
        info = facts.info
        if info.is_module_body or info.name == "__init__":
            return
        events: List[_Event] = []
        aliases: Dict[str, Tuple[str, ...]] = {}
        shared_locals = facts.assigned - facts.fresh_locals
        params = info.param_names

        def is_shared_root(root: str) -> bool:
            if root in ("self", "cls"):
                return True
            if root in params:
                return True
            return root in shared_locals

        def keyset(chain: Optional[Tuple[str, ...]]) -> Tuple[Tuple[str, ...], ...]:
            """Literal key plus its alias translation, shared roots only."""
            if chain is None:
                return ()
            keys: List[Tuple[str, ...]] = []
            if is_shared_root(chain[0]):
                keys.append(chain)
            target = aliases.get(chain[0])
            if target is not None:
                keys.append((target + chain[1:])[: _KEY_DEPTH + 1])
            # A bare ``self`` receiver names the whole object, not a state
            # region; keeping it would make every method call conflict
            # with every attribute write.
            return tuple(k for k in keys if k not in (("self",), ("cls",)))

        def literal_key(chain: Optional[Tuple[str, ...]]) -> Tuple[Tuple[str, ...], ...]:
            if chain is None or len(chain) < 2 or not is_shared_root(chain[0]):
                return ()
            return (chain,)

        def emit_reads(expr: ast.AST, in_test: bool) -> None:
            """READ (and, in test position, CONFIRM) events for one expr."""
            for node in ast.walk(expr):
                chain = None
                if isinstance(node, ast.Call):
                    if isinstance(node.func, ast.Attribute):
                        chain = _chain_of(node.func.value)
                elif isinstance(node, ast.Attribute):
                    chain = _chain_of(node)
                if chain is None:
                    continue
                keys = keyset(chain)
                if keys:
                    events.append(_Event("read", keys, node.lineno))
                if in_test:
                    direct = literal_key(chain)
                    if direct:
                        events.append(_Event("confirm", direct, node.lineno))

        def call_write_keys(call: ast.Call) -> Tuple[Tuple[str, ...], ...]:
            """Keys a call site may write, composed through its callees."""
            if not isinstance(call.func, ast.Attribute):
                return ()
            attr = call.func.attr
            if attr in SUSPEND_PRIMITIVES:
                return ()  # the transport owns its own internals
            receiver = _chain_of(call.func.value)
            if attr in MUTATOR_METHODS:
                return keyset(receiver)
            targets, _external = self.flow.index.resolve_call(call, info)
            if not targets or receiver is None:
                return ()
            recv_keys = keyset(receiver)
            if not recv_keys:
                return ()
            keys: Set[Tuple[str, ...]] = set()
            for callee in targets:
                fc = self._func.get(callee)
                if fc is None:
                    continue
                if fc.self_writes:
                    for written in fc.self_writes:
                        for base in recv_keys:
                            keys.add((base + written)[: _KEY_DEPTH + 1])
                elif EFFECT_MUTATE in self.flow.effects.get(callee, {}):
                    keys.update(recv_keys)
            return tuple(sorted(keys))

        def visit_stmt(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                return
            if isinstance(stmt, (ast.If, ast.While)):
                emit_reads(stmt.test, in_test=True)
                emit_suspends(stmt.test)
                bodies = [stmt.body, stmt.orelse]
                repeat = 2 if isinstance(stmt, ast.While) else 1
                for body in bodies:
                    for _ in range(repeat):
                        for sub in body:
                            visit_stmt(sub)
                return
            if isinstance(stmt, ast.For):
                emit_reads(stmt.iter, in_test=False)
                emit_suspends(stmt.iter)
                for _ in range(2):
                    for sub in stmt.body:
                        visit_stmt(sub)
                for sub in stmt.orelse:
                    visit_stmt(sub)
                return
            if isinstance(stmt, (ast.With, ast.Try)):
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        visit_stmt(sub)
                    elif isinstance(sub, ast.withitem):
                        emit_reads(sub.context_expr, in_test=False)
                        emit_suspends(sub.context_expr)
                    elif isinstance(sub, ast.ExceptHandler):
                        for inner in sub.body:
                            visit_stmt(inner)
                return
            if isinstance(stmt, ast.Assert):
                emit_reads(stmt.test, in_test=True)
                emit_suspends(stmt.test)
                return
            if isinstance(stmt, ast.Assign):
                emit_reads(stmt.value, in_test=False)
                emit_suspends(stmt.value)
                for target in stmt.targets:
                    chain = _chain_of(target)
                    if not isinstance(target, ast.Name):
                        keys = keyset(chain)
                        if keys:
                            events.append(_Event("write", keys, stmt.lineno))
                # Alias tracking: ``x = <chain>`` / ``x = obj.method(...)``.
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    name = stmt.targets[0].id
                    value = stmt.value
                    alias: Optional[Tuple[str, ...]] = None
                    if isinstance(value, (ast.Attribute, ast.Subscript)):
                        alias = _chain_of(value)
                    elif isinstance(value, ast.Call) and isinstance(
                        value.func, ast.Attribute
                    ):
                        alias = _chain_of(value.func.value)
                    elif isinstance(value, ast.Name):
                        alias = aliases.get(value.id, (value.id,))
                    if alias is not None and alias[0] != name:
                        resolved = aliases.get(alias[0])
                        if resolved is not None:
                            alias = (resolved + alias[1:])[: _KEY_DEPTH + 1]
                        if is_shared_root(alias[0]):
                            aliases[name] = alias
                            return
                    aliases.pop(name, None)
                return
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    emit_reads(stmt.value, in_test=False)
                    emit_suspends(stmt.value)
                    if not isinstance(stmt.target, ast.Name):
                        keys = keyset(_chain_of(stmt.target))
                        if keys:
                            events.append(_Event("write", keys, stmt.lineno))
                return
            if isinstance(stmt, ast.AugAssign):
                # Commutative counter updates are exempt by design.
                emit_reads(stmt.value, in_test=False)
                emit_suspends(stmt.value)
                return
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    keys = keyset(_chain_of(target))
                    if keys:
                        events.append(_Event("write", keys, stmt.lineno))
                return
            if isinstance(stmt, (ast.Expr, ast.Return)):
                value = stmt.value
                if value is None:
                    return
                emit_reads(value, in_test=False)
                emit_suspends(value)
                return
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    visit_stmt(sub)
                elif isinstance(sub, ast.expr):
                    emit_reads(sub, in_test=False)
                    emit_suspends(sub)

        def emit_suspends(expr: ast.AST) -> None:
            """SUSPEND and composed-WRITE events for calls inside ``expr``."""
            nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            stack = [expr]
            while stack:
                node = stack.pop()
                if isinstance(node, nested):
                    continue
                if isinstance(node, ast.Call):
                    # A callee's writes are attributed *before* its own
                    # suspensions: a confirm ahead of the call blesses
                    # the delegation, and the callee's internal
                    # post-suspension writes are scanned in the callee.
                    keys = call_write_keys(node)
                    if keys:
                        events.append(_Event("write", keys, node.lineno))
                    if self._call_suspends(node, info):
                        events.append(_Event("suspend", (), node.lineno))
                for child in ast.iter_child_nodes(node):
                    stack.append(child)

        for stmt in info.node.body:
            visit_stmt(stmt)
        self._detect(qual, info, events)

    def _call_suspends(self, call: ast.Call, info: FunctionInfo) -> bool:
        if isinstance(call.func, ast.Attribute) and call.func.attr in SUSPEND_PRIMITIVES:
            return True
        targets, _external = self.flow.index.resolve_call(call, info)
        return any(t in self.suspending for t in targets)

    def _detect(self, qual: str, info: FunctionInfo, events: List[_Event]) -> None:
        suspend_positions = [i for i, e in enumerate(events) if e.kind == "suspend"]
        if not suspend_positions:
            return
        flagged: Dict[str, int] = {}
        for w, event in enumerate(events):
            if event.kind != "write":
                continue
            preceding = [s for s in suspend_positions if s < w]
            if not preceding:
                continue
            s_last = preceding[-1]
            for key in event.keys:
                hazard = any(
                    events[r].kind == "read"
                    and r < s_last
                    and any(_compatible(key, rk) for rk in events[r].keys)
                    for r in range(s_last)
                )
                if not hazard:
                    continue
                confirmed = any(
                    events[c].kind == "confirm"
                    and any(
                        _compatible(wk, ck)
                        for wk in event.keys
                        for ck in events[c].keys
                    )
                    for c in range(s_last + 1, w)
                )
                if confirmed:
                    break
                key_str = ".".join(key)
                if key_str not in flagged or event.line < flagged[key_str]:
                    flagged[key_str] = event.line
                break
        short = qual
        if qual.startswith(info.module.name + "."):
            short = qual[len(info.module.name) + 1:]
        for key_str in sorted(flagged):
            self.hazards.append(
                Hazard(
                    qualname=short,
                    key=key_str,
                    path=info.module.path,
                    line=flagged[key_str],
                )
            )


_CACHE: List[Tuple[Tuple[int, ...], ConcAnalysis]] = []


def get_conc_analysis(modules: Sequence[ModuleInfo]) -> ConcAnalysis:
    """One shared analysis per module set (keyed by object identity)."""
    key = tuple(id(m) for m in modules)
    for cached_key, analysis in _CACHE:
        if cached_key == key:
            return analysis
    analysis = ConcAnalysis(modules)
    del _CACHE[:]
    _CACHE.append((key, analysis))
    return analysis
