"""``repro-conc`` / ``python -m repro.devtools.conc`` — the conc front door.

Runs the concurrency-readiness catalogue (atomicity, blocking,
reentrancy, seam conformance) over the given paths and prints the
findings plus per-module readiness verdicts for the engine-pure set.
``--baseline`` / ``--write-baseline`` / ``--changed`` work exactly as in
``repro-lint``: CI runs against the committed accepted-debt baseline
(``benchmarks/conc_baseline.json``) and fails on any *new* finding, and
separately requires ``--select conc-seam`` to be clean with no baseline
at all.

Exit status follows ``repro-lint``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..framework import (
    LintError,
    add_catalogue_arguments,
    collect_modules,
    filter_baselined,
    narrow_to_changed,
    record_baseline,
    resolve_rules,
    run_rules,
)
from .analysis import get_conc_analysis
from .report import readiness, render_readiness
from .rules import conc_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-conc",
        description=(
            "Concurrency-safety analyzer: atomicity across suspension "
            "points, blocking calls, reentrancy, and Transport-seam "
            "conformance for the real-network execution plane."
        ),
    )
    add_catalogue_arguments(parser, family="analyze")
    parser.add_argument(
        "--no-report", action="store_true",
        help="omit the per-module readiness section",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rules = resolve_rules(conc_rules(), args.select, args.ignore)
        if args.list_rules:
            for rule in rules:
                print(f"{rule.name}: {rule.description}")
            return 0
        paths: Optional[List[str]] = narrow_to_changed(args.paths, args.changed)
        if paths is None:
            print("no changed python files to analyze")
            return 0
        modules = collect_modules(paths)
        findings = run_rules(modules, rules)
        if args.write_baseline:
            print(record_baseline(args.write_baseline, findings))
            return 0
        new, _ = filter_baselined(findings, args.baseline)
        table = None
        if not args.no_report:
            # Readiness is computed from the FULL finding set: the
            # baseline governs the exit code, not a module's verdict.
            table = readiness(modules, findings, get_conc_analysis(modules))
        if args.format == "json":
            payload = {
                "findings": [f.to_dict() for f in new],
                "count": len(new),
                "baselined": len(findings) - len(new),
            }
            if table is not None:
                payload["readiness"] = table
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for finding in new:
                print(finding.render())
            noun = "finding" if len(new) == 1 else "findings"
            baselined = len(findings) - len(new)
            suffix = f" ({baselined} baselined)" if baselined else ""
            print(f"{len(new)} new {noun} in {len(modules)} modules{suffix}")
            if table is not None:
                for line in render_readiness(table):
                    print(line)
        return 1 if new else 0
    except LintError as exc:
        print(f"conc: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
