"""``repro-conc`` / ``python -m repro.devtools.conc`` — the conc front door.

Runs the concurrency-readiness catalogue (atomicity, blocking,
reentrancy, seam conformance) over the given paths and prints the
findings plus per-module readiness verdicts for the engine-pure set.
``--baseline`` / ``--write-baseline`` / ``--changed`` work exactly as in
``repro-lint``: CI runs against the committed accepted-debt baseline
(``benchmarks/conc_baseline.json``) and fails on any *new* finding, and
separately requires ``--select conc-seam`` to be clean with no baseline
at all.

Exit status follows ``repro-lint``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..framework import LintError, Rule, collect_modules, run_rules
from ..lint import changed_files, finding_key, load_baseline, write_baseline
from .analysis import get_conc_analysis
from .report import readiness, render_readiness
from .rules import conc_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-conc",
        description=(
            "Concurrency-safety analyzer: atomicity across suspension "
            "points, blocking calls, reentrancy, and Transport-seam "
            "conformance for the real-network execution plane."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: all conc rules)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the conc rules and exit",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in FILE; report only new ones",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="analyze only files changed vs. git HEAD under the given paths",
    )
    parser.add_argument(
        "--no-report", action="store_true",
        help="omit the per-module readiness section",
    )
    return parser


def _selected_rules(args: argparse.Namespace) -> List[Rule]:
    rules = conc_rules()
    by_name = {rule.name: rule for rule in rules}

    def _lookup(name: str) -> Rule:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise LintError(f"unknown rule {name!r} (known rules: {known})")
        return by_name[name]

    if args.select:
        names = [n.strip() for n in args.select.split(",") if n.strip()]
        rules = [_lookup(name) for name in names]
    if args.ignore:
        names = [n.strip() for n in args.ignore.split(",") if n.strip()]
        dropped = {_lookup(name).name for name in names}
        rules = [rule for rule in rules if rule.name not in dropped]
    return rules


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rules = _selected_rules(args)
        if args.list_rules:
            for rule in rules:
                print(f"{rule.name}: {rule.description}")
            return 0
        paths: List[str] = args.paths
        if args.changed:
            paths = changed_files(paths)
            if not paths:
                print("no changed python files to analyze")
                return 0
        modules = collect_modules(paths)
        findings = run_rules(modules, rules)
        if args.write_baseline:
            write_baseline(args.write_baseline, findings)
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"baseline written: {len(findings)} {noun} recorded "
                  f"in {args.write_baseline}")
            return 0
        new = findings
        if args.baseline:
            known = load_baseline(args.baseline)
            new = [f for f in findings if finding_key(f) not in known]
        table = None
        if not args.no_report:
            # Readiness is computed from the FULL finding set: the
            # baseline governs the exit code, not a module's verdict.
            table = readiness(modules, findings, get_conc_analysis(modules))
        if args.format == "json":
            payload = {
                "findings": [f.to_dict() for f in new],
                "count": len(new),
                "baselined": len(findings) - len(new),
            }
            if table is not None:
                payload["readiness"] = table
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for finding in new:
                print(finding.render())
            noun = "finding" if len(new) == 1 else "findings"
            baselined = len(findings) - len(new)
            suffix = f" ({baselined} baselined)" if baselined else ""
            print(f"{len(new)} new {noun} in {len(modules)} modules{suffix}")
            if table is not None:
                for line in render_readiness(table):
                    print(line)
        return 1 if new else 0
    except LintError as exc:
        print(f"conc: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
