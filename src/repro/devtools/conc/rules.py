"""The concurrency-readiness checks packaged as lint rules.

Four rules in their own catalogue (:func:`conc_rules`), mirroring the
perf catalogue's contract: resolvable by name through
``repro.devtools.rules.get_rules`` but never part of ``all_rules()`` —
the determinism gate stays a zero-findings gate, while conc findings
are tracked against their own committed accepted-debt baseline
(``benchmarks/conc_baseline.json``) and CI fails only on *new* ones.

Finding messages deliberately contain no line numbers: the baseline key
is ``rule|path|message``, so a finding survives unrelated edits to the
same file and disappears exactly when the hazard itself is fixed.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..framework import Finding, ModuleInfo, ProjectRule, Rule, import_aliases, qualified_name
from ..flow.analysis import EFFECT_MUTATE
from ..flow.callgraph import SCHEDULE_METHODS
from .analysis import get_conc_analysis

#: Modules the analyzer certifies for the real-network execution plane:
#: pure node/storage logic that must reach time and the network only
#: through the ``Transport`` seam.  ``repro.pastry.network`` and
#: ``repro.core.network`` are deliberately absent — they are the
#: in-process emulator *below* the seam (the sim-backed Transport is
#: implemented in terms of them), not logic that ships to a real node.
ENGINE_PURE_MODULES = (
    "repro.core.cache",
    "repro.core.integrity",
    "repro.core.node",
    "repro.core.storage",
    "repro.pastry.idspace",
    "repro.pastry.keepalive",
    "repro.pastry.leafset",
    "repro.pastry.node",
    "repro.pastry.routingtable",
)

#: External calls that block the OS thread (poison under an event loop).
_BLOCKING_CALLS = {
    "time.sleep": "wall-clock sleep blocks the event loop",
    "socket.socket": "raw socket I/O blocks the event loop",
    "socket.create_connection": "raw socket I/O blocks the event loop",
    "subprocess.run": "subprocess call blocks the event loop",
    "subprocess.call": "subprocess call blocks the event loop",
    "subprocess.check_call": "subprocess call blocks the event loop",
    "subprocess.check_output": "subprocess call blocks the event loop",
    "subprocess.Popen": "subprocess call blocks the event loop",
    "os.system": "subprocess call blocks the event loop",
    "input": "console input blocks the event loop",
}

#: Engine subpackages where synchronous file I/O is also a finding
#: (disk access must go through the storage abstraction).
_NO_FILE_IO_SUBPACKAGES = ("pastry", "core")

#: Packages *below* the Transport seam, excluded from the whole conc
#: catalogue.  ``repro.net`` is the real-network execution plane: it
#: owns actual sockets, executor threads and per-node locks, so its
#: concurrency is managed with OS primitives the static suspension
#: model cannot reason about — the same rationale that keeps
#: ``repro.core.network``/``repro.pastry.network`` (the in-process
#: emulator) out of ``ENGINE_PURE_MODULES``.  The catalogue certifies
#: engine logic *above* the seam; the plane below it is validated by
#: the cross-engine differential oracle instead.
BELOW_SEAM_PACKAGES = ("repro.net",)


def _is_engine_pure(module: ModuleInfo) -> bool:
    return module.name in ENGINE_PURE_MODULES


def _is_below_seam(module: ModuleInfo) -> bool:
    return any(
        module.name == pkg or module.name.startswith(pkg + ".")
        for pkg in BELOW_SEAM_PACKAGES
    )


def _above_seam(modules: Sequence[ModuleInfo]) -> List[ModuleInfo]:
    return [m for m in modules if not _is_below_seam(m)]


class ConcAtomicityRule(ProjectRule):
    """Unconfirmed read-modify-write across a suspension point."""

    name = "conc-atomicity"
    description = (
        "shared state read before a call that reaches the transport and "
        "written after it, with no confirming re-read in test position "
        "between the last suspension and the write"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        # Below-seam modules are dropped *before* analysis: leaving them
        # in would let the name-based call graph thread engine cycles
        # through the transport implementation's own send/route/dispatch
        # methods, manufacturing hazards that cannot occur above the seam.
        analysis = get_conc_analysis(_above_seam(modules))
        for hazard in analysis.hazards:
            yield Finding(
                rule=self.name,
                path=hazard.path,
                line=hazard.line,
                message=(
                    f"{hazard.qualname}: read-modify-write of "
                    f"'{hazard.key}' spans a suspension point; re-read it "
                    "in test position after the suspension before writing"
                ),
            )


class ConcBlockingRule(Rule):
    """OS-blocking calls and suspension-free busy-wait loops."""

    name = "conc-blocking"
    description = (
        "wall-clock sleeps, sync socket/subprocess/file I/O, and "
        "unbounded while-loops with no exit: each stalls every other "
        "handler on the real-network event loop"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if _is_below_seam(module):
            return
        aliases = import_aliases(module.tree)
        engine = module.subpackage in _NO_FILE_IO_SUBPACKAGES
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = qualified_name(node.func, aliases)
                if dotted in _BLOCKING_CALLS:
                    yield self.finding(
                        module, node, f"{dotted}(): {_BLOCKING_CALLS[dotted]}"
                    )
                elif dotted == "open" and engine:
                    yield self.finding(
                        module, node,
                        "open(): engine code must not touch the "
                        "filesystem directly; go through the storage layer",
                    )
            elif isinstance(node, ast.While):
                if self._unbounded(node):
                    yield self.finding(
                        module, node,
                        "while-loop with a constant-true test and no "
                        "break/return/raise: busy-wait that never yields",
                    )

    @staticmethod
    def _unbounded(node: ast.While) -> bool:
        test = node.test
        constant_true = isinstance(test, ast.Constant) and bool(test.value)
        if not constant_true:
            return False
        nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        stack: List[ast.AST] = list(node.body)
        while stack:
            sub = stack.pop()
            if isinstance(sub, nested):
                continue
            if isinstance(sub, (ast.Break, ast.Return, ast.Raise)):
                return False
            # A nested loop owns its own break statements.
            if isinstance(sub, (ast.For, ast.While)):
                stack.extend(sub.orelse)
                for inner in ast.walk(sub):
                    if isinstance(inner, (ast.Return, ast.Raise)):
                        return False
                continue
            stack.extend(ast.iter_child_nodes(sub))
        return True


class ConcReentrancyRule(ProjectRule):
    """A mutating handler that can transitively re-enter itself."""

    name = "conc-reentrancy"
    description = (
        "suspending function reachable from its own callees while "
        "mutating shared state: under a concurrent transport the inner "
        "activation observes the outer one's partial writes"
    )

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        modules = _above_seam(modules)
        analysis = get_conc_analysis(modules)
        flow = analysis.flow
        paths = {m.path for m in modules}
        for qual, facts in flow.facts.items():
            info = facts.info
            if info.is_module_body or info.module.path not in paths:
                continue
            # Re-entry needs a suspension for the inner activation to
            # start during the outer one; run-to-completion functions
            # cannot interleave with themselves.
            if qual not in analysis.suspending:
                continue
            if EFFECT_MUTATE not in facts.direct:
                continue
            cycle_via: Optional[str] = None
            for callee, _line in facts.calls:
                if callee == qual:
                    continue
                if qual in flow.reachable_from(callee):
                    cycle_via = callee
                    break
            if cycle_via is None:
                continue
            short = qual
            if qual.startswith(info.module.name + "."):
                short = qual[len(info.module.name) + 1:]
            via = cycle_via.rsplit(".", 1)[-1]
            yield Finding(
                rule=self.name,
                path=info.module.path,
                line=info.lineno,
                message=(
                    f"{short}: mutates shared state and is re-enterable "
                    f"through its call to {via}(); guard against "
                    "re-entry or make the mutation idempotent"
                ),
            )


class ConcSeamRule(ProjectRule):
    """Engine-pure modules reach time/network only through the seam.

    The ``Transport`` protocol (:mod:`repro.core.transport`) is the one
    doorway from node logic to clocks, timers, routing and RPC.  Logic
    that bypasses it — importing the simulator at runtime, scheduling on
    a raw sim handle, reading ``sim.now``, or invoking the fault plane's
    primitives directly — cannot be lifted onto a real network without
    rewriting, so each bypass is a finding and the module is *blocked*.
    """

    name = "conc-seam"
    description = (
        "engine-pure module bypasses the Transport seam (runtime "
        "simulator import, raw sim scheduling, direct sim clock read, "
        "or direct network-primitive call)"
    )

    #: Fault/stat-plane primitives the transport wraps; node logic calling
    #: them directly is tied to the in-process emulator.
    _PRIMITIVES = frozenset({"record_rpc", "rpc_lost", "probe_lost", "transmit"})

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        for module in modules:
            if _is_engine_pure(module):
                yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        guarded = self._type_checking_imports(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if node in guarded:
                    continue
                for name in self._imported_modules(module, node):
                    if name.startswith("repro.netsim.eventsim"):
                        yield self.finding(
                            module, node,
                            "runtime import of the simulator "
                            "(repro.netsim.eventsim); accept a Transport "
                            "instead (TYPE_CHECKING-only imports are fine)",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = self._receiver_parts(node.func.value)
                if attr in SCHEDULE_METHODS and "transport" not in receiver:
                    yield self.finding(
                        module, node,
                        f".{attr}() on a non-transport receiver: timers "
                        "and events must be scheduled through the "
                        "Transport seam",
                    )
                elif attr in self._PRIMITIVES:
                    yield self.finding(
                        module, node,
                        f".{attr}() is a sub-seam network primitive; use "
                        "transport.send()/transport.probe() instead",
                    )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "EventSimulator":
                    yield self.finding(
                        module, node,
                        "EventSimulator(...) constructed in engine code; "
                        "the execution plane owns the clock",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "now":
                if isinstance(node.ctx, ast.Load):
                    receiver = self._receiver_parts(node.value)
                    if "sim" in receiver:
                        yield self.finding(
                            module, node,
                            "raw simulator clock read (.sim.now); use "
                            "transport.now()",
                        )

    @staticmethod
    def _receiver_parts(node: ast.AST) -> Tuple[str, ...]:
        parts: List[str] = []
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
        return tuple(reversed(parts))

    @staticmethod
    def _imported_modules(module: ModuleInfo, node: ast.AST) -> List[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        assert isinstance(node, ast.ImportFrom)
        if node.level == 0:
            base = node.module or ""
        else:
            package_parts = module.package.split(".") if module.package else []
            keep = len(package_parts) - (node.level - 1)
            if keep < 0:
                return []
            base_parts = package_parts[:keep]
            if node.module:
                base_parts.append(node.module)
            base = ".".join(base_parts)
        return [f"{base}.{alias.name}" if base else alias.name for alias in node.names]

    @staticmethod
    def _type_checking_imports(tree: ast.Module) -> Set[ast.AST]:
        guarded: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            is_tc = (
                isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"
            ) or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if not is_tc:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    guarded.add(sub)
        return guarded


def conc_rules() -> List[Rule]:
    """Fresh instances of the conc catalogue, in report order."""
    return [
        ConcAtomicityRule(),
        ConcBlockingRule(),
        ConcReentrancyRule(),
        ConcSeamRule(),
    ]


CONC_RULE_NAMES: Tuple[str, ...] = tuple(rule.name for rule in conc_rules())
