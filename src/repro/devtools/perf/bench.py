"""Benchmark harness: the ``BENCH_<scenario>.json`` trajectory files.

Each file records one canonical scenario at a pinned seed, split into
two sections:

* a **deterministic** section (ops, events, outcome checksum) that is a
  pure function of ``(nodes, seed)`` — CI diffs it byte-for-byte across
  ``PYTHONHASHSEED`` values;
* a **timing** section (wall time, ops/sec, events/sec, peak RSS) that
  varies by machine and is what the PR-over-PR trajectory tracks.

``--deterministic`` omits the timing section entirely so the artifact
itself is diffable; the committed files keep timings as the recorded
trajectory point for the machine that produced them.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from .scenarios import DEFAULT_NODES, PINNED_SEED, SCENARIOS, ScenarioResult

BENCH_VERSION = 1


def _peak_rss_kb() -> int:
    """Peak resident set size in KiB (ru_maxrss is KiB on Linux)."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    if sys.platform == "darwin":
        return usage.ru_maxrss // 1024
    return usage.ru_maxrss


def run_bench(
    scenario: str,
    nodes: int = DEFAULT_NODES,
    seed: int = PINNED_SEED,
    deterministic: bool = False,
) -> dict:
    """Run one scenario without profiler overhead; return the record."""
    runner = SCENARIOS[scenario]
    start = time.perf_counter()
    result: ScenarioResult = runner(nodes, seed)
    wall_s = time.perf_counter() - start
    record = {
        "version": BENCH_VERSION,
        "scenario": result.name,
        "nodes": result.nodes,
        "seed": result.seed,
        "ops": result.ops,
        "op_kind": result.op_kind,
        "events": result.events,
        "checksum": result.checksum,
    }
    if not deterministic:
        record["timing"] = {
            "wall_s": round(wall_s, 4),
            "ops_per_sec": round(result.ops / wall_s, 2) if wall_s > 0 else 0.0,
            "events_per_sec": (
                round(result.events / wall_s, 2) if wall_s > 0 else 0.0
            ),
            "peak_rss_kb": _peak_rss_kb(),
            "python": platform.python_version(),
        }
    return record


def bench_path(out_dir: Path, scenario: str) -> Path:
    return out_dir / f"BENCH_{scenario}.json"


def write_bench_files(
    out_dir: Path,
    scenarios: Optional[Sequence[str]] = None,
    nodes: int = DEFAULT_NODES,
    seed: int = PINNED_SEED,
    deterministic: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Path]:
    """Run the scenarios and write one ``BENCH_<scenario>.json`` each."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(unknown)}")
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in names:
        if progress is not None:
            progress(f"benchmarking {name} (nodes={nodes}, seed={seed})")
        record = run_bench(name, nodes=nodes, seed=seed, deterministic=deterministic)
        path = bench_path(out_dir, name)
        path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
        written.append(path)
    return written
