"""Deterministic call-count profiling of the canonical scenarios.

A ``sys.setprofile`` hook counts every Python call and every C call
(``sorted``, ``set`` …) executed while the pinned-seed scenarios run,
then maps code objects back to the static index's dotted qualnames.
Counts — unlike timings — are a pure function of the schedule, so the
profile JSON is byte-identical across ``PYTHONHASHSEED`` values and
machine speeds, which is what lets CI pin it and lets the report rank
``static badness x measured hotness`` reproducibly.

The committed artifact lives at
``benchmarks/results/perf_profile.json``; ``repro-perf --profile``
regenerates it.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..framework import collect_modules
from ..flow.callgraph import ProjectIndex
from .scenarios import DEFAULT_NODES, PINNED_SEED, SCENARIOS, ScenarioResult

#: C-level callables worth counting globally: the containers and sorts
#: the cost model flags statically.
_TRACKED_BUILTINS = frozenset({"sorted", "set", "list", "dict", "frozenset"})

#: Schema version for the profile artifact.
PROFILE_VERSION = 1


@dataclass
class CallCountProfile:
    """Aggregated call counts for one (nodes, seed, scenarios) run."""

    nodes: int
    seed: int
    #: dotted qualname -> times it was called across all scenarios.
    counts: Dict[str, int] = field(default_factory=dict)
    #: builtin name -> global call count (evidence, not used for ranking).
    builtin_counts: Dict[str, int] = field(default_factory=dict)
    scenarios: List[ScenarioResult] = field(default_factory=list)

    def hotness(self, qualname: str) -> int:
        """Measured call count for a function (0 when never observed).

        ``perf-slots`` findings carry a *class* qualname; their hotness
        is the class's ``__init__`` count.
        """
        count = self.counts.get(qualname)
        if count is not None:
            return count
        return self.counts.get(f"{qualname}.__init__", 0)

    def to_dict(self) -> dict:
        return {
            "version": PROFILE_VERSION,
            "nodes": self.nodes,
            "seed": self.seed,
            "scenarios": [s.to_dict() for s in self.scenarios],
            "counts": dict(sorted(self.counts.items())),
            "builtin_counts": dict(sorted(self.builtin_counts.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "CallCountProfile":
        profile = cls(
            nodes=int(payload.get("nodes", 0)),
            seed=int(payload.get("seed", 0)),
            counts={str(k): int(v) for k, v in payload.get("counts", {}).items()},
            builtin_counts={
                str(k): int(v)
                for k, v in payload.get("builtin_counts", {}).items()
            },
        )
        for entry in payload.get("scenarios", []):
            profile.scenarios.append(ScenarioResult(**entry))
        return profile

    @classmethod
    def load(cls, path: Path) -> "CallCountProfile":
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))


def _static_qualname_index(
    src_paths: Sequence[Path],
) -> Dict[Tuple[str, str], List[str]]:
    """(resolved file path, code name) -> dotted qualnames defined there.

    Two classes in one module may share a method name; the count is then
    attributed to every candidate — an over-approximation in the same
    safe direction as the call graph's method-name resolution.
    """
    modules = collect_modules(list(src_paths))
    index = ProjectIndex(modules)
    table: Dict[Tuple[str, str], List[str]] = {}
    for qual, info in index.functions.items():
        if info.is_module_body:
            continue
        key = (str(Path(info.module.path).resolve()), info.name)
        table.setdefault(key, []).append(qual)
    return table


class _Profiler:
    """The ``sys.setprofile`` hook: counts calls, nothing else."""

    def __init__(self) -> None:
        #: (filename, co_name) -> count; resolved to qualnames at the end.
        self.raw: Dict[Tuple[str, str], int] = {}
        self.builtins: Dict[str, int] = {}

    def __call__(self, frame, event: str, arg) -> None:
        if event == "call":
            code = frame.f_code
            key = (code.co_filename, code.co_name)
            self.raw[key] = self.raw.get(key, 0) + 1
        elif event == "c_call":
            name = getattr(arg, "__name__", None)
            if name in _TRACKED_BUILTINS:
                self.builtins[name] = self.builtins.get(name, 0) + 1


def profile_scenarios(
    nodes: int = DEFAULT_NODES,
    seed: int = PINNED_SEED,
    scenario_names: Optional[Sequence[str]] = None,
    src_paths: Optional[Sequence[Path]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CallCountProfile:
    """Run the canonical scenarios under the call-count profiler."""
    names = list(scenario_names) if scenario_names else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenario(s): {', '.join(unknown)}")
    if src_paths is None:
        src_paths = [Path(__file__).resolve().parents[3] / "repro"]
    table = _static_qualname_index(src_paths)

    profile = CallCountProfile(nodes=nodes, seed=seed)
    profiler = _Profiler()
    for name in names:
        if progress is not None:
            progress(f"profiling {name} (nodes={nodes}, seed={seed})")
        runner = SCENARIOS[name]
        sys.setprofile(profiler)
        try:
            result = runner(nodes, seed)
        finally:
            sys.setprofile(None)
        profile.scenarios.append(result)

    resolved_raw: Dict[Tuple[str, str], int] = {}
    for (filename, co_name), count in profiler.raw.items():
        try:
            resolved = str(Path(filename).resolve())
        except (OSError, ValueError):
            continue
        resolved_raw[(resolved, co_name)] = (
            resolved_raw.get((resolved, co_name), 0) + count
        )
    for key, quals in table.items():
        count = resolved_raw.get(key)
        if not count:
            continue
        for qual in quals:
            profile.counts[qual] = profile.counts.get(qual, 0) + count
    profile.builtin_counts = dict(profiler.builtins)
    return profile
