"""``repro-perf`` / ``python -m repro.devtools.perf`` — the perf front door.

Three modes:

* **analyze** (default) — run the static cost analyzer over the given
  paths, weight each finding by the committed call-count profile (when
  present) and print the ranked report.  ``--baseline`` /
  ``--write-baseline`` / ``--changed`` work exactly as in
  ``repro-lint``; CI runs this against the committed perf baseline and
  fails on any *new* finding.
* ``--profile`` — run the canonical pinned-seed scenarios under the
  call-count profiler and write ``perf_profile.json`` (deterministic:
  identical across ``PYTHONHASHSEED`` values).
* ``--bench`` — run the same scenarios un-profiled and write the
  ``BENCH_<scenario>.json`` trajectory files (``--deterministic`` omits
  the timing section for CI diffing).

Exit status follows ``repro-lint``: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..framework import (
    LintError,
    collect_modules,
    filter_baselined,
    narrow_to_changed,
    record_baseline,
    run_rules,
)
from .bench import write_bench_files
from .costmodel import CostFinding
from .profile import CallCountProfile, profile_scenarios
from .report import rank_findings
from .rules import get_cost_analysis, perf_rules
from .scenarios import DEFAULT_NODES, PINNED_SEED, SCENARIOS

#: Committed artifacts, relative to the repo root.
DEFAULT_PROFILE = Path("benchmarks") / "results" / "perf_profile.json"
DEFAULT_BENCH_DIR = Path("benchmarks") / "results"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description=(
            "Static cost analysis ranked by profiled hotness, plus the "
            "pinned-seed profile/bench harness."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--profile-file", metavar="FILE", default=None,
        help=(
            "call-count profile to weight findings with (default: "
            f"{DEFAULT_PROFILE} when it exists; unweighted otherwise)"
        ),
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in FILE; report only new ones",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="analyze only files changed vs. git HEAD under the given paths",
    )
    parser.add_argument(
        "--top", type=int, metavar="N", default=0,
        help="print only the N highest-scored findings (default: all)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the pinned-seed scenarios under the call-count profiler",
    )
    parser.add_argument(
        "--bench", action="store_true",
        help="run the scenarios un-profiled and write BENCH_<scenario>.json",
    )
    parser.add_argument(
        "--scenarios", metavar="NAMES",
        help=(
            "comma-separated scenario subset for --profile/--bench "
            f"(default: all of {','.join(SCENARIOS)})"
        ),
    )
    parser.add_argument(
        "--nodes", type=int, default=DEFAULT_NODES, metavar="N",
        help=f"deployment size for --profile/--bench (default: {DEFAULT_NODES})",
    )
    parser.add_argument(
        "--seed", type=int, default=PINNED_SEED, metavar="SEED",
        help=f"scenario seed for --profile/--bench (default: {PINNED_SEED})",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help=(
            "output file for --profile (default: "
            f"{DEFAULT_PROFILE}) or directory for --bench "
            f"(default: {DEFAULT_BENCH_DIR})"
        ),
    )
    parser.add_argument(
        "--deterministic", action="store_true",
        help="--bench: omit the timing section so the JSON is CI-diffable",
    )
    return parser


def _progress(message: str) -> None:
    print(message, file=sys.stderr)


def _scenario_names(args: argparse.Namespace) -> Optional[List[str]]:
    if not args.scenarios:
        return None
    return [name.strip() for name in args.scenarios.split(",") if name.strip()]


def _run_profile(args: argparse.Namespace) -> int:
    out = Path(args.out) if args.out else DEFAULT_PROFILE
    profile = profile_scenarios(
        nodes=args.nodes,
        seed=args.seed,
        scenario_names=_scenario_names(args),
        progress=_progress,
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(profile.to_json())
    total_calls = sum(profile.counts.values())
    print(
        f"profile written to {out}: {len(profile.counts)} functions, "
        f"{total_calls} calls across {len(profile.scenarios)} scenarios"
    )
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    out_dir = Path(args.out) if args.out else DEFAULT_BENCH_DIR
    written = write_bench_files(
        out_dir,
        scenarios=_scenario_names(args),
        nodes=args.nodes,
        seed=args.seed,
        deterministic=args.deterministic,
        progress=_progress,
    )
    for path in written:
        record = json.loads(path.read_text())
        timing = record.get("timing", {})
        rate = timing.get("ops_per_sec")
        suffix = f" ({rate} {record['op_kind']}/s)" if rate is not None else ""
        print(f"{path}: {record['ops']} {record['op_kind']}{suffix}")
    return 0


def _load_profile(args: argparse.Namespace) -> Optional[CallCountProfile]:
    if args.profile_file:
        return CallCountProfile.load(Path(args.profile_file))
    if DEFAULT_PROFILE.is_file():
        return CallCountProfile.load(DEFAULT_PROFILE)
    return None


def _run_analyze(args: argparse.Namespace) -> int:
    paths: Optional[List[str]] = narrow_to_changed(args.paths, args.changed)
    if paths is None:
        print("no changed python files to analyze")
        return 0
    modules = collect_modules(paths)
    # run_rules applies `# lint: ignore[...]` suppressions and gives the
    # findings the same identity the lint baseline machinery expects.
    findings = run_rules(modules, perf_rules())
    if args.write_baseline:
        print(record_baseline(args.write_baseline, findings))
        return 0
    findings, _ = filter_baselined(findings, args.baseline)

    # Re-derive cost metadata (badness, qualname) for the surviving
    # findings so they can be ranked: the analyzer's own findings carry
    # it, the framework Findings do not.
    analyzer = get_cost_analysis(modules)
    by_identity = {
        (f"perf-{c.kind}", c.path, c.line, c.message): c
        for c in analyzer.findings
    }
    cost_findings: List[CostFinding] = []
    for finding in findings:
        cost = by_identity.get(
            (finding.rule, finding.path, finding.line, finding.message)
        )
        if cost is not None:
            cost_findings.append(cost)
    try:
        profile = _load_profile(args)
    except (OSError, ValueError) as exc:
        raise LintError(f"cannot read profile: {exc}") from None
    ranked = rank_findings(cost_findings, profile)
    if args.top > 0:
        ranked = ranked[: args.top]

    if args.format == "json":
        payload = {
            "profile": (
                {"nodes": profile.nodes, "seed": profile.seed}
                if profile else None
            ),
            "findings": [r.to_dict() for r in ranked],
            "count": len(ranked),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for entry in ranked:
            print(entry.render())
        noun = "finding" if len(ranked) == 1 else "findings"
        weight = "profile-weighted" if profile else "unweighted (no profile)"
        print(f"{len(ranked)} {noun} in {len(modules)} modules [{weight}]")
    return 1 if ranked else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.profile and args.bench:
            raise LintError("--profile and --bench are mutually exclusive")
        if args.profile:
            return _run_profile(args)
        if args.bench:
            return _run_bench(args)
        return _run_analyze(args)
    except LintError as exc:
        print(f"perf: error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"perf: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
