"""Static cost analysis + profile-ranked performance linting.

``repro.devtools.perf`` is the performance counterpart of the flow
analysis: where :mod:`repro.devtools.flow` asks "is this code a pure
function of the seed?", this package asks "how much does it cost per
event, and how often does it actually run?".

Three cooperating pieces:

* :mod:`.costmodel` — a static cost analyzer over the existing
  :class:`~repro.devtools.flow.callgraph.ProjectIndex`: per function it
  measures loop-nesting depth and finds the classic Python hot-path
  sins (``sorted()``/container rebuilds inside loops, O(n) membership
  tests on lists/tuples inside loops, loop-invariant allocations and
  digest/seed recomputations, instance-heavy record classes missing
  ``__slots__``).
* :mod:`.profile` + :mod:`.scenarios` — a deterministic pinned-seed
  profiling harness that counts *real* call frequencies during the
  canonical scenarios (bulk insert, lookup storm, churn round, scrub
  round), so static findings can be ranked by
  ``static badness x measured hotness`` instead of reported flat.
* :mod:`.rules` — the findings packaged as four lint rules
  (``perf-hot-sort``, ``perf-quadratic-membership``,
  ``perf-alloc-in-loop``, ``perf-slots``) that plug into the
  ``repro.devtools`` framework (suppressions, baselines, ``--changed``).

The :mod:`.bench` harness re-runs the same scenarios without profiler
overhead and emits ``BENCH_<scenario>.json`` trajectory files.
"""

from .costmodel import CostAnalyzer, CostFinding
from .profile import CallCountProfile, profile_scenarios
from .rules import PERF_RULE_NAMES, perf_rules
from .report import RankedFinding, rank_findings

__all__ = [
    "CallCountProfile",
    "CostAnalyzer",
    "CostFinding",
    "PERF_RULE_NAMES",
    "RankedFinding",
    "perf_rules",
    "profile_scenarios",
    "rank_findings",
]
