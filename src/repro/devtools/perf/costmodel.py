"""The static cost analyzer: per-function cost facts over the call graph.

Reuses the flow package's :class:`~repro.devtools.flow.callgraph.ProjectIndex`
for function collection, alias resolution and call-site resolution, and
adds the *cost* dimension the flow analysis deliberately ignores:

* **loop nesting** — every ``for``/``while`` with its depth and the set
  of names bound by the enclosing loops (loop targets plus any name
  assigned inside the loop body), which is what loop-invariance checks
  compare against;
* **hot sorts** — ``sorted(...)`` calls and ``.sort()`` method calls
  evaluated once per iteration of an enclosing loop.  Re-sorting inside
  a loop is the signature quadratic-ish pattern the determinism work of
  PR 2 introduced wholesale ("wrap it in sorted()"), and the one the
  ROADMAP explicitly schedules for replacement with maintained ordered
  structures;
* **quadratic membership** — ``x in xs`` / ``x not in xs`` inside a loop
  where ``xs`` is locally bound only to list/tuple values: an O(n) scan
  per iteration, O(n*m) overall, for what a set answers in O(1);
* **loop-invariant allocations and recomputations** — container
  constructions (``set(...)``, ``list(...)``, comprehensions) and
  expensive calls (``derive_seed``, ``hashlib.*``, ``file_id``) inside a
  loop that reference no name bound by the loop, i.e. they rebuild the
  same value every iteration and can be hoisted;
* **slot-less record classes** — classes instantiated inside a loop
  (directly, or transitively through the call graph) that do not declare
  ``__slots__``: each instance then carries a per-instance ``__dict__``,
  which at 10k-node scale is the difference between fitting in cache and
  not.

Every check is *syntactic* evidence, scored by loop depth; the profile
harness supplies the measured-hotness factor that turns evidence into a
ranking (see :mod:`.report`).  Messages are line-number-free so baseline
keys survive unrelated edits, matching the lint framework's convention.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..framework import ModuleInfo
from ..flow.callgraph import FunctionInfo, ProjectIndex, project_aliases

#: Subpackages whose code runs per simulated event — the layers whose
#: constant factors bound how many nodes/ops a run can afford.  Matches
#: the flow rules' scope: experiments/CLI code runs once per report, not
#: once per event.
PERF_SUBPACKAGES = frozenset({"pastry", "netsim", "core"})

#: Nodes that repeat their body: statement loops and comprehensions
#: (a comprehension constructs its element expression per iteration,
#: which matters for per-instance costs like missing ``__slots__``).
_LOOP_NODES = (
    ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
    ast.GeneratorExp,
)

#: Builtin constructors whose call allocates a fresh container.
_ALLOC_CTORS = frozenset({
    "set", "frozenset", "list", "dict", "tuple", "sorted", "reversed",
})

#: Expensive pure computations worth hoisting when loop-invariant.
#: Matched by dotted name (externals) or bare-name suffix (project
#: helpers like ``repro.core.seeding.derive_seed``).
_EXPENSIVE_EXTERNAL = frozenset({
    "hashlib.sha1", "hashlib.sha256", "hashlib.md5", "hashlib.new",
})
_EXPENSIVE_SUFFIXES = ("derive_seed", "file_id", "node_id_from_public_key")

#: Decorators under which a class body's bare ``x: T = default`` lines
#: become instance fields (so missing ``__slots__`` means a dict per
#: instance even though no ``__init__`` is visible).
_DATACLASS_DECORATORS = frozenset({"dataclass", "dataclasses.dataclass"})

KIND_HOT_SORT = "hot-sort"
KIND_QUADRATIC = "quadratic-membership"
KIND_ALLOC = "alloc-in-loop"
KIND_SLOTS = "slots"


@dataclass(frozen=True)
class CostFinding:
    """One cost-model observation, scored by static badness."""

    kind: str
    path: str
    line: int
    #: Dotted qualname of the enclosing function (or the class, for
    #: ``slots`` findings) — the unit the profile counts calls for.
    qualname: str
    #: Static severity: loop depth for in-loop findings, construction
    #: context for slots findings.  >= 1.
    badness: int
    message: str
    #: Function whose profiled call count weights this finding when it
    #: differs from ``qualname`` (slots findings name a *class* there;
    #: dataclass-generated ``__init__`` code objects carry a synthetic
    #: filename the profiler cannot map back, so the constructing
    #: function stands in as the hotness proxy).
    hotness_qualname: str = ""

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.kind)


@dataclass
class FunctionCost:
    """Aggregate cost facts for one function."""

    qualname: str
    path: str
    line: int
    max_loop_depth: int = 0
    findings: List[CostFinding] = field(default_factory=list)

    @property
    def static_badness(self) -> int:
        return sum(f.badness for f in self.findings)


@dataclass
class ClassRecord:
    """One class definition, as the slots check sees it."""

    qualname: str  # module.ClassName
    name: str
    module: ModuleInfo
    lineno: int
    has_slots: bool
    is_dataclass: bool
    #: True when every base is resolvable and slot-friendly (no bases,
    #: or ``object``).  Subclasses of unknown bases are skipped: adding
    #: __slots__ there does not remove the inherited __dict__.
    slot_eligible: bool
    #: Number of per-instance fields observed (self.x = / dataclass
    #: fields); instanceless namespaces are not worth flagging.
    n_fields: int = 0


class _Loop:
    """One enclosing loop while walking a function body."""

    __slots__ = ("node", "depth", "bound_names")

    def __init__(self, node: ast.AST, depth: int, bound_names: Set[str]):
        self.node = node
        self.depth = depth
        self.bound_names = bound_names


def _target_names(target: ast.expr) -> Set[str]:
    """Names bound by a ``for`` target (handles tuple unpacking)."""
    out: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            out.add(node.id)
    return out


def _assigned_names(stmts: Sequence[ast.stmt]) -> Set[str]:
    """Every name assigned anywhere in a statement list (incl. nested
    loops/ifs, excluding nested function/class bodies)."""
    nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    out: Set[str] = set()
    stack: List[ast.AST] = [s for s in stmts if not isinstance(s, nested)]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Assign):
            for target in node.targets:
                out.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            out.update(_target_names(node.target))
        elif isinstance(node, ast.For):
            out.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    out.update(_target_names(item.optional_vars))
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, nested):
                stack.append(child)
    return out


def _free_names(expr: ast.expr) -> Set[str]:
    """Every Name read by an expression (comprehension targets excluded)."""
    bound: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.comprehension):
            bound.update(_target_names(node.target))
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and node.id not in bound
    }


def _local_container_kinds(func: FunctionInfo) -> Dict[str, Set[str]]:
    """Map each local name to the container kinds it is ever bound to.

    Kinds: ``"list"``, ``"tuple"``, ``"set"``, ``"dict"``, ``"other"``.
    Flow-insensitive: a name rebound from list to set carries both kinds
    and is never flagged (the safe direction for a lint).
    """
    kinds: Dict[str, Set[str]] = {}

    def classify(expr: Optional[ast.expr]) -> str:
        if expr is None:
            return "other"
        if isinstance(expr, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(expr, ast.Tuple):
            return "tuple"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("list", "sorted"):
                return "list"
            if expr.func.id == "tuple":
                return "tuple"
            if expr.func.id in ("set", "frozenset"):
                return "set"
            if expr.func.id == "dict":
                return "dict"
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = classify(expr.left)
            if left == classify(expr.right):
                return left
        return "other"

    nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    if isinstance(func.node, ast.Module):
        roots: List[ast.AST] = list(func.node.body)
    else:
        roots = list(func.node.body)
    stack = [n for n in roots if not isinstance(n, nested)]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Assign):
            kind = classify(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    kinds.setdefault(target.id, set()).add(kind)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            kinds.setdefault(node.target.id, set()).add(classify(node.value))
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            kinds.setdefault(node.target.id, set()).add("other")
        elif isinstance(node, ast.For):
            # Loop targets iterate element values, not containers we track.
            for name in _target_names(node.target):
                kinds.setdefault(name, set()).add("other")
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, nested):
                stack.append(child)
    return kinds


class CostAnalyzer:
    """Static cost model over one module set."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.index = ProjectIndex(self.modules)
        self.classes: Dict[str, ClassRecord] = {}
        self.class_by_name: Dict[str, List[str]] = {}
        #: function qualname -> class qualnames it directly constructs.
        self._constructs: Dict[str, Set[str]] = {}
        #: function qualname -> resolved project callees.
        self._callees: Dict[str, Set[str]] = {}
        self.function_costs: Dict[str, FunctionCost] = {}
        self.findings: List[CostFinding] = []

        self._collect_classes()
        for qual, info in self.index.functions.items():
            if not self._in_scope(info.module):
                continue
            self._analyze_function(info)
        self._slots_findings()
        self.findings.sort(key=CostFinding.sort_key)

    @staticmethod
    def _in_scope(module: ModuleInfo) -> bool:
        return module.subpackage in PERF_SUBPACKAGES

    # ------------------------------------------------------------- classes

    def _collect_classes(self) -> None:
        for module in self.modules:
            for node in module.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                record = self._class_record(module, node)
                self.classes[record.qualname] = record
                self.class_by_name.setdefault(record.name, []).append(
                    record.qualname
                )

    def _class_record(self, module: ModuleInfo, node: ast.ClassDef) -> ClassRecord:
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            )
            or (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            )
            for stmt in node.body
        )
        is_dataclass = False
        for deco in node.decorator_list:
            name = None
            if isinstance(deco, ast.Call):
                # @dataclass(slots=True) generates __slots__ itself.
                if any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                ):
                    has_slots = True
                deco = deco.func
            if isinstance(deco, ast.Name):
                name = deco.id
            elif isinstance(deco, ast.Attribute):
                name = f"{getattr(deco.value, 'id', '?')}.{deco.attr}"
            if name in _DATACLASS_DECORATORS:
                is_dataclass = True
            if name == "dataclass" or (name or "").endswith(".dataclass"):
                is_dataclass = True
        slot_eligible = all(
            isinstance(base, ast.Name) and base.id == "object"
            for base in node.bases
        )
        n_fields = 0
        if is_dataclass:
            n_fields = sum(
                1 for stmt in node.body if isinstance(stmt, ast.AnnAssign)
            )
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
                seen: Set[str] = set()
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, (ast.Assign, ast.AnnAssign))
                        and not isinstance(sub, ast.AugAssign)
                    ):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                seen.add(target.attr)
                n_fields = max(n_fields, len(seen))
        return ClassRecord(
            qualname=f"{module.name}.{node.name}",
            name=node.name,
            module=module,
            lineno=node.lineno,
            has_slots=has_slots,
            is_dataclass=is_dataclass,
            slot_eligible=slot_eligible,
            n_fields=n_fields,
        )

    def _resolve_class_call(
        self, call: ast.Call, func: FunctionInfo
    ) -> Optional[str]:
        """The project class a ``Name(...)`` call constructs, if any."""
        fn = call.func
        if not isinstance(fn, ast.Name):
            return None
        local = f"{func.module.name}.{fn.id}"
        if local in self.classes:
            return local
        aliases = self.index.aliases.get(func.module.name, {})
        origin = aliases.get(fn.id)
        if origin is not None and origin in self.classes:
            return origin
        return None

    # ----------------------------------------------------------- functions

    def _analyze_function(self, func: FunctionInfo) -> None:
        cost = FunctionCost(
            qualname=func.qualname, path=func.module.path, line=func.lineno
        )
        container_kinds = _local_container_kinds(func)
        constructs: Set[str] = set()
        callees: Set[str] = set()

        nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

        def visit(node: ast.AST, loops: List[_Loop]) -> None:
            if isinstance(node, nested):
                return
            if isinstance(node, (ast.For, ast.While)):
                depth = len(loops) + 1
                cost.max_loop_depth = max(cost.max_loop_depth, depth)
                bound: Set[str] = set()
                if isinstance(node, ast.For):
                    # The iterable is evaluated once, *outside* the new loop.
                    visit_expr(node.iter, loops)
                    bound |= _target_names(node.target)
                else:
                    visit_expr(node.test, loops)
                bound |= _assigned_names(node.body + node.orelse)
                inner = loops + [_Loop(node, depth, bound)]
                for stmt in node.body + node.orelse:
                    visit(stmt, inner)
                return
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    visit_expr(child, loops)
                elif not isinstance(child, nested):
                    visit(child, loops)

        def visit_expr(expr: ast.AST, loops: List[_Loop]) -> None:
            for node in ast.walk(expr):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                if isinstance(node, ast.Call):
                    self._check_call(node, func, loops, cost, constructs, callees)
                elif isinstance(node, ast.Compare) and loops:
                    self._check_membership(
                        node, func, loops, cost, container_kinds
                    )
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp)) and loops:
                    self._check_invariant_alloc(
                        node, "a comprehension", func, loops, cost
                    )

        if isinstance(func.node, ast.Module):
            body: List[ast.stmt] = [
                s for s in func.node.body if not isinstance(s, nested)
            ]
        else:
            body = list(func.node.body)
        for stmt in body:
            visit(stmt, [])

        self._constructs[func.qualname] = constructs
        self._callees[func.qualname] = callees
        if cost.findings or cost.max_loop_depth:
            self.function_costs[func.qualname] = cost
        self.findings.extend(cost.findings)

    # ---------------------------------------------------------- call checks

    def _check_call(
        self,
        call: ast.Call,
        func: FunctionInfo,
        loops: List[_Loop],
        cost: FunctionCost,
        constructs: Set[str],
        callees: Set[str],
    ) -> None:
        cls = self._resolve_class_call(call, func)
        if cls is not None:
            constructs.add(cls)
        targets, external = self.index.resolve_call(call, func)
        callees.update(targets)
        if not loops:
            return
        depth = loops[-1].depth
        fn = call.func
        # -- hot sorts -----------------------------------------------------
        if isinstance(fn, ast.Name) and fn.id == "sorted":
            cost.findings.append(CostFinding(
                kind=KIND_HOT_SORT,
                path=func.module.path,
                line=call.lineno,
                qualname=func.qualname,
                badness=depth,
                message=(
                    f"sorted() runs on every iteration of a depth-{depth} "
                    f"loop in {func.qualname}; maintain an ordered structure "
                    f"(or hoist the sort) instead of re-sorting"
                ),
            ))
            return
        if isinstance(fn, ast.Attribute) and fn.attr == "sort" and not call.args:
            cost.findings.append(CostFinding(
                kind=KIND_HOT_SORT,
                path=func.module.path,
                line=call.lineno,
                qualname=func.qualname,
                badness=depth,
                message=(
                    f".sort() runs on every iteration of a depth-{depth} "
                    f"loop in {func.qualname}; maintain an ordered structure "
                    f"(or hoist the sort) instead of re-sorting"
                ),
            ))
            return
        # -- loop-invariant allocations / recomputations -------------------
        if isinstance(fn, ast.Name):
            if fn.id in _ALLOC_CTORS and call.args:
                self._check_invariant_alloc(
                    call, f"{fn.id}(...)", func, loops, cost
                )
                return
        dotted = external
        if dotted is None and targets:
            dotted = targets[0]
        if dotted is not None and (
            dotted in _EXPENSIVE_EXTERNAL
            or dotted.rsplit(".", 1)[-1] in _EXPENSIVE_SUFFIXES
        ):
            short = dotted.rsplit(".", 1)[-1]
            self._check_invariant_alloc(
                call, f"{short}(...)", func, loops, cost,
                verb="recomputes",
            )

    def _check_invariant_alloc(
        self,
        expr: ast.expr,
        what: str,
        func: FunctionInfo,
        loops: List[_Loop],
        cost: FunctionCost,
        verb: str = "rebuilds",
    ) -> None:
        names = _free_names(expr)
        for loop in loops:
            if names & loop.bound_names:
                return  # depends on loop state: genuinely per-iteration
        depth = loops[-1].depth
        cost.findings.append(CostFinding(
            kind=KIND_ALLOC,
            path=func.module.path,
            line=expr.lineno,
            qualname=func.qualname,
            badness=depth,
            message=(
                f"{func.qualname} {verb} {what} on every iteration of a "
                f"depth-{depth} loop but references no loop-bound name; "
                f"hoist it out of the loop"
            ),
        ))

    def _check_membership(
        self,
        node: ast.Compare,
        func: FunctionInfo,
        loops: List[_Loop],
        cost: FunctionCost,
        container_kinds: Dict[str, Set[str]],
    ) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            if not isinstance(comparator, ast.Name):
                continue
            kinds = container_kinds.get(comparator.id)
            if kinds is None or kinds - {"list", "tuple"}:
                continue  # unknown or possibly-set-typed: not provably O(n)
            depth = loops[-1].depth
            cost.findings.append(CostFinding(
                kind=KIND_QUADRATIC,
                path=func.module.path,
                line=node.lineno,
                qualname=func.qualname,
                badness=depth + 1,
                message=(
                    f"membership test on {'/'.join(sorted(kinds))} "
                    f"'{comparator.id}' inside a depth-{depth} loop in "
                    f"{func.qualname} is an O(n) scan per iteration; use a "
                    f"set"
                ),
            ))

    # ---------------------------------------------------------------- slots

    def _loop_reachable_functions(self) -> Tuple[Set[str], Set[str]]:
        """(functions called directly from a loop body, their transitive
        closure over project call edges)."""
        direct: Set[str] = set()
        for qual, info in self.index.functions.items():
            if not self._in_scope(info.module):
                continue
            nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                      ast.Lambda)
            if isinstance(info.node, ast.Module):
                roots: List[ast.AST] = [
                    s for s in info.node.body if not isinstance(s, nested)
                ]
            else:
                roots = list(info.node.body)

            def scan(node: ast.AST, in_loop: bool) -> None:
                if isinstance(node, nested):
                    return
                here = in_loop or isinstance(node, _LOOP_NODES)
                if isinstance(node, ast.Call) and in_loop:
                    targets, _ = self.index.resolve_call(node, info)
                    direct.update(targets)
                for child in ast.iter_child_nodes(node):
                    scan(child, here)

            for root in roots:
                scan(root, False)
        closure = set(direct)
        frontier = list(direct)
        while frontier:
            current = frontier.pop()
            for callee in self._callees.get(current, ()):
                if callee not in closure:
                    closure.add(callee)
                    frontier.append(callee)
        return direct, closure

    def _slots_findings(self) -> None:
        loop_direct, loop_closure = self._loop_reachable_functions()
        #: class -> (badness, how it was reached, constructing function)
        heavy: Dict[str, Tuple[int, str, str]] = {}
        for qual, info in self.index.functions.items():
            if not self._in_scope(info.module):
                continue
            constructed = self._constructs.get(qual, ())
            if not constructed:
                continue
            in_loop_body = qual in loop_closure
            # Direct construction sites inside this function's own loops
            # are found by re-walking with loop context.
            direct_in_loop = self._classes_constructed_in_own_loops(info)
            for cls in constructed:
                if cls in direct_in_loop:
                    prev = heavy.get(cls, (0, "", ""))
                    if prev[0] < 2:
                        heavy[cls] = (2, f"constructed in a loop in {qual}", qual)
                elif in_loop_body:
                    heavy.setdefault(
                        cls, (1, f"constructed under a loop via {qual}", qual)
                    )
        for cls_qual in sorted(heavy):
            record = self.classes.get(cls_qual)
            if record is None or record.has_slots or not record.slot_eligible:
                continue
            if not self._in_scope(record.module) or record.n_fields == 0:
                continue
            badness, how, via_qual = heavy[cls_qual]
            kind_note = "dataclass" if record.is_dataclass else "class"
            self.findings.append(CostFinding(
                kind=KIND_SLOTS,
                path=record.module.path,
                line=record.lineno,
                qualname=cls_qual,
                badness=badness,
                message=(
                    f"instance-heavy {kind_note} {record.name} "
                    f"({record.n_fields} fields, {how}) has no __slots__; "
                    f"each instance pays a __dict__"
                ),
                hotness_qualname=via_qual,
            ))

    def _classes_constructed_in_own_loops(self, info: FunctionInfo) -> Set[str]:
        nested = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        out: Set[str] = set()
        if isinstance(info.node, ast.Module):
            roots: List[ast.AST] = [
                s for s in info.node.body if not isinstance(s, nested)
            ]
        else:
            roots = list(info.node.body)

        def scan(node: ast.AST, in_loop: bool) -> None:
            if isinstance(node, nested):
                return
            here = in_loop or isinstance(node, _LOOP_NODES)
            if isinstance(node, ast.Call) and in_loop:
                cls = self._resolve_class_call(node, info)
                if cls is not None:
                    out.add(cls)
            for child in ast.iter_child_nodes(node):
                scan(child, here)

        for root in roots:
            scan(root, False)
        return out


def iter_findings(
    modules: Sequence[ModuleInfo], kinds: Optional[Set[str]] = None
) -> Iterator[CostFinding]:
    """All cost findings for a module set, optionally filtered by kind."""
    analyzer = CostAnalyzer(modules)
    for finding in analyzer.findings:
        if kinds is None or finding.kind in kinds:
            yield finding
