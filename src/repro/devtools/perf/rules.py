"""The cost model packaged as lint rules.

Four rules, one per finding kind, so suppressions and baselines can be
managed per-pattern.  They are shipped in their own catalogue
(:func:`perf_rules`) rather than ``all_rules()``: the correctness gate
(``tests/devtools/test_gate.py``) requires a clean tree under the
default set, while perf findings are a *trajectory* — the committed
perf baseline captures the accepted debt and CI fails only on new
findings.

All four share one :class:`~.costmodel.CostAnalyzer` pass per module
set (cached by identity, mirroring ``flow.get_analysis``), so running
the full perf catalogue costs one traversal, not four.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Tuple

from ..framework import Finding, ModuleInfo, ProjectRule
from .costmodel import (
    KIND_ALLOC,
    KIND_HOT_SORT,
    KIND_QUADRATIC,
    KIND_SLOTS,
    CostAnalyzer,
)

_CACHE: Dict[Tuple[int, ...], CostAnalyzer] = {}


def get_cost_analysis(modules: Sequence[ModuleInfo]) -> CostAnalyzer:
    """One shared analyzer per module set (keyed by object identity)."""
    key = tuple(id(module) for module in modules)
    analyzer = _CACHE.get(key)
    if analyzer is None:
        _CACHE.clear()  # rule runs are sequential; keep at most one set
        analyzer = CostAnalyzer(modules)
        _CACHE[key] = analyzer
    return analyzer


class _CostRule(ProjectRule):
    """Base: emit the analyzer's findings for one kind."""

    kind = ""

    def check_project(self, modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        analyzer = get_cost_analysis(modules)
        for finding in analyzer.findings:
            if finding.kind == self.kind:
                yield Finding(
                    rule=self.name,
                    path=finding.path,
                    line=finding.line,
                    message=finding.message,
                )


class HotSortRule(_CostRule):
    name = "perf-hot-sort"
    description = (
        "sorted()/.sort() inside a loop re-sorts per iteration; maintain "
        "an ordered structure or hoist the sort"
    )
    kind = KIND_HOT_SORT


class QuadraticMembershipRule(_CostRule):
    name = "perf-quadratic-membership"
    description = (
        "`x in xs` on a list/tuple inside a loop is an O(n) scan per "
        "iteration; use a set"
    )
    kind = KIND_QUADRATIC


class AllocInLoopRule(_CostRule):
    name = "perf-alloc-in-loop"
    description = (
        "loop-invariant container build or expensive recomputation "
        "(derive_seed/digest) inside a loop; hoist it"
    )
    kind = KIND_ALLOC


class SlotsRule(_CostRule):
    name = "perf-slots"
    description = (
        "instance-heavy class constructed under a loop lacks __slots__; "
        "each instance pays a per-instance __dict__"
    )
    kind = KIND_SLOTS


def perf_rules() -> List[ProjectRule]:
    """Fresh instances of the perf catalogue, in report order."""
    return [
        HotSortRule(),
        QuadraticMembershipRule(),
        AllocInLoopRule(),
        SlotsRule(),
    ]


PERF_RULE_NAMES: Tuple[str, ...] = tuple(rule.name for rule in perf_rules())
