"""Canonical pinned-seed scenarios driven by the profile/bench harness.

Four workloads cover the four hot paths the cost model cares about:

* ``bulk_insert`` — admission + placement: builds the overlay, then
  inserts a file batch (routing, replica selection, diversion).
* ``lookup_storm`` — the read path: round-robin lookups from clients
  spread over the ring.
* ``churn_round`` — failure detection, leaf-set repair, re-replication
  and recovery reconciliation.
* ``scrub_round`` — the anti-entropy scrubber's periodic verified
  re-reads under the event simulator.

Every scenario is a pure function of ``(nodes, seed)``: RNG streams are
derived with :func:`~repro.core.seeding.derive_seed`, and the result
carries a SHA-256 checksum over the observable outcomes so CI can diff
two runs (different ``PYTHONHASHSEED``) byte-for-byte.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ...core import AntiEntropyScrubber, PastConfig, PastNetwork, derive_seed
from ...netsim import EventSimulator

#: Seed every committed profile/bench artifact is pinned to.
PINNED_SEED = 1201  # SOSP 2001, the paper's venue

#: Default deployment size for committed artifacts; ``--nodes 10000``
#: scales the same workloads up.
DEFAULT_NODES = 1000


@dataclass
class ScenarioResult:
    """Deterministic outcome of one scenario run (no timings here)."""

    name: str
    nodes: int
    seed: int
    #: Domain operations performed (inserts, lookups, churn ops, scrubs).
    ops: int
    op_kind: str
    #: Simulator events executed (0 for scenarios not driven by a sim).
    events: int
    #: SHA-256 over the observable outcomes; byte-identical across
    #: hashseeds and across the optimizations this package motivates.
    checksum: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nodes": self.nodes,
            "seed": self.seed,
            "ops": self.ops,
            "op_kind": self.op_kind,
            "events": self.events,
            "checksum": self.checksum,
        }


def _checksum(parts: List[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _file_count(nodes: int) -> int:
    return max(40, nodes // 10)


def _build(nodes: int, seed: int) -> Tuple[PastNetwork, List[int], List[str]]:
    """A deployment with the standard file batch placed; returns the
    network, the inserted fileIds, and outcome strings for checksums."""
    rng = random.Random(derive_seed(seed, "perf-build"))
    net = PastNetwork(PastConfig(l=16, k=3, seed=seed, cache_policy="none"))
    net.build([rng.randrange(500_000, 1_000_000) for _ in range(nodes)])
    owner = net.create_client("perf")
    node_ids = [n.node_id for n in net.nodes()]
    outcomes: List[str] = []
    for i in range(_file_count(nodes)):
        size = min(int(rng.lognormvariate(7.2, 1.5)) + 1, 50_000)
        result = net.insert(
            f"perf{i}", owner, size, node_ids[rng.randrange(len(node_ids))]
        )
        outcomes.append(
            f"insert {i} ok={int(result.success)} fid={result.file_id} "
            f"hops={result.hops} attempts={result.attempts}"
        )
    fids = net.live_file_ids()
    return net, fids, outcomes


def run_bulk_insert(nodes: int = DEFAULT_NODES, seed: int = PINNED_SEED) -> ScenarioResult:
    net, fids, outcomes = _build(nodes, seed)
    return ScenarioResult(
        name="bulk_insert",
        nodes=nodes,
        seed=seed,
        ops=_file_count(nodes),
        op_kind="inserts",
        events=0,
        checksum=_checksum(outcomes + [f"files={len(fids)}"]),
    )


def run_lookup_storm(nodes: int = DEFAULT_NODES, seed: int = PINNED_SEED) -> ScenarioResult:
    net, fids, _ = _build(nodes, seed)
    rng = random.Random(derive_seed(seed, "perf-lookups"))
    node_ids = sorted(net.pastry.node_ids)
    n_lookups = 5 * _file_count(nodes)
    outcomes: List[str] = []
    for i in range(n_lookups):
        fid = fids[i % len(fids)]
        client = node_ids[rng.randrange(len(node_ids))]
        result = net.lookup(fid, client)
        outcomes.append(
            f"lookup {i} ok={int(result.success)} hops={result.hops} "
            f"responder={result.responder_id}"
        )
    return ScenarioResult(
        name="lookup_storm",
        nodes=nodes,
        seed=seed,
        ops=n_lookups,
        op_kind="lookups",
        events=0,
        checksum=_checksum(outcomes),
    )


def run_churn_round(nodes: int = DEFAULT_NODES, seed: int = PINNED_SEED) -> ScenarioResult:
    net, fids, _ = _build(nodes, seed)
    rng = random.Random(derive_seed(seed, "perf-churn"))
    victims = sorted(net.pastry.node_ids)
    rng.shuffle(victims)
    n_churn = max(4, nodes // 100)
    ops = 0
    outcomes: List[str] = []
    for victim in victims[:n_churn]:
        net.fail_node(victim)
        ops += 1
    for victim in victims[:n_churn]:
        net.recover_node(victim)
        ops += 1
    net.repair_all()
    ops += 1
    probe = sorted(net.pastry.node_ids)[0]
    available = sum(int(net.lookup(fid, probe).success) for fid in fids)
    outcomes.append(f"available={available}/{len(fids)}")
    outcomes.append(f"degraded={len(net.degraded_files)}")
    return ScenarioResult(
        name="churn_round",
        nodes=nodes,
        seed=seed,
        ops=ops,
        op_kind="churn ops",
        events=0,
        checksum=_checksum(outcomes),
    )


def run_scrub_round(nodes: int = DEFAULT_NODES, seed: int = PINNED_SEED) -> ScenarioResult:
    net, fids, _ = _build(nodes, seed)
    sim = EventSimulator()
    scrubber = AntiEntropyScrubber(sim, net, interval=5.0, seed=seed)
    scrubber.start()
    sim.run_until(10.0)  # two scrub periods across the phase spread
    scrubber.stop()
    stats = net.integrity
    outcomes = [
        f"scrub_rounds={stats.scrub_rounds}",
        f"scrub_corrupt_found={stats.scrub_corrupt_found}",
        f"events={sim.events_run}",
    ]
    return ScenarioResult(
        name="scrub_round",
        nodes=nodes,
        seed=seed,
        ops=stats.scrub_rounds,
        op_kind="scrub rounds",
        events=sim.events_run,
        checksum=_checksum(outcomes),
    )


#: name -> scenario runner, in canonical report order.
SCENARIOS: Dict[str, Callable[[int, int], ScenarioResult]] = {
    "bulk_insert": run_bulk_insert,
    "lookup_storm": run_lookup_storm,
    "churn_round": run_churn_round,
    "scrub_round": run_scrub_round,
}
