"""Ranking: static badness crossed with measured hotness.

A flat lint report treats a ``sorted()`` in a cold error path and one in
the per-message routing loop identically; the ranking does not.  Every
static finding is scored

    ``score = badness x max(1, hotness)``

where ``badness`` is the cost model's loop-depth-derived severity and
``hotness`` is the profiled call count of the enclosing function (the
class's ``__init__`` for ``perf-slots``).  ``max(1, ...)`` keeps
never-profiled code visible: with no profile at all every score
degenerates to the static badness and the report stays useful, just
unweighted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .costmodel import CostFinding
from .profile import CallCountProfile


@dataclass(frozen=True)
class RankedFinding:
    """One cost finding with its measured weight attached."""

    finding: CostFinding
    hotness: int
    score: int

    def to_dict(self) -> dict:
        return {
            "kind": self.finding.kind,
            "path": self.finding.path,
            "line": self.finding.line,
            "qualname": self.finding.qualname,
            "badness": self.finding.badness,
            "hotness": self.hotness,
            "score": self.score,
            "message": self.finding.message,
        }

    def render(self) -> str:
        return (
            f"{self.finding.path}:{self.finding.line}: "
            f"[perf-{self.finding.kind}] score={self.score} "
            f"(badness={self.finding.badness} x hotness={self.hotness}) "
            f"{self.finding.message}"
        )


def rank_findings(
    findings: Sequence[CostFinding],
    profile: Optional[CallCountProfile] = None,
) -> List[RankedFinding]:
    """Score and sort findings, hottest first; ties break by location so
    the order is deterministic with or without a profile."""
    ranked: List[RankedFinding] = []
    for finding in findings:
        hotness = 0
        if profile:
            hotness = profile.hotness(finding.qualname)
            if finding.hotness_qualname:
                hotness = max(hotness, profile.hotness(finding.hotness_qualname))
        score = finding.badness * max(1, hotness)
        ranked.append(RankedFinding(finding=finding, hotness=hotness, score=score))
    ranked.sort(key=lambda r: (-r.score, r.finding.sort_key()))
    return ranked
