"""Command-line linter: ``python -m repro.devtools.lint [paths...]``.

Exit status: 0 for a clean tree, 1 when findings are reported, 2 for
usage errors (unknown rule, unreadable path, unparseable source).

Findings can be suppressed per line with ``# lint: ignore[rule-name]``
(or bare ``# lint: ignore`` for every rule on that line).

Incremental mode:

* ``--write-baseline FILE`` records the current findings (keyed by
  ``rule|path|message``, deliberately line-number-free so unrelated
  edits do not resurrect them) and exits 0.
* ``--baseline FILE`` suppresses every finding already present in the
  baseline: only *new* findings are reported and affect the exit
  status.
* ``--changed`` restricts linting to files changed relative to git HEAD
  (plus untracked files).  Project-wide rules then see only the changed
  subset, so a full run is still needed before declaring a tree clean —
  this mode exists for fast pre-commit iteration.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

# Baseline/changed helpers live in the shared catalogue plumbing now
# (re-exported here because external callers import them from this
# module).
from .framework import (  # noqa: F401 — re-exported API
    BASELINE_VERSION,
    LintError,
    changed_files,
    collect_modules,
    filter_baselined,
    finding_key,
    load_baseline,
    record_baseline,
    run_rules,
    write_baseline,
)
from .framework import add_catalogue_arguments, narrow_to_changed
from .rules import all_rules, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Static determinism/purity/layering checks for the PAST reproduction.",
    )
    add_catalogue_arguments(parser, family="lint")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24} {rule.description}")
        return 0
    try:
        rules = get_rules(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
        paths: Optional[List[str]] = narrow_to_changed(args.paths, args.changed)
        if paths is None:
            print("no changed python files to lint")
            return 0
        modules = collect_modules(paths)
        findings = run_rules(modules, rules)
        if args.write_baseline:
            print(record_baseline(args.write_baseline, findings))
            return 0
        findings, _ = filter_baselined(findings, args.baseline)
    except LintError as exc:
        print(f"lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            {"findings": [f.to_dict() for f in findings], "count": len(findings)},
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {len(modules)} modules")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
