"""Command-line linter: ``python -m repro.devtools.lint [paths...]``.

Exit status: 0 for a clean tree, 1 when findings are reported, 2 for
usage errors (unknown rule, unreadable path, unparseable source).

Findings can be suppressed per line with ``# lint: ignore[rule-name]``
(or bare ``# lint: ignore`` for every rule on that line).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .framework import LintError, collect_modules, run_rules
from .rules import all_rules, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Static determinism/purity/layering checks for the PAST reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule names to skip (applied after --select)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24} {rule.description}")
        return 0
    try:
        rules = get_rules(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
        modules = collect_modules(args.paths)
        findings = run_rules(modules, rules)
    except LintError as exc:
        print(f"lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            {"findings": [f.to_dict() for f in findings], "count": len(findings)},
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {len(modules)} modules")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
