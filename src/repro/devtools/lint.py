"""Command-line linter: ``python -m repro.devtools.lint [paths...]``.

Exit status: 0 for a clean tree, 1 when findings are reported, 2 for
usage errors (unknown rule, unreadable path, unparseable source).

Findings can be suppressed per line with ``# lint: ignore[rule-name]``
(or bare ``# lint: ignore`` for every rule on that line).

Incremental mode:

* ``--write-baseline FILE`` records the current findings (keyed by
  ``rule|path|message``, deliberately line-number-free so unrelated
  edits do not resurrect them) and exits 0.
* ``--baseline FILE`` suppresses every finding already present in the
  baseline: only *new* findings are reported and affect the exit
  status.
* ``--changed`` restricts linting to files changed relative to git HEAD
  (plus untracked files).  Project-wide rules then see only the changed
  subset, so a full run is still needed before declaring a tree clean —
  this mode exists for fast pre-commit iteration.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .framework import Finding, LintError, collect_modules, run_rules
from .rules import all_rules, get_rules

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Baseline identity of a finding (stable across line drift)."""
    return f"{finding.rule}|{finding.path}|{finding.message}"


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted({finding_key(f) for f in findings}),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_baseline(path: str) -> set:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} is not a version-{BASELINE_VERSION} lint baseline"
        )
    return set(payload.get("findings", []))


def changed_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` that differ from git HEAD.

    Includes modified, added, renamed (new name) and untracked files.
    Deleted files and the old half of a rename are skipped explicitly —
    they are part of the diff but have nothing on disk to lint — and
    every git-reported name is anchored at the repository root, so the
    command works from a subdirectory too.
    """
    roots = [Path(p).resolve() for p in paths]

    def run_git(*args: str) -> List[str]:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True
        )
        if proc.returncode != 0:
            raise LintError(
                f"git {' '.join(args)} failed: {proc.stderr.strip()}"
            )
        return [line for line in proc.stdout.splitlines() if line]

    repo_root = Path(run_git("rev-parse", "--show-toplevel")[0])
    in_root = ("-C", str(repo_root))

    candidates = set()
    # --name-status over --name-only: a deleted file (D) or the old half
    # of a rename (R old new) must be dropped by *status*, not by racing
    # the filesystem — a stale name that happens to exist relative to
    # the current directory would otherwise be linted by accident.
    for line in run_git(*in_root, "diff", "--name-status", "-M", "HEAD", "--"):
        fields = line.split("\t")
        status = fields[0]
        if status.startswith("D") or len(fields) < 2:
            continue
        # For renames/copies (R###/C###) the last field is the new name.
        candidates.add(fields[-1])
    # -C keeps untracked discovery repo-wide and repo-root-relative even
    # when the linter runs from a subdirectory.
    candidates.update(run_git(*in_root, "ls-files", "--others", "--exclude-standard"))
    out = []
    for name in sorted(candidates):
        path = repo_root / name
        if path.suffix != ".py" or not path.is_file():
            continue
        resolved = path.resolve()
        if any(
            root == resolved or root in resolved.parents for root in roots
        ):
            # Report paths relative to the caller's cwd (matching the
            # paths a user would pass on the command line), falling back
            # to the absolute path when cwd is outside the repo.
            out.append(os.path.relpath(resolved))
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Static determinism/purity/layering checks for the PAST reproduction.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule names to skip (applied after --select)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in FILE; report only new ones",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help=(
            "lint only files changed vs. git HEAD (plus untracked) under "
            "the given paths"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24} {rule.description}")
        return 0
    try:
        rules = get_rules(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
        paths: List[str] = args.paths
        if args.changed:
            paths = changed_files(paths)
            if not paths:
                print("no changed python files to lint")
                return 0
        modules = collect_modules(paths)
        findings = run_rules(modules, rules)
        if args.write_baseline:
            write_baseline(args.write_baseline, findings)
            noun = "finding" if len(findings) == 1 else "findings"
            print(f"baseline written: {len(findings)} {noun} recorded "
                  f"in {args.write_baseline}")
            return 0
        if args.baseline:
            known = load_baseline(args.baseline)
            findings = [f for f in findings if finding_key(f) not in known]
    except LintError as exc:
        print(f"lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            {"findings": [f.to_dict() for f in findings], "count": len(findings)},
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {len(modules)} modules")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
